#include "arith/wce_analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace approxit::arith {
namespace {

/// Per-bit operand symbol: kill (a=b=0), propagate (a^b=1), generate
/// (a=b=1). The error behaviour of every adder here depends on operands
/// only through this symbol string, which is what makes exact dynamic
/// programming possible.
enum class Symbol : int { kKill = 0, kPropagate = 1, kGenerate = 2 };

constexpr Symbol kSymbols[] = {Symbol::kKill, Symbol::kPropagate,
                               Symbol::kGenerate};

/// Carry automaton: next carry after adding one bit pair with symbol s.
constexpr bool next_carry(Symbol s, bool carry) {
  switch (s) {
    case Symbol::kKill:
      return false;
    case Symbol::kPropagate:
      return carry;
    case Symbol::kGenerate:
      return true;
  }
  return false;
}

/// Sum bit produced by symbol s with incoming carry.
constexpr bool sum_bit(Symbol s, bool carry) {
  return (s == Symbol::kPropagate) != carry;
}

double pow2(unsigned e) { return std::ldexp(1.0, static_cast<int>(e)); }

std::uint64_t to_u64(double v) {
  return static_cast<std::uint64_t>(v + 0.5);
}

}  // namespace

std::uint64_t loa_worst_case_error(unsigned width, unsigned approx_bits) {
  const unsigned k = std::min(approx_bits, width);
  if (k == 0) return 0;
  // err = c_bridge * 2^k - (a_low & b_low) - cin.
  //  - positive branch: both (k-1) bits set forces a&b >= 2^(k-1);
  //    the minimum overlap gives +2^(k-1).
  //  - negative branch: a&b can reach 2^(k-1) - 1 without the bridge, plus
  //    the dropped carry-in: 2^(k-1) in magnitude.
  return to_u64(pow2(k - 1));
}

std::uint64_t gda_worst_case_error(unsigned width, unsigned approx_bits) {
  // GdaAdder clamps its approximate region to width - 1 bits.
  return loa_worst_case_error(width, std::min(approx_bits, width - 1));
}

std::uint64_t trunc_worst_case_error(unsigned width,
                                     unsigned truncated_bits) {
  const unsigned k = std::min(truncated_bits, width);
  if (k == 0) return 0;
  // Both low addends and the carry-in are discarded: 2 (2^k - 1) + 1.
  return to_u64(2.0 * (pow2(k) - 1.0) + 1.0);
}

std::uint64_t etai_worst_case_error(unsigned width, unsigned approx_bits) {
  const unsigned k = std::min(approx_bits, width);
  if (k == 0) return 0;
  // Worst case: generate pair at the top approximate bit (j = k-1),
  // all lower bits of both operands set, carry-in 1:
  //   |err| = 1 + 2 (2^(k-1) - 1) + 1 = 2^k.
  return to_u64(pow2(k));
}

std::uint64_t etaii_worst_case_error(unsigned width, unsigned segment) {
  if (segment == 0) {
    throw std::invalid_argument("etaii_worst_case_error: segment must be > 0");
  }
  if (segment >= width) return 0;
  if (width > 52) {
    throw std::invalid_argument(
        "etaii_worst_case_error: width too large for exact double "
        "accumulation");
  }
  // Exact DP over bit symbols. State: (true carry, approx carry within the
  // current segment, speculative carry accumulated for the NEXT segment).
  // Value: extreme achievable signed error of the processed prefix.
  struct Extremes {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
  };
  const auto index = [](bool t, bool a, bool s) {
    return (t ? 4 : 0) | (a ? 2 : 0) | (s ? 1 : 0);
  };

  Extremes best;
  for (int cin = 0; cin < 2; ++cin) {
    std::vector<Extremes> state(8);
    state[index(cin != 0, cin != 0, false)] = Extremes{0.0, 0.0};
    for (unsigned i = 0; i < width; ++i) {
      std::vector<Extremes> next(8);
      const bool boundary_next = ((i + 1) % segment) == 0 && (i + 1) < width;
      for (int idx = 0; idx < 8; ++idx) {
        const Extremes& cur = state[static_cast<std::size_t>(idx)];
        if (cur.lo > cur.hi) continue;  // unreachable
        const bool t = (idx & 4) != 0;
        const bool a = (idx & 2) != 0;
        const bool s = (idx & 1) != 0;
        for (Symbol sym : kSymbols) {
          const double delta =
              (sum_bit(sym, a) ? pow2(i) : 0.0) -
              (sum_bit(sym, t) ? pow2(i) : 0.0);
          bool t2 = next_carry(sym, t);
          bool a2 = next_carry(sym, a);
          bool s2 = next_carry(sym, s);
          if (boundary_next) {
            // The next segment's approx chain is seeded by the speculative
            // carry; a fresh speculation chain starts at 0.
            a2 = s2;
            s2 = false;
          }
          Extremes& slot = next[static_cast<std::size_t>(index(t2, a2, s2))];
          slot.lo = std::min(slot.lo, cur.lo + delta);
          slot.hi = std::max(slot.hi, cur.hi + delta);
        }
      }
      state = std::move(next);
    }
    for (int idx = 0; idx < 8; ++idx) {
      const Extremes& cur = state[static_cast<std::size_t>(idx)];
      if (cur.lo > cur.hi) continue;
      const bool t = (idx & 4) != 0;
      const bool a = (idx & 2) != 0;
      const double carry_term =
          ((a ? 1.0 : 0.0) - (t ? 1.0 : 0.0)) * pow2(width);
      best.lo = std::min(best.lo, cur.lo + carry_term);
      best.hi = std::max(best.hi, cur.hi + carry_term);
    }
  }
  return to_u64(std::max(std::abs(best.lo), std::abs(best.hi)));
}

std::uint64_t windowed_worst_case_error(unsigned width, unsigned window) {
  if (window == 0) {
    throw std::invalid_argument(
        "windowed_worst_case_error: window must be > 0");
  }
  if (window >= width) return 0;
  if (window > 10) {
    throw std::invalid_argument(
        "windowed_worst_case_error: window > 10 not supported by the DP");
  }
  if (width > 52) {
    throw std::invalid_argument(
        "windowed_worst_case_error: width too large for exact double "
        "accumulation");
  }

  // DP state: (true carry, base-3 encoding of the last `window` symbols).
  // The approximate carry into bit i is recomputed from the buffered
  // symbols (plus the global carry-in while the window still reaches bit
  // 0), exactly as the hardware's per-bit speculative chain does.
  std::uint64_t pow3 = 1;
  for (unsigned j = 0; j < window; ++j) pow3 *= 3;

  struct Extremes {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
  };
  const auto approx_carry_from =
      [&](std::uint64_t buffer, unsigned filled, bool cin,
          bool window_reaches_zero) {
        // Buffer stores symbols oldest..newest in base-3 digits
        // (oldest = most significant digit among `filled`).
        bool carry = window_reaches_zero ? cin : false;
        std::vector<Symbol> symbols(filled);
        std::uint64_t b = buffer;
        for (unsigned j = filled; j-- > 0;) {
          symbols[j] = static_cast<Symbol>(b % 3);
          b /= 3;
        }
        for (unsigned j = 0; j < filled; ++j) {
          carry = next_carry(symbols[j], carry);
        }
        return carry;
      };

  Extremes best;
  for (int cin = 0; cin < 2; ++cin) {
    // state key: true_carry * pow3 + buffer; buffer has min(i, window)
    // symbols at step i.
    std::unordered_map<std::uint64_t, Extremes> state;
    state[(cin ? pow3 : 0)] = Extremes{0.0, 0.0};
    for (unsigned i = 0; i < width; ++i) {
      const unsigned filled = std::min(i, window);
      std::unordered_map<std::uint64_t, Extremes> next;
      for (const auto& [key, cur] : state) {
        const bool t = key >= pow3;
        const std::uint64_t buffer = key % pow3;
        const bool window_reaches_zero = i <= window;
        const bool a_carry =
            approx_carry_from(buffer, filled, cin != 0, window_reaches_zero);
        for (Symbol sym : kSymbols) {
          double delta = (sum_bit(sym, a_carry) ? pow2(i) : 0.0) -
                         (sum_bit(sym, t) ? pow2(i) : 0.0);
          const bool t2 = next_carry(sym, t);
          if (i + 1 == width) {
            // The hardware's carry-out is the windowed carry into the MSB
            // pushed through the MSB cell; account for it here where both
            // the incoming approximate carry and the symbol are known.
            const bool a_out = next_carry(sym, a_carry);
            delta += ((a_out ? 1.0 : 0.0) - (t2 ? 1.0 : 0.0)) * pow2(width);
          }
          // Append symbol to the buffer, dropping the oldest if full.
          std::uint64_t buffer2 = buffer * 3 + static_cast<std::uint64_t>(sym);
          if (filled == window) {
            buffer2 %= pow3;
          }
          const std::uint64_t key2 = (t2 ? pow3 : 0) + buffer2;
          Extremes& slot = next[key2];
          slot.lo = std::min(slot.lo, cur.lo + delta);
          slot.hi = std::max(slot.hi, cur.hi + delta);
        }
      }
      state = std::move(next);
    }
    for (const auto& [key, cur] : state) {
      (void)key;
      best.lo = std::min(best.lo, cur.lo);
      best.hi = std::max(best.hi, cur.hi);
    }
  }
  return to_u64(std::max(std::abs(best.lo), std::abs(best.hi)));
}

std::uint64_t exhaustive_worst_case_error(const Adder& adder) {
  const unsigned width = adder.width();
  if (width > 12) {
    throw std::invalid_argument(
        "exhaustive_worst_case_error: width must be <= 12");
  }
  const Word limit = Word{1} << width;
  double worst = 0.0;
  for (Word a = 0; a < limit; ++a) {
    for (Word b = 0; b < limit; ++b) {
      for (int cin = 0; cin < 2; ++cin) {
        const AddResult approx = adder.add(a, b, cin != 0);
        const AddResult exact = exact_add(width, a, b, cin != 0);
        const double approx_total =
            static_cast<double>(approx.sum) +
            (approx.carry_out ? pow2(width) : 0.0);
        const double exact_total = static_cast<double>(exact.sum) +
                                   (exact.carry_out ? pow2(width) : 0.0);
        worst = std::max(worst, std::abs(approx_total - exact_total));
      }
    }
  }
  return to_u64(worst);
}

}  // namespace approxit::arith
