// Gate inventory: a structural description of a combinational datapath
// component in terms of standard-cell counts plus carry-chain depth.
//
// The energy model (energy.h) turns an inventory into a normalized per-
// operation switching energy following the capacitance-proportional gate
// energies of Weste & Harris, "CMOS VLSI Design" (the paper's energy model
// reference [22]).
#pragma once

#include <cstddef>

namespace approxit::arith {

/// Standard-cell counts of one combinational component.
///
/// `carry_depth` is the longest carry-propagation path measured in full-adder
/// stages; it drives the glitch-energy term in the energy model (longer
/// chains re-evaluate more often before settling).
struct GateInventory {
  std::size_t full_adders = 0;
  std::size_t half_adders = 0;
  std::size_t and2 = 0;
  std::size_t or2 = 0;
  std::size_t xor2 = 0;
  std::size_t mux2 = 0;
  std::size_t inverters = 0;
  std::size_t carry_depth = 0;

  /// Component-wise sum of two inventories; carry_depth takes the max.
  GateInventory operator+(const GateInventory& other) const {
    GateInventory out = *this;
    out.full_adders += other.full_adders;
    out.half_adders += other.half_adders;
    out.and2 += other.and2;
    out.or2 += other.or2;
    out.xor2 += other.xor2;
    out.mux2 += other.mux2;
    out.inverters += other.inverters;
    out.carry_depth =
        carry_depth > other.carry_depth ? carry_depth : other.carry_depth;
    return out;
  }

  /// Total two-input-gate-equivalent count (FA = 5 gates, HA = 2, MUX = 3),
  /// a rough area proxy used in reports.
  std::size_t gate_equivalents() const {
    return full_adders * 5 + half_adders * 2 + and2 + or2 + xor2 + mux2 * 3 +
           inverters;
  }

  bool operator==(const GateInventory&) const = default;
};

}  // namespace approxit::arith
