#include "obs/trace.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.h"

namespace approxit::obs {
namespace {

/// Installs a sink for one test body and always removes it afterwards, so
/// a failing expectation cannot leak tracing into the other tests.
class SinkGuard {
 public:
  explicit SinkGuard(TraceSink* sink) { set_trace_sink(sink); }
  ~SinkGuard() { set_trace_sink(nullptr); }
};

TEST(TraceArgs, NumericAndStringFlavours) {
  EXPECT_TRUE(arg("x", 1.5).numeric);
  EXPECT_EQ(arg("x", 1.5).value, "1.5");
  EXPECT_TRUE(arg("n", std::size_t{42}).numeric);
  EXPECT_EQ(arg("n", std::size_t{42}).value, "42");
  EXPECT_TRUE(arg("b", true).numeric);
  EXPECT_EQ(arg("b", false).value, "false");
  EXPECT_FALSE(arg("s", "level2").numeric);
}

TEST(TraceArgs, NonFiniteDoublesBecomeStrings) {
  // NaN/Inf are not valid JSON numbers; a poisoned statistic must not
  // corrupt the sink output.
  const TraceArg nan_arg = arg("v", std::nan(""));
  EXPECT_FALSE(nan_arg.numeric);
  const TraceArg inf_arg =
      arg("v", std::numeric_limits<double>::infinity());
  EXPECT_FALSE(inf_arg.numeric);
  TraceEvent event;
  event.args = {nan_arg, inf_arg};
  const std::string line = event_to_jsonl(event);
  EXPECT_NE(line.find("\"v\":\""), std::string::npos);  // quoted, not bare
}

TEST(TraceJsonl, SerializesAllFields) {
  TraceEvent event;
  event.kind = EventKind::kSpan;
  event.category = "alu";
  event.name = "fold";
  event.ts_us = 12.5;
  event.dur_us = 3.25;
  event.lane = 2;
  event.args = {arg("mode", "level3"), arg("n", std::size_t{64})};
  const std::string line = event_to_jsonl(event);
  EXPECT_EQ(line,
            "{\"ts\":12.5,\"kind\":\"span\",\"cat\":\"alu\",\"name\":\"fold\","
            "\"lane\":2,\"dur\":3.25,"
            "\"args\":{\"mode\":\"level3\",\"n\":64}}");
}

TEST(TraceJsonl, EscapesSpecialCharacters) {
  TraceEvent event;
  event.name = "a\"b\\c";
  event.args = {arg("msg", "line\nbreak")};
  const std::string line = event_to_jsonl(event);
  EXPECT_NE(line.find("a\\\"b\\\\c"), std::string::npos);
  EXPECT_NE(line.find("line\\nbreak"), std::string::npos);
}

TEST(TraceState, DisabledByDefaultAndEmissionIsNoOp) {
  ASSERT_EQ(trace_sink(), nullptr);
  EXPECT_FALSE(trace_enabled());
  emit_instant("test", "nobody_listens");  // must not crash
}

TEST(TraceState, EnableEmitDisable) {
  RingSink ring(16);
  {
    SinkGuard guard(&ring);
    EXPECT_TRUE(trace_enabled());
    EXPECT_EQ(trace_sink(), &ring);
    emit_instant("test", "hello", {arg("k", 1.0)});
  }
  EXPECT_FALSE(trace_enabled());
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kInstant);
  EXPECT_EQ(events[0].category, "test");
  EXPECT_EQ(events[0].name, "hello");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "k");
}

TEST(TraceRingSink, KeepsNewestAndCountsDropped) {
  RingSink ring(3);
  SinkGuard guard(&ring);
  for (int i = 0; i < 5; ++i) {
    emit_instant("test", "e" + std::to_string(i));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 2u);
  const std::vector<TraceEvent> events = ring.snapshot();
  EXPECT_EQ(events.front().name, "e2");
  EXPECT_EQ(events.back().name, "e4");
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceScopedSpan, EmitsDurationWithLateArgs) {
  RingSink ring;
  {
    SinkGuard guard(&ring);
    ScopedSpan span("sweep", "arm", {arg("index", std::size_t{1})});
    EXPECT_TRUE(span.active());
    span.add_arg(arg("result", 0.5));
  }
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kSpan);
  EXPECT_EQ(events[0].category, "sweep");
  EXPECT_GE(events[0].dur_us, 0.0);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[1].key, "result");
}

TEST(TraceScopedSpan, InactiveWhenTracingOff) {
  ScopedSpan span("sweep", "arm");
  EXPECT_FALSE(span.active());
  span.add_arg(arg("ignored", 1.0));  // must not crash
}

TEST(TraceLaneScope, NestsAndEmitsThreadName) {
  RingSink ring;
  SinkGuard guard(&ring);
  EXPECT_EQ(current_lane(), 0u);
  {
    LaneScope outer(3, "arm:level3");
    EXPECT_EQ(current_lane(), 3u);
    emit_instant("test", "inner");
    {
      LaneScope inner(7, "nested");
      EXPECT_EQ(current_lane(), 7u);
    }
    EXPECT_EQ(current_lane(), 3u);
  }
  EXPECT_EQ(current_lane(), 0u);
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);  // two lane metas + one instant
  EXPECT_EQ(events[0].kind, EventKind::kMeta);
  EXPECT_EQ(events[0].lane, 3u);
  EXPECT_EQ(events[0].args[0].value, "arm:level3");
  EXPECT_EQ(events[1].lane, 3u);
  EXPECT_EQ(events[1].name, "inner");
}

TEST(TraceJsonlSink, WritesOneValidLinePerEvent) {
  std::ostringstream out;
  {
    JsonlSink sink(out);
    SinkGuard guard(&sink);
    emit_instant("session", "iteration", {arg("iter", std::size_t{1})});
    const double start = trace_now_us();
    emit_span("alu", "fold", start, {arg("n", std::size_t{8})});
    EXPECT_EQ(sink.events_written(), 2u);
  }
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NE(out.str().find("\"kind\":\"instant\""), std::string::npos);
  EXPECT_NE(out.str().find("\"kind\":\"span\""), std::string::npos);
}

TEST(TraceJsonlSink, ThrowsOnBadPath) {
  EXPECT_THROW(JsonlSink("/nonexistent_zzz/trace.jsonl"),
               std::runtime_error);
}

TEST(TraceChromeSink, ProducesLoadableTraceEventJson) {
  const std::string path = ::testing::TempDir() + "/approxit_chrome.json";
  {
    ChromeTraceSink sink(path);
    SinkGuard guard(&sink);
    LaneScope lane(1, "arm:acc");
    emit_instant("session", "iteration", {arg("iter", std::size_t{1})});
    const double start = trace_now_us();
    emit_span("alu", "fold", start);
  }  // destructor closes the traceEvents array
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  const std::string text = content.str();
  std::remove(path.c_str());
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);  // lane meta
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);  // span
  EXPECT_NE(text.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(text.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(text.find("]}"), std::string::npos);  // array closed
}

TEST(TraceChromeSink, ThrowsOnBadPath) {
  EXPECT_THROW(ChromeTraceSink("/nonexistent_zzz/trace.json"),
               std::runtime_error);
}

TEST(TraceLogBridge, WarnLogsBecomeTraceEvents) {
  RingSink ring;
  SinkGuard guard(&ring);
  util::log_message(util::LogLevel::kWarn, "core", "watchdog fired");
  util::log_message(util::LogLevel::kError, "core", "aborted");
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].category, "log");
  EXPECT_EQ(events[0].name, "WARN");
  EXPECT_EQ(events[0].args[1].value, "watchdog fired");
  EXPECT_EQ(events[1].name, "ERROR");
}

TEST(TraceLogBridge, BelowWarnStaysOutOfTrace) {
  RingSink ring;
  SinkGuard guard(&ring);
  // Info passes the stderr filter only if the level allows it, but the
  // bridge is warn+ regardless of the active log level.
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::kTrace);
  util::log_message(util::LogLevel::kInfo, "core", "chatty");
  util::set_log_level(saved);
  EXPECT_EQ(ring.size(), 0u);
}

}  // namespace
}  // namespace approxit::obs
