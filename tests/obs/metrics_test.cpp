#include "obs/metrics.h"

#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace approxit::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.add();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  c.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(Gauge, TracksLastValueAndSetFlag) {
  Gauge g;
  EXPECT_FALSE(g.has_value());
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(1.5);
  g.set(-4.0);
  EXPECT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(g.value(), -4.0);
  g.reset();
  EXPECT_FALSE(g.has_value());
}

TEST(Histogram, RecordsAndExtractsQuantiles) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.quantile(50.0), 49.5, 1.0);
  EXPECT_NEAR(h.quantile(99.0), 98.5, 1.0);
}

TEST(MetricsRegistry, HandlesAreStableAndFindOrCreate) {
  MetricsRegistry registry;
  Counter& a = registry.counter("alu.ops");
  Counter& b = registry.counter("alu.ops");
  EXPECT_EQ(&a, &b);  // same name -> same handle
  a.add(3.0);
  EXPECT_DOUBLE_EQ(registry.counter("alu.ops").value(), 3.0);

  Histogram& h1 = registry.histogram("lat", 0.0, 10.0, 5);
  Histogram& h2 = registry.histogram("lat", 0.0, 99.0, 7);  // layout ignored
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, MergeAddsCountersAdoptsGaugesMergesHistograms) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("ops").add(2.0);
  b.counter("ops").add(5.0);
  b.counter("only_b").add(1.0);
  a.gauge("seen_by_a").set(1.0);
  b.gauge("obj").set(7.0);
  a.histogram("lat", 0.0, 10.0, 10).record(1.0);
  b.histogram("lat", 0.0, 10.0, 10).record(9.0);

  a.merge(b);
  const std::map<std::string, double> counters = a.counter_values();
  EXPECT_DOUBLE_EQ(counters.at("ops"), 7.0);
  EXPECT_DOUBLE_EQ(counters.at("only_b"), 1.0);
  const std::map<std::string, double> gauges = a.gauge_values();
  EXPECT_DOUBLE_EQ(gauges.at("obj"), 7.0);
  EXPECT_DOUBLE_EQ(gauges.at("seen_by_a"), 1.0);  // untouched: b never set it
  const auto histograms = a.histogram_values();
  EXPECT_EQ(histograms.at("lat").count(), 2u);
}

TEST(MetricsRegistry, MergeInFixedOrderIsThreadCountInvariant) {
  // Simulates the sweep reduction: arms write disjoint amounts into their
  // own registry, then merge in fixed arm order. The totals must be exact.
  const auto fill = [](MetricsRegistry& r, double amount) {
    r.counter("energy").add(amount);
    r.counter("iters").add(10.0);
  };
  MetricsRegistry arm0, arm1, arm2, merged;
  fill(arm0, 0.1);
  fill(arm1, 0.2);
  fill(arm2, 0.4);
  merged.merge(arm0);
  merged.merge(arm1);
  merged.merge(arm2);
  EXPECT_DOUBLE_EQ(merged.counter_values().at("energy"), (0.1 + 0.2) + 0.4);
  EXPECT_DOUBLE_EQ(merged.counter_values().at("iters"), 30.0);
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  MetricsRegistry registry;
  Counter& c = registry.counter("ops");
  Gauge& g = registry.gauge("obj");
  c.add(4.0);
  g.set(2.0);
  registry.histogram("lat", 0.0, 1.0, 2).record(0.5);
  registry.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_FALSE(g.has_value());
  EXPECT_EQ(registry.histogram_values().at("lat").count(), 0u);
  c.add(1.0);  // the old handle still feeds the registry
  EXPECT_DOUBLE_EQ(registry.counter_values().at("ops"), 1.0);
}

TEST(MetricsRegistry, ConcurrentCounterAddsAreLossless) {
  MetricsRegistry registry;
  Counter& c = registry.counter("ops");
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add(1.0);
    });
  }
  for (std::thread& w : workers) w.join();
  // Integer-valued adds stay exact in a double up to 2^53.
  EXPECT_DOUBLE_EQ(c.value(), kThreads * kAddsPerThread);
}

TEST(MetricsRegistry, ToJsonListsAllMetricKinds) {
  MetricsRegistry registry;
  registry.counter("session.iterations").add(12.0);
  registry.gauge("session.final_objective").set(0.5);
  registry.histogram("alu.batch_us", 0.0, 10.0, 10).record(2.0);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"session.iterations\""), std::string::npos);
  EXPECT_NE(json.find("\"session.final_objective\""), std::string::npos);
  EXPECT_NE(json.find("\"alu.batch_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// Labeled metric names carry literal quotes (telemetry.h labeled());
// to_json must escape them or the stats wire response is not JSON.
TEST(MetricsRegistry, ToJsonEscapesLabeledMetricNames) {
  MetricsRegistry registry;
  registry.counter("svc.tenant.converged{tenant=\"ci\"}").add(2.0);
  registry.gauge("svc.scorecard.quality{tenant=\"a\\b\"}").set(0.25);
  const std::string json = registry.to_json();
  EXPECT_NE(
      json.find("\"svc.tenant.converged{tenant=\\\"ci\\\"}\":2"),
      std::string::npos)
      << json;
  EXPECT_NE(json.find("{tenant=\\\"a\\\\b\\\"}"), std::string::npos) << json;
  // No raw embedded quote may survive (it would truncate the JSON key).
  EXPECT_EQ(json.find("\"ci\""), std::string::npos) << json;
}

TEST(GlobalMetrics, IsASingleton) {
  EXPECT_EQ(&global_metrics(), &global_metrics());
}

}  // namespace
}  // namespace approxit::obs
