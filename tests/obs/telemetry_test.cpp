#include "obs/telemetry.h"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace approxit::obs {
namespace {

// --- labeled names ---------------------------------------------------------

TEST(LabeledNames, EmptyLabelListReturnsBaseUnchanged) {
  EXPECT_EQ(labeled("svc.jobs", {}), "svc.jobs");
}

TEST(LabeledNames, KeysAreSortedIntoCanonicalForm) {
  const std::string a = labeled("svc.jobs", {{"tenant", "t1"}, {"app", "x"}});
  const std::string b = labeled("svc.jobs", {{"app", "x"}, {"tenant", "t1"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, "svc.jobs{app=\"x\",tenant=\"t1\"}");
}

TEST(LabeledNames, ValuesAreEscaped) {
  const std::string name = labeled("m", {{"k", "a\"b\\c"}});
  EXPECT_EQ(name, "m{k=\"a\\\"b\\\\c\"}");
  const ParsedMetricName parsed = parse_metric_name(name);
  EXPECT_EQ(parsed.base, "m");
  EXPECT_EQ(parsed.labels.at("k"), "a\"b\\c");
}

TEST(LabeledNames, ParseRoundTripsAndRejectsMalformedSuffix) {
  const std::string name =
      labeled("svc.tenant.jobs", {{"tenant", "acme"}, {"tier", "gold"}});
  const ParsedMetricName parsed = parse_metric_name(name);
  EXPECT_EQ(parsed.base, "svc.tenant.jobs");
  ASSERT_EQ(parsed.labels.size(), 2u);
  EXPECT_EQ(parsed.labels.at("tenant"), "acme");
  EXPECT_EQ(parsed.labels.at("tier"), "gold");

  const ParsedMetricName plain = parse_metric_name("svc.jobs");
  EXPECT_EQ(plain.base, "svc.jobs");
  EXPECT_TRUE(plain.labels.empty());

  // A brace suffix that is not well-formed labels stays part of the base.
  const ParsedMetricName odd = parse_metric_name("svc.jobs{oops");
  EXPECT_EQ(odd.base, "svc.jobs{oops");
  EXPECT_TRUE(odd.labels.empty());
}

// --- exporter: full snapshots ----------------------------------------------

TEST(MetricsExporterTest, FamilyNameSanitizesForPrometheus) {
  MetricsExporter exporter;
  EXPECT_EQ(exporter.family_name("svc.run_ms"), "approxit_svc_run_ms");
  EXPECT_EQ(exporter.family_name("weird-name.1x"), "approxit_weird_name_1x");
}

TEST(MetricsExporterTest, FullPrometheusSnapshotHasFamiliesAndLabels) {
  MetricsRegistry registry;
  registry.counter(labeled("svc.tenant.jobs", {{"tenant", "t1"}})).add(3.0);
  registry.counter(labeled("svc.tenant.jobs", {{"tenant", "t2"}})).add(1.0);
  registry.gauge("svc.queue.depth").set(4.0);
  registry.histogram("svc.run_ms", 0.0, 10.0, 2).record(1.0);

  MetricsExporter exporter;
  const std::string text =
      exporter.export_full(registry, MetricsExporter::Format::kPrometheus);
  EXPECT_NE(text.find("# TYPE approxit_svc_tenant_jobs counter"),
            std::string::npos);
  EXPECT_NE(text.find("approxit_svc_tenant_jobs{tenant=\"t1\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("approxit_svc_tenant_jobs{tenant=\"t2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE approxit_svc_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE approxit_svc_run_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("approxit_svc_run_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("approxit_svc_run_ms_count 1"), std::string::npos);
}

TEST(MetricsExporterTest, EqualRegistriesExportByteIdenticalDocuments) {
  const auto fill = [](MetricsRegistry& registry) {
    registry.counter(labeled("svc.tenant.jobs", {{"tenant", "a"}})).add(2.0);
    registry.counter("alu.ops").add(100.0);
    registry.gauge("session.final_step_norm").set(1e-9);
    registry.histogram("svc.run_ms", 0.0, 100.0, 8).record(12.0);
  };
  MetricsRegistry first;
  MetricsRegistry second;
  // Insertion order differs; the snapshot maps sort, so the export must
  // not care.
  fill(first);
  second.histogram("svc.run_ms", 0.0, 100.0, 8).record(12.0);
  second.gauge("session.final_step_norm").set(1e-9);
  second.counter("alu.ops").add(100.0);
  second.counter(labeled("svc.tenant.jobs", {{"tenant", "a"}})).add(2.0);

  MetricsExporter exporter;
  for (const auto format : {MetricsExporter::Format::kPrometheus,
                            MetricsExporter::Format::kJsonLines}) {
    EXPECT_EQ(exporter.export_full(first, format),
              exporter.export_full(second, format));
  }
}

TEST(MetricsExporterTest, JsonLinesSnapshotIsOneObjectPerLine) {
  MetricsRegistry registry;
  registry.counter("svc.jobs").add(2.0);
  registry.histogram("svc.run_ms", 0.0, 10.0, 4).record(3.0);

  MetricsExporter exporter;
  const std::string text =
      exporter.export_full(registry, MetricsExporter::Format::kJsonLines);
  EXPECT_NE(text.find("\"metric\":\"svc.jobs\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"histogram\""), std::string::npos);
  // Every line parses as an object: starts '{', ends '}'.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    ASSERT_GT(end, start);
    EXPECT_EQ(text[start], '{');
    EXPECT_EQ(text[end - 1], '}');
    start = end + 1;
  }
}

// --- exporter: delta snapshots ---------------------------------------------

TEST(MetricsExporterTest, DeltaReportsEachIncrementExactlyOnce) {
  MetricsRegistry registry;
  MetricsExporter exporter;
  registry.counter("svc.jobs").add(5.0);

  const std::string first =
      exporter.export_delta(registry, MetricsExporter::Format::kJsonLines);
  EXPECT_NE(first.find("\"value\":5"), std::string::npos);

  // Idle registry -> empty delta, repeatedly.
  EXPECT_EQ(
      exporter.export_delta(registry, MetricsExporter::Format::kJsonLines),
      "");
  EXPECT_EQ(
      exporter.export_delta(registry, MetricsExporter::Format::kJsonLines),
      "");

  registry.counter("svc.jobs").add(2.0);
  const std::string second =
      exporter.export_delta(registry, MetricsExporter::Format::kJsonLines);
  EXPECT_NE(second.find("\"value\":2"), std::string::npos);
  EXPECT_EQ(second.find("\"value\":7"), std::string::npos);
}

TEST(MetricsExporterTest, DeltaGaugesReportOnlyChanges) {
  MetricsRegistry registry;
  MetricsExporter exporter;
  registry.gauge("svc.queue.depth").set(3.0);
  EXPECT_NE(
      exporter.export_delta(registry, MetricsExporter::Format::kJsonLines)
          .find("svc.queue.depth"),
      std::string::npos);
  // Unchanged gauge -> omitted.
  EXPECT_EQ(
      exporter.export_delta(registry, MetricsExporter::Format::kJsonLines),
      "");
  registry.gauge("svc.queue.depth").set(1.0);
  EXPECT_NE(
      exporter.export_delta(registry, MetricsExporter::Format::kJsonLines)
          .find("svc.queue.depth"),
      std::string::npos);
}

TEST(MetricsExporterTest, DeltaHandlesCounterResetAndBaselineReset) {
  MetricsRegistry registry;
  MetricsExporter exporter;
  registry.counter("svc.jobs").add(10.0);
  exporter.export_delta(registry, MetricsExporter::Format::kJsonLines);

  // Counter went backwards (process restart semantics): report the current
  // value, not a negative delta.
  registry.reset();
  registry.counter("svc.jobs").add(4.0);
  const std::string after_reset =
      exporter.export_delta(registry, MetricsExporter::Format::kJsonLines);
  EXPECT_NE(after_reset.find("\"value\":4"), std::string::npos);

  // reset_baseline(): the next delta reports everything as new again.
  exporter.reset_baseline();
  const std::string fresh =
      exporter.export_delta(registry, MetricsExporter::Format::kJsonLines);
  EXPECT_NE(fresh.find("\"value\":4"), std::string::npos);
}

TEST(MetricsExporterTest, DeltaHistogramReportsBucketIncrements) {
  MetricsRegistry registry;
  MetricsExporter exporter;
  registry.histogram("svc.run_ms", 0.0, 10.0, 2).record(1.0);
  exporter.export_delta(registry, MetricsExporter::Format::kPrometheus);

  registry.histogram("svc.run_ms", 0.0, 10.0, 2).record(9.0);
  const std::string delta =
      exporter.export_delta(registry, MetricsExporter::Format::kPrometheus);
  // Only the one new observation appears in the delta's count.
  EXPECT_NE(delta.find("approxit_svc_run_ms_count 1"), std::string::npos);
  EXPECT_EQ(delta.find("approxit_svc_run_ms_count 2"), std::string::npos);
}

// --- quality scorecard -----------------------------------------------------

JobOutcome make_outcome(const std::string& tenant, double quality) {
  JobOutcome outcome;
  outcome.tenant = tenant;
  outcome.quality_error = quality;
  outcome.energy_ratio = 0.5;
  outcome.latency_ms = 10.0;
  outcome.converged = true;
  outcome.terminal = "done";
  return outcome;
}

TEST(QualityScorecardTest, AggregatesPerTenant) {
  QualityScorecard scorecard;
  scorecard.record(make_outcome("a", 0.1));
  scorecard.record(make_outcome("a", 0.3));
  scorecard.record(make_outcome("b", 0.2));
  JobOutcome failed = make_outcome("a", 0.0);
  failed.converged = false;
  failed.terminal = "failed";
  scorecard.record(failed);

  const auto& tenants = scorecard.tenants();
  ASSERT_EQ(tenants.size(), 2u);
  const TenantScore& a = tenants.at("a");
  EXPECT_EQ(a.jobs, 3u);
  EXPECT_EQ(a.converged, 2u);
  EXPECT_EQ(a.failed, 1u);
  EXPECT_NEAR(a.quality.mean(), (0.1 + 0.3 + 0.0) / 3.0, 1e-12);
  EXPECT_EQ(tenants.at("b").jobs, 1u);
}

TEST(QualityScorecardTest, ThresholdCrossingIsEdgeTriggered) {
  ScorecardConfig config;
  config.window = 2;
  config.quality_threshold = 0.5;
  QualityScorecard scorecard(config);

  EXPECT_FALSE(scorecard.record(make_outcome("t", 0.1)));  // mean 0.1
  EXPECT_TRUE(scorecard.record(make_outcome("t", 1.5)));   // mean 0.8: edge
  EXPECT_FALSE(scorecard.record(make_outcome("t", 1.5)));  // still above
  EXPECT_FALSE(scorecard.record(make_outcome("t", 0.0)));  // mean 0.75 above
  EXPECT_FALSE(scorecard.record(make_outcome("t", 0.0)));  // mean 0: below
  EXPECT_TRUE(scorecard.record(make_outcome("t", 2.0)));   // re-crossing
  EXPECT_EQ(scorecard.threshold_crossings(), 2u);
  EXPECT_EQ(scorecard.tenants().at("t").threshold_crossings, 2u);
}

TEST(QualityScorecardTest, ZeroThresholdDisablesSignal) {
  QualityScorecard scorecard;  // default threshold 0 = disabled
  EXPECT_FALSE(scorecard.record(make_outcome("t", 100.0)));
  EXPECT_EQ(scorecard.threshold_crossings(), 0u);
}

TEST(QualityScorecardTest, ExportToWritesLabeledSeries) {
  QualityScorecard scorecard;
  scorecard.record(make_outcome("acme", 0.25));

  MetricsRegistry registry;
  scorecard.export_to(registry);
  const auto gauges = registry.gauge_values();
  EXPECT_DOUBLE_EQ(
      gauges.at(labeled("svc.scorecard.jobs", {{"tenant", "acme"}})), 1.0);
  EXPECT_DOUBLE_EQ(
      gauges.at(labeled("svc.scorecard.quality_mean", {{"tenant", "acme"}})),
      0.25);

  // Idempotent: re-export into the same registry must not double-count.
  scorecard.export_to(registry);
  EXPECT_DOUBLE_EQ(
      registry.gauge_values().at(
          labeled("svc.scorecard.jobs", {{"tenant", "acme"}})),
      1.0);
}

TEST(QualityScorecardTest, JsonDocumentNamesTenants) {
  QualityScorecard scorecard;
  scorecard.record(make_outcome("acme", 0.25));
  const std::string json = scorecard.to_json();
  EXPECT_NE(json.find("\"acme\""), std::string::npos);
  EXPECT_NE(json.find("\"threshold_crossings\""), std::string::npos);
}

// --- job context propagation -----------------------------------------------

class SinkGuard {
 public:
  explicit SinkGuard(TraceSink* sink) { set_trace_sink(sink); }
  ~SinkGuard() { set_trace_sink(nullptr); }
};

const TraceArg* find_arg(const TraceEvent& event, const std::string& key) {
  for (const TraceArg& a : event.args) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

TEST(JobContextTest, LanefulScopeAttachesJobArgsToEveryEvent) {
  RingSink ring;
  SinkGuard guard(&ring);

  JobContext context;
  context.job_id = 42;
  context.tenant = "acme";
  context.attempt = 2;
  {
    JobScope scope(context, 1042, "job-42");
    emit_instant("test", "inside");
  }
  emit_instant("test", "outside");

  const std::vector<TraceEvent> events = ring.snapshot();
  const TraceEvent* inside = nullptr;
  const TraceEvent* outside = nullptr;
  for (const TraceEvent& event : events) {
    if (event.name == "inside") inside = &event;
    if (event.name == "outside") outside = &event;
  }
  ASSERT_NE(inside, nullptr);
  ASSERT_NE(outside, nullptr);
  ASSERT_NE(find_arg(*inside, "job"), nullptr);
  EXPECT_EQ(find_arg(*inside, "job")->value, "42");
  EXPECT_EQ(find_arg(*inside, "tenant")->value, "acme");
  EXPECT_EQ(find_arg(*inside, "attempt")->value, "2");
  EXPECT_EQ(inside->lane, 1042u);
  EXPECT_EQ(find_arg(*outside, "job"), nullptr);
}

TEST(JobContextTest, ContextOnlyScopeCopiesVerbatim) {
  // Propagating the (inactive) ambient context into a pool thread must not
  // invent job 0 args.
  RingSink ring;
  SinkGuard guard(&ring);

  const JobContext ambient = current_job();
  EXPECT_FALSE(ambient.active);
  {
    JobScope scope(ambient);
    emit_instant("test", "propagated_inactive");
  }

  // An ACTIVE context propagates with its args but without a new lane.
  JobContext active;
  active.job_id = 7;
  active.tenant = "t";
  active.attempt = 1;
  active.active = true;
  {
    JobScope scope(active);
    emit_instant("test", "propagated_active");
  }

  for (const TraceEvent& event : ring.snapshot()) {
    if (event.name == "propagated_inactive") {
      EXPECT_EQ(find_arg(event, "job"), nullptr);
    }
    if (event.name == "propagated_active") {
      ASSERT_NE(find_arg(event, "job"), nullptr);
      EXPECT_EQ(find_arg(event, "job")->value, "7");
    }
  }
}

TEST(JobContextTest, ScopeRestoresPreviousContext) {
  JobContext outer;
  outer.job_id = 1;
  outer.tenant = "outer";
  outer.active = true;
  JobScope outer_scope(outer);
  {
    JobContext inner;
    inner.job_id = 2;
    inner.tenant = "inner";
    inner.active = true;
    JobScope inner_scope(inner);
    EXPECT_EQ(current_job().job_id, 2u);
  }
  EXPECT_EQ(current_job().job_id, 1u);
  EXPECT_EQ(current_job().tenant, "outer");
}

}  // namespace
}  // namespace approxit::obs
