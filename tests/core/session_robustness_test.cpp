// ApproxItSession recovery ladder end to end: rung-1 rollback + forced
// accurate, rung-2 checkpoint restore, safe-mode latching, structured
// aborts, and the budget-exhaustion path. Uses a scripted method whose
// corruption schedule keys on PHYSICAL iterate() calls, so a poisoned
// call is consumed exactly once regardless of rollbacks/restores.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "arith/alu.h"
#include "core/session.h"
#include "core/static_strategy.h"

namespace approxit::core {
namespace {

/// Deterministic 1-D method: f(x) = x, each clean iterate() decrements x
/// by 1 from `initial`; converged when x <= converge_at. Calls listed in
/// `poison_calls` (1-based, counted since reset) drive the state to NaN;
/// with growth > 1 every clean call multiplies x instead (divergence).
class ScriptedMethod : public opt::IterativeMethod {
 public:
  struct Options {
    double initial = 10.0;
    double converge_at = 0.5;
    std::size_t budget = 60;
    std::set<std::size_t> poison_calls;
    std::size_t poison_from = 0;  ///< 0 = off; poisons every call >= this.
    double growth = 0.0;          ///< > 1: x *= growth (diverging method).
  };

  explicit ScriptedMethod(Options options) : options_(options) { reset(); }

  std::string name() const override { return "scripted"; }
  std::size_t dimension() const override { return 1; }

  void reset() override {
    x_ = options_.initial;
    calls_ = 0;
  }

  opt::IterationStats iterate(arith::ArithContext&) override {
    ++calls_;
    opt::IterationStats stats;
    stats.iteration = calls_;
    stats.objective_before = x_;
    double next;
    if (poisoned(calls_)) {
      next = std::nan("");
    } else if (options_.growth > 1.0) {
      next = x_ * options_.growth;
    } else {
      next = x_ - 1.0;
    }
    stats.step_norm = std::abs(next - x_);  // NaN on a poisoned call
    x_ = next;
    stats.objective_after = x_;
    stats.state_norm = std::abs(x_);
    stats.grad_dot_step = -stats.step_norm;
    stats.grad_norm = 1.0;
    stats.converged = x_ <= options_.converge_at;  // false for NaN
    return stats;
  }

  double objective() const override { return x_; }
  std::vector<double> state() const override { return {x_}; }
  void restore(const std::vector<double>& snapshot) override {
    x_ = snapshot.at(0);
  }
  std::size_t max_iterations() const override { return options_.budget; }
  double tolerance() const override { return options_.converge_at; }

  std::size_t calls() const { return calls_; }

 private:
  bool poisoned(std::size_t call) const {
    if (options_.poison_from > 0 && call >= options_.poison_from) return true;
    return options_.poison_calls.count(call) > 0;
  }

  Options options_;
  double x_ = 0.0;
  std::size_t calls_ = 0;
};

RunReport run_scripted(ScriptedMethod& method, StaticStrategy& strategy,
                       const SessionOptions& options = {}) {
  arith::QcsAlu alu;
  ApproxItSession session(method, strategy, alu);
  // The scripted poison schedule must not be consumed by an offline
  // characterization pass.
  session.set_characterization(ModeCharacterization{});
  return session.run(options);
}

TEST(SessionRobustness, CleanRunConvergesWithWatchdogQuiet) {
  ScriptedMethod method({});
  StaticStrategy strategy(arith::ApproxMode::kLevel2);
  const RunReport report = run_scripted(method, strategy);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.status, RunStatus::kConverged);
  EXPECT_EQ(report.watchdog.total(), 0u);
  EXPECT_EQ(report.forced_escalations, 0u);
  EXPECT_EQ(report.checkpoint_restores, 0u);
  EXPECT_FALSE(report.safe_mode);
  EXPECT_EQ(report.iterations, 10u);  // 10.0 -> 0.0 by unit steps
}

TEST(SessionRobustness, WatchdogOnOffIdenticalOnCleanRun) {
  SessionOptions with_watchdog;
  SessionOptions without_watchdog;
  without_watchdog.watchdog.enabled = false;

  ScriptedMethod method_a({});
  StaticStrategy strategy_a(arith::ApproxMode::kLevel3);
  const RunReport guarded = run_scripted(method_a, strategy_a, with_watchdog);

  ScriptedMethod method_b({});
  StaticStrategy strategy_b(arith::ApproxMode::kLevel3);
  const RunReport bare = run_scripted(method_b, strategy_b, without_watchdog);

  EXPECT_EQ(guarded.iterations, bare.iterations);
  EXPECT_EQ(guarded.final_objective, bare.final_objective);
  EXPECT_EQ(guarded.final_state, bare.final_state);
  EXPECT_EQ(guarded.converged, bare.converged);
  EXPECT_EQ(guarded.status, bare.status);
}

TEST(SessionRobustness, TransientNanInApproximateModeRecoversViaRung1) {
  ScriptedMethod method({.poison_calls = {3}});
  StaticStrategy strategy(arith::ApproxMode::kLevel2);
  const RunReport report = run_scripted(method, strategy);

  // Never silently kConverged when the watchdog fired.
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.status, RunStatus::kRecovered);
  EXPECT_EQ(report.watchdog.count(WatchdogTrigger::kNonFinite), 1u);
  EXPECT_EQ(report.forced_escalations, 1u);  // rollback + forced accurate
  EXPECT_EQ(report.checkpoint_restores, 0u);
  EXPECT_FALSE(report.safe_mode);
  // The corrupted iteration was rolled back, not counted as progress:
  // one accurate step replaces it.
  EXPECT_GE(report.steps(arith::ApproxMode::kAccurate), 1u);
  EXPECT_TRUE(std::isfinite(report.final_objective));
  // The poisoned iteration is visible in the trace, flagged and rolled
  // back.
  bool flagged = false;
  for (const IterationRecord& record : report.trace) {
    if (record.trigger == WatchdogTrigger::kNonFinite) {
      flagged = true;
      EXPECT_TRUE(record.rolled_back);
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(SessionRobustness, NanInAccurateModeRecoversViaCheckpointRestore) {
  // Already in the accurate mode: rung 1 (re-run accurately) cannot help,
  // the session must rewind through the checkpoint ring instead.
  ScriptedMethod method({.poison_calls = {3}});
  StaticStrategy strategy(arith::ApproxMode::kAccurate);
  const RunReport report = run_scripted(method, strategy);

  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.status, RunStatus::kRecovered);
  EXPECT_EQ(report.forced_escalations, 0u);
  EXPECT_EQ(report.checkpoint_restores, 1u);
  EXPECT_TRUE(std::isfinite(report.final_objective));
  EXPECT_LE(report.final_objective, method.tolerance());
}

TEST(SessionRobustness, RepeatedFaultsLatchSafeMode) {
  ScriptedMethod method({.budget = 80, .poison_calls = {3, 6, 9}});
  StaticStrategy strategy(arith::ApproxMode::kLevel1);
  SessionOptions options;
  options.watchdog.safe_mode_after = 2;
  const RunReport report = run_scripted(method, strategy, options);

  EXPECT_TRUE(report.safe_mode);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.status, RunStatus::kRecovered);
  EXPECT_EQ(report.watchdog.count(WatchdogTrigger::kNonFinite), 3u);
  // Once latched, every subsequent iteration runs accurately: the level1
  // static strategy is overridden to the end of the run.
  bool past_latch = false;
  std::size_t recoveries_seen = 0;
  for (const IterationRecord& record : report.trace) {
    if (record.trigger != WatchdogTrigger::kNone) {
      ++recoveries_seen;
      if (recoveries_seen >= 2) past_latch = true;
      continue;
    }
    if (past_latch) {
      EXPECT_EQ(record.mode, arith::ApproxMode::kAccurate)
          << "iteration " << record.index;
    }
  }
}

TEST(SessionRobustness, PersistentPoisonAbortsWithNumericalFault) {
  // Every call from 3 on is poisoned: rung 1, then the checkpoint ring
  // drains, then nothing healthy is left — structured abort, never a
  // garbage "converged" result.
  ScriptedMethod::Options script;
  script.poison_from = 3;
  ScriptedMethod method(script);
  StaticStrategy strategy(arith::ApproxMode::kLevel2);
  SessionOptions options;
  options.watchdog.safe_mode_after = 2;
  options.watchdog.max_recoveries = 10;
  const RunReport report = run_scripted(method, strategy, options);

  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.status, RunStatus::kNumericalFault);
  EXPECT_GT(report.watchdog.count(WatchdogTrigger::kNonFinite), 0u);
  EXPECT_GT(report.checkpoint_restores, 0u);
  EXPECT_TRUE(std::isfinite(report.final_objective));  // restored, not NaN
}

TEST(SessionRobustness, ImmediateNanWithEmptyRingAborts) {
  // Poisoned on the very first call in the accurate mode: no checkpoint
  // was ever taken and rung 1 does not apply.
  ScriptedMethod::Options script;
  script.poison_from = 1;
  ScriptedMethod method(script);
  StaticStrategy strategy(arith::ApproxMode::kAccurate);
  const RunReport report = run_scripted(method, strategy);

  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.status, RunStatus::kNumericalFault);
  EXPECT_EQ(report.checkpoint_restores, 0u);
  // The pre-iteration snapshot was restored on abort: the reported final
  // state is the (finite) initial iterate, not NaN.
  ASSERT_EQ(report.final_state.size(), 1u);
  EXPECT_DOUBLE_EQ(report.final_state[0], 10.0);
}

TEST(SessionRobustness, DivergingMethodAbortsWithDivergedStatus) {
  ScriptedMethod::Options script;
  script.growth = 8.0;
  ScriptedMethod method(script);
  StaticStrategy strategy(arith::ApproxMode::kLevel2);
  SessionOptions options;
  options.watchdog.divergence_factor = 2.0;  // ceiling = 10 + 2*10 = 30
  const RunReport report = run_scripted(method, strategy, options);

  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.status, RunStatus::kDiverged);
  EXPECT_GT(report.watchdog.count(WatchdogTrigger::kDivergence), 0u);
  EXPECT_EQ(report.watchdog.count(WatchdogTrigger::kNonFinite), 0u);
}

TEST(SessionRobustness, ZeroMaxIterationsUsesMethodBudget) {
  // Satellite: max_iterations = 0 with a never-converging method must
  // terminate at the method's own budget with converged == false.
  ScriptedMethod::Options script;
  script.converge_at = -1e9;  // unreachable: never converges
  script.budget = 25;
  ScriptedMethod method(script);
  StaticStrategy strategy(arith::ApproxMode::kLevel4);
  SessionOptions options;
  options.max_iterations = 0;
  const RunReport report = run_scripted(method, strategy, options);

  EXPECT_EQ(report.iterations, 25u);
  EXPECT_EQ(method.calls(), 25u);
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.status, RunStatus::kBudgetExhausted);
  EXPECT_EQ(report.watchdog.total(), 0u);
}

TEST(SessionRobustness, ExplicitBudgetOverridesMethodBudget) {
  ScriptedMethod::Options script;
  script.converge_at = -1e9;
  script.budget = 25;
  ScriptedMethod method(script);
  StaticStrategy strategy(arith::ApproxMode::kLevel4);
  SessionOptions options;
  options.max_iterations = 7;
  const RunReport report = run_scripted(method, strategy, options);

  EXPECT_EQ(report.iterations, 7u);
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.status, RunStatus::kBudgetExhausted);
}

}  // namespace
}  // namespace approxit::core
