// Session + characterization integration tests on a small quadratic
// problem driven by gradient descent.
#include <gtest/gtest.h>

#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "core/session.h"
#include "core/static_strategy.h"
#include "la/vector_ops.h"
#include "opt/gradient_descent.h"
#include "opt/problem.h"

namespace approxit::core {
namespace {

using arith::ApproxMode;

class SessionTest : public ::testing::Test {
 protected:
  SessionTest()
      : problem_(la::Matrix{{4.0, 1.0}, {1.0, 3.0}},
                 std::vector<double>{1.0, 2.0}),
        solver_(problem_, {5.0, -4.0},
                {.step_size = 0.2, .max_iter = 400, .tolerance = 1e-12}) {}

  opt::QuadraticProblem problem_;
  opt::GradientDescentSolver solver_;
  arith::QcsAlu alu_;
};

TEST_F(SessionTest, CharacterizationPopulatesAllFields) {
  const ModeCharacterization c = characterize(solver_, alu_);
  // Monotone energies.
  for (std::size_t i = 1; i < arith::kNumModes; ++i) {
    EXPECT_GT(c.energy_per_op[i], c.energy_per_op[i - 1]);
  }
  // Errors decrease with accuracy; accurate mode error-free.
  EXPECT_GT(c.quality_error[0], c.quality_error[3]);
  EXPECT_DOUBLE_EQ(c.quality_error[4], 0.0);
  EXPECT_DOUBLE_EQ(c.state_error[4], 0.0);
  // Worst >= mean.
  for (std::size_t i = 0; i < arith::kNumModes; ++i) {
    EXPECT_GE(c.worst_quality_error[i], c.quality_error[i]);
    EXPECT_GE(c.worst_state_error[i], c.state_error[i]);
  }
  EXPECT_FALSE(c.angle_samples.empty());
  EXPECT_TRUE(std::is_sorted(c.angle_samples.begin(), c.angle_samples.end()));
  EXPECT_GT(c.initial_improvement, 0.0);
}

TEST_F(SessionTest, CharacterizationLeavesMethodReset) {
  const double f0 = solver_.objective();
  (void)characterize(solver_, alu_);
  EXPECT_DOUBLE_EQ(solver_.objective(), f0);
  EXPECT_EQ(alu_.ledger().total_ops(), 0u);  // ledger reset
  EXPECT_EQ(alu_.mode(), ApproxMode::kAccurate);
}

TEST_F(SessionTest, TruthRunConvergesToMinimizer) {
  StaticStrategy strategy(ApproxMode::kAccurate);
  ApproxItSession session(solver_, strategy, alu_);
  const RunReport report = session.run();
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.steps(ApproxMode::kAccurate), report.iterations);
  EXPECT_EQ(report.steps(ApproxMode::kLevel1), 0u);
  EXPECT_NEAR(solver_.x()[0], 1.0 / 11.0, 1e-3);
  EXPECT_GT(report.total_energy, 0.0);
  EXPECT_EQ(report.rollbacks, 0u);
}

TEST_F(SessionTest, ReportAccountsEveryIteration) {
  StaticStrategy strategy(ApproxMode::kLevel3);
  ApproxItSession session(solver_, strategy, alu_);
  const RunReport report = session.run();
  std::size_t total = 0;
  for (std::size_t i = 0; i < arith::kNumModes; ++i) {
    total += report.steps_per_mode[i];
  }
  EXPECT_EQ(total, report.iterations);
  EXPECT_EQ(report.trace.size(), report.iterations);
  // Trace energies sum to the total.
  double energy = 0.0;
  for (const IterationRecord& rec : report.trace) {
    energy += rec.energy;
    EXPECT_EQ(rec.mode, ApproxMode::kLevel3);
  }
  EXPECT_NEAR(energy, report.total_energy, 1e-9);
}

TEST_F(SessionTest, MaxIterationOverrideRespected) {
  StaticStrategy strategy(ApproxMode::kAccurate);
  ApproxItSession session(solver_, strategy, alu_);
  SessionOptions options;
  options.max_iterations = 5;
  const RunReport report = session.run(options);
  EXPECT_LE(report.iterations, 5u);
}

TEST_F(SessionTest, TraceCanBeDisabled) {
  StaticStrategy strategy(ApproxMode::kAccurate);
  ApproxItSession session(solver_, strategy, alu_);
  SessionOptions options;
  options.keep_trace = false;
  const RunReport report = session.run(options);
  EXPECT_TRUE(report.trace.empty());
  EXPECT_GT(report.iterations, 0u);
}

TEST_F(SessionTest, IncrementalRunMatchesTruthResult) {
  StaticStrategy truth_strategy(ApproxMode::kAccurate);
  ApproxItSession truth_session(solver_, truth_strategy, alu_);
  const RunReport truth = truth_session.run();
  const std::vector<double> x_truth(solver_.x().begin(), solver_.x().end());

  IncrementalStrategy strategy;
  ApproxItSession session(solver_, strategy, alu_);
  const RunReport report = session.run();
  EXPECT_TRUE(report.converged);
  // The reconfigured run must land at (essentially) the same minimizer.
  EXPECT_NEAR(solver_.x()[0], x_truth[0], 1e-4);
  EXPECT_NEAR(solver_.x()[1], x_truth[1], 1e-4);
  // And it must start in level1.
  ASSERT_FALSE(report.trace.empty());
  EXPECT_EQ(report.trace.front().mode, ApproxMode::kLevel1);
  (void)truth;
}

TEST_F(SessionTest, AdaptiveRunMatchesTruthResult) {
  StaticStrategy truth_strategy(ApproxMode::kAccurate);
  ApproxItSession truth_session(solver_, truth_strategy, alu_);
  (void)truth_session.run();
  const std::vector<double> x_truth(solver_.x().begin(), solver_.x().end());

  AdaptiveAngleStrategy strategy;
  ApproxItSession session(solver_, strategy, alu_);
  const RunReport report = session.run();
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(solver_.x()[0], x_truth[0], 1e-4);
  EXPECT_NEAR(solver_.x()[1], x_truth[1], 1e-4);
  (void)report;
}

TEST_F(SessionTest, SharedCharacterizationSkipsRecompute) {
  const ModeCharacterization c = characterize(solver_, alu_);
  StaticStrategy strategy(ApproxMode::kAccurate);
  ApproxItSession session(solver_, strategy, alu_);
  EXPECT_FALSE(session.is_characterized());
  session.set_characterization(c);
  EXPECT_TRUE(session.is_characterized());
  const RunReport report = session.run();
  EXPECT_TRUE(report.converged);
}

TEST_F(SessionTest, ReportToStringMentionsStrategyAndMethod) {
  StaticStrategy strategy(ApproxMode::kAccurate);
  ApproxItSession session(solver_, strategy, alu_);
  const RunReport report = session.run();
  const std::string s = report.to_string();
  EXPECT_NE(s.find("gradient_descent"), std::string::npos);
  EXPECT_NE(s.find("static(acc)"), std::string::npos);
}

}  // namespace
}  // namespace approxit::core
