// Cooperative cancellation: token/source semantics, deadline evaluation
// on an injected clock, the session's within-one-iteration stop guarantee
// with a partial result, and the characterization's throw-and-reset
// contract. Also proves an inert or never-cancelled token leaves runs
// bit-identical.
#include <gtest/gtest.h>

#include "core/cancel.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "core/session.h"
#include "core/session_builder.h"
#include "core/static_strategy.h"
#include "opt/gradient_descent.h"
#include "opt/problem.h"

namespace approxit::core {
namespace {

using arith::ApproxMode;

class CancelTest : public ::testing::Test {
 protected:
  CancelTest()
      : problem_(la::Matrix{{4.0, 1.0}, {1.0, 3.0}},
                 std::vector<double>{1.0, 2.0}),
        solver_(problem_, {5.0, -4.0},
                {.step_size = 0.2, .max_iter = 400, .tolerance = 1e-12}) {}

  opt::QuadraticProblem problem_;
  opt::GradientDescentSolver solver_;
  arith::QcsAlu alu_;
};

TEST(CancelToken, InertTokenIsKNoneForever) {
  CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_EQ(token.check(), CancelReason::kNone);
  EXPECT_FALSE(token.stop_requested());
  EXPECT_NO_THROW(token.throw_if_cancelled());
}

TEST(CancelToken, CancelLatchesAndSharesAcrossTokens) {
  CancelSource source;
  const CancelToken a = source.token();
  const CancelToken b = source.token();
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.check(), CancelReason::kNone);

  source.cancel();
  EXPECT_EQ(a.check(), CancelReason::kCancelled);
  EXPECT_EQ(b.check(), CancelReason::kCancelled);
  EXPECT_EQ(source.reason(), CancelReason::kCancelled);

  // An already-latched reason wins over a later-expiring deadline.
  source.set_deadline_ms(-1.0e9);
  source.set_deadline_ms(1.0e-9);
  EXPECT_EQ(a.check(), CancelReason::kCancelled);
}

TEST(CancelToken, DeadlineEvaluatesOnInjectedClock) {
  double now = 100.0;
  CancelSource source([&now] { return now; });
  EXPECT_DOUBLE_EQ(source.now_ms(), 100.0);
  source.set_deadline_ms(150.0);

  const CancelToken token = source.token();
  EXPECT_EQ(token.check(), CancelReason::kNone);
  now = 149.0;
  EXPECT_EQ(token.check(), CancelReason::kNone);
  now = 150.0;  // Deadline is inclusive: clock >= deadline expires.
  EXPECT_EQ(token.check(), CancelReason::kDeadlineExceeded);

  // Latched: rewinding the clock or cancelling cannot change the reason.
  now = 0.0;
  EXPECT_EQ(token.check(), CancelReason::kDeadlineExceeded);
  source.cancel();
  EXPECT_EQ(token.check(), CancelReason::kDeadlineExceeded);
  EXPECT_THROW(token.throw_if_cancelled(), CancelledError);
}

TEST(CancelToken, CancelledErrorCarriesTheReason) {
  CancelSource source;
  source.cancel();
  try {
    source.token().throw_if_cancelled();
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& error) {
    EXPECT_EQ(error.reason(), CancelReason::kCancelled);
    EXPECT_NE(std::string(error.what()).find("cancelled"),
              std::string::npos);
  }
}

TEST_F(CancelTest, PreCancelledSessionStopsBeforeTheFirstIteration) {
  StaticStrategy strategy(ApproxMode::kAccurate);
  ApproxItSession session(solver_, strategy, alu_);
  CancelSource source;
  source.cancel();

  SessionOptions options;
  options.cancel = source.token();
  const RunReport report = session.run(options);
  EXPECT_EQ(report.status, RunStatus::kCancelled);
  EXPECT_EQ(report.iterations, 0u);
  EXPECT_FALSE(report.converged);
  // The partial result is still well-formed: the (initial) state and its
  // objective are reported.
  EXPECT_FALSE(report.final_state.empty());
}

TEST_F(CancelTest, DeadlineStopsTheSessionWithinOneIteration) {
  StaticStrategy strategy(ApproxMode::kAccurate);
  ApproxItSession session(solver_, strategy, alu_);

  // Fake clock that advances 1 ms per deadline poll; the session polls
  // once per iteration, so a deadline of start + 3.5 must stop the run
  // after at most 4 iterations — deterministically, no sleeping.
  double now = 0.0;
  CancelSource source([&now] {
    const double current = now;
    now += 1.0;
    return current;
  });
  source.set_deadline_ms(3.5);

  SessionOptions options;
  options.cancel = source.token();
  const RunReport report = session.run(options);
  EXPECT_EQ(report.status, RunStatus::kDeadlineExceeded);
  EXPECT_GE(report.iterations, 1u);
  EXPECT_LE(report.iterations, 4u);
  EXPECT_FALSE(report.converged);
  EXPECT_FALSE(report.final_state.empty());
}

TEST_F(CancelTest, NeverCancelledTokenIsBitIdenticalToNoToken) {
  StaticStrategy strategy(ApproxMode::kLevel2);
  const ModeCharacterization profile = characterize(solver_, alu_);

  ApproxItSession plain(solver_, strategy, alu_);
  plain.set_characterization(profile);
  const RunReport baseline = plain.run();

  CancelSource source;  // Armed but never cancelled, no deadline.
  SessionOptions options;
  options.cancel = source.token();
  ApproxItSession tokened(solver_, strategy, alu_);
  tokened.set_characterization(profile);
  const RunReport report = tokened.run(options);

  EXPECT_EQ(report.status, baseline.status);
  EXPECT_EQ(report.iterations, baseline.iterations);
  EXPECT_DOUBLE_EQ(report.final_objective, baseline.final_objective);
  EXPECT_DOUBLE_EQ(report.total_energy, baseline.total_energy);
  ASSERT_EQ(report.final_state.size(), baseline.final_state.size());
  for (std::size_t i = 0; i < report.final_state.size(); ++i) {
    EXPECT_DOUBLE_EQ(report.final_state[i], baseline.final_state[i]);
  }
}

TEST_F(CancelTest, CancelledCharacterizationThrowsAndLeavesMethodReset) {
  CancelSource source;
  source.cancel();
  CharacterizationOptions options;
  options.cancel = source.token();

  const double f0 = solver_.objective();
  EXPECT_THROW(characterize(solver_, alu_, options), CancelledError);
  // The throw-and-reset contract: no half-measured profile escapes, and
  // the method/ALU are usable as if nothing ran.
  EXPECT_DOUBLE_EQ(solver_.objective(), f0);
  EXPECT_EQ(alu_.ledger().total_ops(), 0u);
  EXPECT_EQ(alu_.mode(), ApproxMode::kAccurate);

  const ModeCharacterization profile = characterize(solver_, alu_);
  EXPECT_FALSE(profile.angle_samples.empty());
}

TEST_F(CancelTest, SessionBuilderThreadsTheTokenIntoBothStages) {
  IncrementalStrategy strategy;
  CancelSource source;
  source.cancel();

  // Online stage: with a precomputed profile the run itself stops.
  const ModeCharacterization profile = characterize(solver_, alu_);
  const RunReport report = SessionBuilder()
                               .method(solver_)
                               .strategy(strategy)
                               .alu(alu_)
                               .characterization(profile)
                               .cancel(source.token())
                               .run();
  EXPECT_EQ(report.status, RunStatus::kCancelled);
  EXPECT_EQ(report.iterations, 0u);

  // Offline stage: without a profile the characterization throws.
  EXPECT_THROW(SessionBuilder()
                   .method(solver_)
                   .strategy(strategy)
                   .alu(alu_)
                   .cancel(source.token())
                   .run(),
               CancelledError);
}

}  // namespace
}  // namespace approxit::core
