// Session-engine semantics tests against a scripted IterativeMethod test
// double: rollback restores state, vetoes suppress convergence, energy and
// step accounting follow the executed modes exactly.
#include <cmath>
#include <limits>
#include <map>

#include <gtest/gtest.h>

#include "core/incremental_strategy.h"
#include "core/pid_strategy.h"
#include "core/session.h"
#include "core/static_strategy.h"

namespace approxit::core {
namespace {

using arith::ApproxMode;

/// Scripted method: follows a pre-programmed objective trajectory; each
/// iterate() advances a cursor and reports scripted stats. The "state" is
/// the cursor position, so rollback visibly rewinds the trajectory.
class ScriptedMethod final : public opt::IterativeMethod {
 public:
  struct Step {
    double objective_after = 0.0;
    double step_norm = 1.0;
    double grad_dot_step = -1.0;
    double grad_norm = 1.0;
    bool converged = false;
    /// Outcome when the step is RE-executed after a rollback (models a
    /// higher-accuracy retry succeeding). NaN = same as first execution.
    double objective_after_retry =
        std::numeric_limits<double>::quiet_NaN();
    bool converged_retry = false;
  };

  ScriptedMethod(double initial_objective, std::vector<Step> script)
      : initial_objective_(initial_objective),
        script_(std::move(script)),
        visits_(script_.size(), 0) {}

  std::string name() const override { return "scripted"; }
  std::size_t dimension() const override { return 1; }
  void reset() override {
    cursor_ = 0;
    std::fill(visits_.begin(), visits_.end(), 0);
  }

  opt::IterationStats iterate(arith::ArithContext& ctx) override {
    // One routed op per iteration so the energy ledger sees the mode.
    (void)ctx.add(1.0, 1.0);
    const std::size_t pos = std::min(cursor_, script_.size() - 1);
    const Step& step = script_[pos];
    ++visits_[pos];
    const bool retry = visits_[pos] > 1 &&
                       !std::isnan(step.objective_after_retry);
    opt::IterationStats stats;
    stats.iteration = cursor_ + 1;
    stats.objective_before = objective();
    ++cursor_;
    stats.objective_after =
        retry ? step.objective_after_retry : step.objective_after;
    objective_override_[cursor_] = stats.objective_after;
    stats.step_norm = step.step_norm;
    stats.state_norm = 10.0;
    stats.grad_dot_step = step.grad_dot_step;
    stats.grad_norm = step.grad_norm;
    stats.converged = retry ? step.converged_retry : step.converged;
    return stats;
  }

  double objective() const override {
    if (cursor_ == 0) return initial_objective_;
    const auto it = objective_override_.find(cursor_);
    if (it != objective_override_.end()) return it->second;
    return script_[std::min(cursor_ - 1, script_.size() - 1)].objective_after;
  }
  std::vector<double> state() const override {
    return {static_cast<double>(cursor_)};
  }
  void restore(const std::vector<double>& snapshot) override {
    cursor_ = static_cast<std::size_t>(snapshot.at(0));
  }
  std::size_t max_iterations() const override { return 50; }
  double tolerance() const override { return 1e-9; }

  std::size_t cursor() const { return cursor_; }

 private:
  double initial_objective_;
  std::vector<Step> script_;
  std::vector<int> visits_;
  mutable std::map<std::size_t, double> objective_override_;
  std::size_t cursor_ = 0;
};

ModeCharacterization flat_characterization() {
  ModeCharacterization c;
  c.quality_error = {0.1, 0.05, 0.02, 0.01, 0.0};
  c.worst_quality_error = c.quality_error;
  c.state_error = {0.01, 0.005, 0.002, 0.001, 0.0};
  c.worst_state_error = c.state_error;
  c.abs_state_error = {0.01, 0.005, 0.002, 0.001, 0.0};
  c.energy_per_op = {1.0, 2.0, 3.0, 4.0, 10.0};
  c.angle_samples = {0.2, 0.4, 0.6, 0.8};
  c.initial_improvement = 0.5;
  c.objective_scale = 10.0;
  return c;
}

TEST(SessionSemantics, FunctionSchemeRollsBackAndReexecutes) {
  // Step 1 improves, step 2 INCREASES the objective (triggers the function
  // scheme), then improves again.
  std::vector<ScriptedMethod::Step> script = {
      {.objective_after = 9.0},
      // Increase -> rollback; the higher-accuracy retry succeeds.
      {.objective_after = 9.5, .objective_after_retry = 8.5},
      {.objective_after = 8.0},
      {.objective_after = 7.5, .converged = true},
  };
  ScriptedMethod method(10.0, script);
  IncrementalStrategy strategy;
  arith::QcsAlu alu;
  ApproxItSession session(method, strategy, alu);
  session.set_characterization(flat_characterization());
  const RunReport report = session.run();

  EXPECT_EQ(report.rollbacks, 1u);
  // The rolled-back iteration was executed (counted) but its state undone:
  // the script is consumed again from position 1.
  ASSERT_GE(report.trace.size(), 2u);
  EXPECT_TRUE(report.trace[1].rolled_back);
  EXPECT_EQ(report.trace[1].mode, ApproxMode::kLevel1);
  // After rollback the next iteration runs at level2.
  EXPECT_EQ(report.trace[2].mode, ApproxMode::kLevel2);
}

TEST(SessionSemantics, VetoSuppressesConvergence) {
  // The method claims convergence while the objective increased — a false
  // stop. The function scheme must veto it and the run continues.
  std::vector<ScriptedMethod::Step> script = {
      // False stop attempt: the objective INCREASED yet the method claims
      // convergence; the retry at higher accuracy makes real progress.
      {.objective_after = 11.0, .converged = true,
       .objective_after_retry = 9.0},
      {.objective_after = 8.5},
      {.objective_after = 8.499999999, .converged = true},  // genuine
  };
  ScriptedMethod method(10.0, script);
  IncrementalStrategy strategy;
  arith::QcsAlu alu;
  ApproxItSession session(method, strategy, alu);
  session.set_characterization(flat_characterization());
  const RunReport report = session.run();
  EXPECT_GT(report.iterations, 1u);
  EXPECT_TRUE(report.converged);
}

TEST(SessionSemantics, StaticStrategyAcceptsFalseStop) {
  // Same script under a static strategy: no veto, the false stop sticks.
  std::vector<ScriptedMethod::Step> script = {
      {.objective_after = 11.0, .converged = true},
      {.objective_after = 9.0},
  };
  ScriptedMethod method(10.0, script);
  StaticStrategy strategy(ApproxMode::kLevel2);
  arith::QcsAlu alu;
  ApproxItSession session(method, strategy, alu);
  session.set_characterization(flat_characterization());
  const RunReport report = session.run();
  EXPECT_EQ(report.iterations, 1u);
  EXPECT_TRUE(report.converged);
}

TEST(SessionSemantics, EnergyFollowsExecutedModes) {
  std::vector<ScriptedMethod::Step> script(6, {.objective_after = 1.0});
  script.back().converged = true;
  // Decreasing objectives so no scheme fires.
  for (std::size_t i = 0; i < script.size(); ++i) {
    script[i].objective_after = 9.0 - static_cast<double>(i);
  }
  script.back().converged = true;
  ScriptedMethod method(10.0, script);
  StaticStrategy strategy(ApproxMode::kLevel3);
  arith::QcsAlu alu;
  ApproxItSession session(method, strategy, alu);
  session.set_characterization(flat_characterization());
  const RunReport report = session.run();
  EXPECT_EQ(report.steps(ApproxMode::kLevel3), report.iterations);
  EXPECT_NEAR(report.total_energy,
              static_cast<double>(report.iterations) *
                  alu.energy_per_add(ApproxMode::kLevel3),
              1e-9);
}

TEST(SessionSemantics, PidCanAcceptFalseStopUnderSession) {
  // The §2.3 failure mode, isolated: PID never vetoes, so the scripted
  // false stop terminates the run immediately.
  std::vector<ScriptedMethod::Step> script = {
      {.objective_after = 10.5, .converged = true},
      {.objective_after = 5.0},
  };
  ScriptedMethod method(10.0, script);
  PidStrategy strategy;
  arith::QcsAlu alu;
  ApproxItSession session(method, strategy, alu);
  session.set_characterization(flat_characterization());
  const RunReport report = session.run();
  EXPECT_EQ(report.iterations, 1u);
}

TEST(SessionSemantics, BudgetExhaustionReportsNotConverged) {
  std::vector<ScriptedMethod::Step> script = {
      {.objective_after = 9.0},
  };
  ScriptedMethod method(10.0, script);
  StaticStrategy strategy(ApproxMode::kAccurate);
  arith::QcsAlu alu;
  ApproxItSession session(method, strategy, alu);
  session.set_characterization(flat_characterization());
  SessionOptions options;
  options.max_iterations = 7;
  const RunReport report = session.run(options);
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.iterations, 7u);
}

}  // namespace
}  // namespace approxit::core
