// Tests for multi-workload characterization merging, plus a compile check
// of the umbrella header.
#include "approxit.h"

#include <gtest/gtest.h>

namespace approxit::core {
namespace {

ModeCharacterization profile(double eps_scale, double worst_scale,
                             double improvement,
                             std::vector<double> angles) {
  ModeCharacterization c;
  for (std::size_t m = 0; m < 4; ++m) {
    c.quality_error[m] = eps_scale * static_cast<double>(4 - m);
    c.worst_quality_error[m] = worst_scale * static_cast<double>(4 - m);
    c.state_error[m] = 0.1 * eps_scale * static_cast<double>(4 - m);
    c.worst_state_error[m] = 0.1 * worst_scale * static_cast<double>(4 - m);
    c.abs_state_error[m] = eps_scale;
  }
  c.energy_per_op = {1.0, 2.0, 3.0, 4.0, 10.0};
  c.angle_samples = std::move(angles);
  std::sort(c.angle_samples.begin(), c.angle_samples.end());
  c.initial_improvement = improvement;
  c.iterations_characterized = 8;
  return c;
}

TEST(MergeCharacterizations, MeansAveragedWorstMaxed) {
  const auto a = profile(0.1, 0.2, 0.5, {0.1, 0.3});
  const auto b = profile(0.3, 0.8, 0.2, {0.2, 0.4});
  const ModeCharacterization merged = merge_characterizations({a, b});

  // level1 index 0: means (0.4 + 1.2)/2 = 0.8; worst max(0.8, 3.2) = 3.2.
  EXPECT_NEAR(merged.quality_error[0], 0.8, 1e-12);
  EXPECT_NEAR(merged.worst_quality_error[0], 3.2, 1e-12);
  EXPECT_NEAR(merged.abs_state_error[0], 0.2, 1e-12);
}

TEST(MergeCharacterizations, AnglesPooledAndSorted) {
  const auto a = profile(0.1, 0.2, 0.5, {0.3, 0.1});
  const auto b = profile(0.1, 0.2, 0.5, {0.4, 0.2});
  const ModeCharacterization merged = merge_characterizations({a, b});
  ASSERT_EQ(merged.angle_samples.size(), 4u);
  EXPECT_TRUE(std::is_sorted(merged.angle_samples.begin(),
                             merged.angle_samples.end()));
}

TEST(MergeCharacterizations, BudgetTakesMinimum) {
  const auto a = profile(0.1, 0.2, 0.5, {0.1});
  const auto b = profile(0.1, 0.2, 0.2, {0.1});
  EXPECT_DOUBLE_EQ(merge_characterizations({a, b}).initial_improvement, 0.2);
}

TEST(MergeCharacterizations, SingleProfileIsIdentity) {
  const auto a = profile(0.1, 0.2, 0.5, {0.1, 0.3});
  const ModeCharacterization merged = merge_characterizations({a});
  EXPECT_EQ(merged.quality_error, a.quality_error);
  EXPECT_EQ(merged.worst_quality_error, a.worst_quality_error);
  EXPECT_EQ(merged.angle_samples, a.angle_samples);
}

TEST(MergeCharacterizations, EmptyThrows) {
  EXPECT_THROW(merge_characterizations({}), std::invalid_argument);
}

TEST(CharacterizeMany, MergesTwoWorkloads) {
  const auto ds_a = workloads::make_gaussian_blobs(3, 200, 2, 8.0, 0.8, 5);
  const auto ds_b = workloads::make_gaussian_blobs(3, 200, 2, 3.0, 1.2, 9);
  apps::GmmEm method_a(ds_a);
  apps::GmmEm method_b(ds_b);
  arith::QcsAlu alu;
  const ModeCharacterization merged =
      characterize_many({&method_a, &method_b}, alu);
  // Worst-case >= each single profile's means, monotone across levels.
  EXPECT_GE(merged.worst_quality_error[0], merged.quality_error[0]);
  EXPECT_GE(merged.quality_error[0], merged.quality_error[3]);
  EXPECT_FALSE(merged.angle_samples.empty());
  // A session accepts the merged profile directly.
  core::IncrementalStrategy strategy;
  core::ApproxItSession session(method_a, strategy, alu);
  session.set_characterization(merged);
  const RunReport report = session.run();
  EXPECT_TRUE(report.converged);
}

TEST(CharacterizeMany, RejectsNull) {
  arith::QcsAlu alu;
  EXPECT_THROW(characterize_many({nullptr}, alu), std::invalid_argument);
}

}  // namespace
}  // namespace approxit::core
