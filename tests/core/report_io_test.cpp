#include "core/report_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/pareto.h"

namespace approxit::core {
namespace {

RunReport sample_report() {
  RunReport report;
  report.method_name = "gmm_em";
  report.strategy_name = "incremental";
  report.iterations = 3;
  report.steps_per_mode = {1, 1, 0, 0, 1};
  report.rollbacks = 1;
  report.reconfigurations = 2;
  report.total_energy = 123.5;
  report.final_objective = 4.25;
  report.converged = true;
  report.status = RunStatus::kConverged;
  for (std::size_t i = 1; i <= 3; ++i) {
    IterationRecord rec;
    rec.index = i;
    rec.mode = arith::mode_from_index(i - 1);
    rec.objective_after = 10.0 - static_cast<double>(i);
    rec.energy = 40.0 + static_cast<double>(i);
    rec.step_norm = 0.5;
    rec.grad_norm = 0.25;
    rec.rolled_back = i == 2;
    rec.reconfigured = i != 3;
    rec.scheme = i == 2 ? "function" : "none";
    rec.eps_estimate = 0.125 * static_cast<double>(i);
    rec.recovery_rung = i == 3 ? 1 : 0;
    if (i == 3) rec.trigger = WatchdogTrigger::kDivergence;
    report.trace.push_back(rec);
  }
  return report;
}

TEST(ReportJson, ContainsAllSummaryFields) {
  const std::string json = report_to_json(sample_report());
  EXPECT_NE(json.find("\"method\":\"gmm_em\""), std::string::npos);
  EXPECT_NE(json.find("\"strategy\":\"incremental\""), std::string::npos);
  EXPECT_NE(json.find("\"iterations\":3"), std::string::npos);
  EXPECT_NE(json.find("\"level1\":1"), std::string::npos);
  EXPECT_NE(json.find("\"acc\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rollbacks\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total_energy\":123.5"), std::string::npos);
  EXPECT_NE(json.find("\"converged\":true"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"converged\""), std::string::npos);
  EXPECT_NE(json.find("\"forced_escalations\":0"), std::string::npos);
  EXPECT_NE(json.find("\"safe_mode\":false"), std::string::npos);
}

TEST(ReportJson, RecoveredRunSerializesWatchdogCounters) {
  RunReport report = sample_report();
  report.status = RunStatus::kRecovered;
  report.watchdog.triggers[static_cast<std::size_t>(
      WatchdogTrigger::kNonFinite)] = 2;
  report.forced_escalations = 1;
  report.checkpoint_restores = 1;
  report.safe_mode = true;
  const std::string json = report_to_json(report);
  EXPECT_NE(json.find("\"status\":\"recovered\""), std::string::npos);
  EXPECT_NE(json.find("\"triggers\":2"), std::string::npos);
  EXPECT_NE(json.find("\"non_finite\":2"), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint_restores\":1"), std::string::npos);
  EXPECT_NE(json.find("\"safe_mode\":true"), std::string::npos);
}

TEST(ReportJson, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(ReportJson, WritesToFile) {
  const std::string path = ::testing::TempDir() + "/approxit_report.json";
  write_report_json(sample_report(), path);
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"method\":\"gmm_em\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportJson, ThrowsOnBadPath) {
  EXPECT_THROW(write_report_json(sample_report(), "/nonexistent_zzz/r.json"),
               std::runtime_error);
}

TEST(TraceCsv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/approxit_trace.csv";
  write_trace_csv(sample_report(), path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "iteration,mode,objective,energy,step_norm,grad_norm,"
            "rolled_back,reconfigured,watchdog,scheme,eps_estimate,"
            "recovery_rung");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3u);
  std::remove(path.c_str());
}

TEST(TraceCsv, RoundTripsExactly) {
  const RunReport report = sample_report();
  const std::string path = ::testing::TempDir() + "/approxit_trace_rt.csv";
  write_trace_csv(report, path);
  const std::vector<IterationRecord> trace = read_trace_csv(path);
  std::remove(path.c_str());

  ASSERT_EQ(trace.size(), report.trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    SCOPED_TRACE(i);
    const IterationRecord& expected = report.trace[i];
    const IterationRecord& actual = trace[i];
    EXPECT_EQ(actual.index, expected.index);
    EXPECT_EQ(actual.mode, expected.mode);
    // Doubles are written with 17 significant digits: exact round-trip.
    EXPECT_EQ(actual.objective_after, expected.objective_after);
    EXPECT_EQ(actual.energy, expected.energy);
    EXPECT_EQ(actual.step_norm, expected.step_norm);
    EXPECT_EQ(actual.grad_norm, expected.grad_norm);
    EXPECT_EQ(actual.rolled_back, expected.rolled_back);
    EXPECT_EQ(actual.reconfigured, expected.reconfigured);
    EXPECT_EQ(actual.trigger, expected.trigger);
    EXPECT_EQ(actual.scheme, expected.scheme);
    EXPECT_EQ(actual.eps_estimate, expected.eps_estimate);
    EXPECT_EQ(actual.recovery_rung, expected.recovery_rung);
  }
}

TEST(TraceCsv, RoundTripsNonTrivialDoubles) {
  RunReport report;
  IterationRecord rec;
  rec.index = 1;
  rec.mode = arith::ApproxMode::kLevel3;
  rec.objective_after = 1.0 / 3.0;
  rec.energy = 1e-17;
  rec.step_norm = 0.1 + 0.2;  // 0.30000000000000004
  rec.eps_estimate = 6.02214076e23;
  report.trace.push_back(rec);
  const std::string path = ::testing::TempDir() + "/approxit_trace_fp.csv";
  write_trace_csv(report, path);
  const std::vector<IterationRecord> trace = read_trace_csv(path);
  std::remove(path.c_str());
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].objective_after, 1.0 / 3.0);
  EXPECT_EQ(trace[0].energy, 1e-17);
  EXPECT_EQ(trace[0].step_norm, 0.1 + 0.2);
  EXPECT_EQ(trace[0].eps_estimate, 6.02214076e23);
}

TEST(TraceCsv, ReadsOldFormatWithoutNewColumns) {
  // A file written before the scheme/eps_estimate/recovery_rung columns
  // existed must still load, with the new fields at their defaults.
  const std::string path = ::testing::TempDir() + "/approxit_trace_old.csv";
  {
    std::ofstream out(path);
    out << "iteration,mode,objective,energy,step_norm,grad_norm,"
           "rolled_back,reconfigured,watchdog\n";
    out << "1,level2,9.5,41,0.5,0.25,0,1,none\n";
    out << "2,acc,8,42,0.25,0.125,1,0,divergence\n";
  }
  const std::vector<IterationRecord> trace = read_trace_csv(path);
  std::remove(path.c_str());
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].index, 1u);
  EXPECT_EQ(trace[0].mode, arith::ApproxMode::kLevel2);
  EXPECT_EQ(trace[0].objective_after, 9.5);
  EXPECT_FALSE(trace[0].rolled_back);
  EXPECT_TRUE(trace[0].reconfigured);
  EXPECT_EQ(trace[0].scheme, "none");       // default
  EXPECT_EQ(trace[0].eps_estimate, 0.0);    // default
  EXPECT_EQ(trace[0].recovery_rung, 0);     // default
  EXPECT_EQ(trace[1].mode, arith::ApproxMode::kAccurate);
  EXPECT_TRUE(trace[1].rolled_back);
  EXPECT_EQ(trace[1].trigger, WatchdogTrigger::kDivergence);
}

TEST(TraceCsv, ReadThrowsOnMissingFileOrUnknownMode) {
  EXPECT_THROW(read_trace_csv("/nonexistent_zzz/trace.csv"),
               std::runtime_error);
  const std::string path = ::testing::TempDir() + "/approxit_trace_bad.csv";
  {
    std::ofstream out(path);
    out << "iteration,mode\n1,warp9\n";
  }
  EXPECT_THROW(read_trace_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

// --- Pareto -------------------------------------------------------------------

TEST(Pareto, DominationRules) {
  const ParetoPoint cheap_bad{"a", 0.2, 10.0, true, 10};
  const ParetoPoint costly_good{"b", 0.9, 0.0, true, 10};
  const ParetoPoint dominated{"c", 0.95, 5.0, true, 10};
  const ParetoPoint failed{"d", 0.1, 0.0, false, 10};
  EXPECT_FALSE(dominates(cheap_bad, costly_good));
  EXPECT_FALSE(dominates(costly_good, cheap_bad));
  EXPECT_TRUE(dominates(costly_good, dominated));
  EXPECT_TRUE(dominates(cheap_bad, failed));    // converged beats failed
  EXPECT_FALSE(dominates(failed, cheap_bad));
  EXPECT_FALSE(dominates(cheap_bad, cheap_bad));  // never self-dominates
}

TEST(Pareto, FrontierSortedAndNonDominated) {
  std::vector<ParetoPoint> points = {
      {"level1", 0.1, 300.0, true, 10},
      {"level4", 0.7, 1.0, true, 90},
      {"truth", 1.0, 0.0, true, 100},
      {"wasteful", 1.2, 0.5, true, 100},  // dominated by truth
      {"incremental", 0.6, 0.0, true, 95},
  };
  const auto frontier = pareto_frontier(points);
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0].label, "level1");
  EXPECT_EQ(frontier[1].label, "incremental");
  // "truth" and "level4" are dominated by "incremental" (cheaper, same or
  // better quality); "wasteful" by "truth".
}

TEST(Pareto, CsvMarksFrontier) {
  std::vector<ParetoPoint> points = {
      {"good", 0.5, 0.0, true, 10},
      {"bad", 0.9, 5.0, true, 10},
  };
  const std::string csv = pareto_csv(points);
  EXPECT_NE(csv.find("good,0.5,0,10,1,1"), std::string::npos);
  EXPECT_NE(csv.find("bad,0.9,5,10,1,0"), std::string::npos);
}

TEST(Pareto, EmptyInput) {
  EXPECT_TRUE(pareto_frontier({}).empty());
  EXPECT_EQ(pareto_csv({}),
            "label,energy,quality_error,iterations,converged,on_frontier\n");
}

}  // namespace
}  // namespace approxit::core
