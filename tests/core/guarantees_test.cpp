// Property tests for the convergence-guarantee criteria (Section 3.2):
// perturbed gradient descent converges when the update-error criterion
// holds, and the direction criterion separates descent from ascent steps.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "arith/context.h"
#include "core/guarantees.h"
#include "la/vector_ops.h"
#include "opt/gradient_descent.h"
#include "opt/problem.h"
#include "util/rng.h"

namespace approxit::core {
namespace {

TEST(DirectionCriterion, DetectsDescentAlignment) {
  opt::IterationStats stats;
  stats.grad_dot_step = -0.5;
  EXPECT_TRUE(direction_criterion_ok(stats));
  stats.grad_dot_step = 0.5;
  EXPECT_FALSE(direction_criterion_ok(stats));
  stats.grad_dot_step = 0.0;  // orthogonal step: no guaranteed progress
  EXPECT_FALSE(direction_criterion_ok(stats));
}

TEST(UpdateErrorCriterion, ComparesErrorToStep) {
  EXPECT_TRUE(update_error_criterion_ok(0.1, 0.5));
  EXPECT_TRUE(update_error_criterion_ok(0.5, 0.5));
  EXPECT_FALSE(update_error_criterion_ok(0.6, 0.5));

  opt::IterationStats stats;
  stats.state_norm = 10.0;
  stats.step_norm = 1.0;
  EXPECT_TRUE(update_error_criterion_ok(stats, 0.05));   // est 0.5 <= 1
  EXPECT_FALSE(update_error_criterion_ok(stats, 0.2));   // est 2.0 > 1
}

TEST(DirectionCriterion, RejectsNonFiniteDotProduct) {
  // Corrupted monitor statistics must never certify a descent direction.
  opt::IterationStats stats;
  for (double poisoned : {std::nan(""), HUGE_VAL, -HUGE_VAL}) {
    stats.grad_dot_step = poisoned;
    EXPECT_FALSE(direction_criterion_ok(stats)) << poisoned;
  }
}

TEST(UpdateErrorCriterion, RejectsNonFiniteInputs) {
  const double nan = std::nan("");
  const double inf = HUGE_VAL;
  EXPECT_FALSE(update_error_criterion_ok(nan, 0.5));
  EXPECT_FALSE(update_error_criterion_ok(0.1, nan));
  EXPECT_FALSE(update_error_criterion_ok(nan, nan));
  EXPECT_FALSE(update_error_criterion_ok(inf, 1.0));
  EXPECT_FALSE(update_error_criterion_ok(0.1, inf));
  EXPECT_FALSE(update_error_criterion_ok(-inf, 1.0));

  opt::IterationStats stats;
  stats.state_norm = nan;
  stats.step_norm = 1.0;
  EXPECT_FALSE(update_error_criterion_ok(stats, 0.05));
  stats.state_norm = 10.0;
  stats.step_norm = inf;
  EXPECT_FALSE(update_error_criterion_ok(stats, 0.05));
}

TEST(UpdateErrorCriterion, RejectsZeroStep) {
  // A zero step has no error budget: even zero estimated error is not a
  // meaningful pass (a fully stalled iteration proves nothing).
  EXPECT_FALSE(update_error_criterion_ok(0.0, 0.0));
  EXPECT_FALSE(update_error_criterion_ok(0.1, 0.0));
  EXPECT_FALSE(update_error_criterion_ok(0.1, -1.0));

  opt::IterationStats stats;
  stats.state_norm = 0.0;  // estimated error 0 with a zero step
  stats.step_norm = 0.0;
  EXPECT_FALSE(update_error_criterion_ok(stats, 0.05));
}

TEST(DirectionCriterion, HoldsAlongExactGradientDescent) {
  // Proposition 1's premise: plain GD steps are always descent-aligned.
  la::Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  opt::QuadraticProblem problem(a, {1.0, 2.0});
  opt::GradientDescentSolver solver(problem, {5.0, -4.0},
                                    {.step_size = 0.2, .max_iter = 100});
  arith::ExactContext ctx;
  for (int k = 0; k < 30; ++k) {
    const opt::IterationStats stats = solver.iterate(ctx);
    ASSERT_TRUE(direction_criterion_ok(stats)) << "iteration " << k;
  }
}

/// Gradient descent with a bounded injected update error (the epsilon^k of
/// Equation 4). Converges to a neighborhood when the error respects the
/// update-error criterion; diverges/stalls when it dominates the steps.
double run_perturbed_descent(double error_scale, bool shrink_with_step) {
  la::Matrix a{{2.0, 0.0}, {0.0, 1.0}};
  opt::QuadraticProblem problem(a, {0.0, 0.0});  // minimizer at origin, f*=0
  std::vector<double> x = {4.0, -3.0};
  util::Rng rng(99);
  arith::ExactContext ctx;
  const double alpha = 0.2;
  double step_norm = 1.0;
  for (int k = 0; k < 400; ++k) {
    std::vector<double> g(2);
    problem.gradient(x, g, ctx);
    std::vector<double> x_new = x;
    la::axpy(-alpha, g, x_new);
    // Inject epsilon^k with controllable norm.
    const double target_norm =
        shrink_with_step ? error_scale * step_norm : error_scale;
    const double phase = rng.uniform(0.0, 2.0 * 3.14159265358979);
    x_new[0] += target_norm * std::cos(phase);
    x_new[1] += target_norm * std::sin(phase);
    step_norm = la::distance2(x_new, x);
    x = x_new;
  }
  return problem.value(x);
}

TEST(UpdateErrorCriterion, CompliantErrorsStillConverge) {
  // ||eps^k|| = 0.5 ||x^k - x^{k+1}|| satisfies the criterion: the method
  // reaches a small neighborhood of the optimum.
  const double f_final = run_perturbed_descent(0.5, /*shrink_with_step=*/true);
  EXPECT_LT(f_final, 1e-6);
}

TEST(UpdateErrorCriterion, ViolatingErrorsPreventConvergence) {
  // Constant-norm errors violate the criterion near the optimum: the method
  // stalls at a noise floor far above the compliant run.
  const double compliant = run_perturbed_descent(0.5, true);
  const double violating = run_perturbed_descent(0.5, false);
  EXPECT_GT(violating, compliant * 1e3);
  EXPECT_GT(violating, 1e-3);
}

}  // namespace
}  // namespace approxit::core
