// Determinism of the parallel execution engine: a sweep or multi-workload
// characterization must produce identical results for any thread count —
// arms run on fresh per-arm ALU clones and results are read back in fixed
// arm order, so scheduling cannot leak into the output.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arith/alu.h"
#include "core/characterization.h"
#include "core/sweep.h"
#include "obs/metrics.h"
#include "la/matrix.h"
#include "opt/gradient_descent.h"
#include "opt/problem.h"

namespace approxit::core {
namespace {

const opt::QuadraticProblem& quadratic() {
  static const opt::QuadraticProblem problem(
      la::Matrix{{4.0, 1.0}, {1.0, 3.0}}, {1.0, 2.0});
  return problem;
}

MethodFactory quadratic_factory() {
  return [] {
    opt::GdConfig config;
    config.step_size = 0.2;
    config.tolerance = 1e-12;
    config.max_iter = 400;
    return std::make_unique<opt::GradientDescentSolver>(
        quadratic(), std::vector<double>{0.0, 0.0}, config);
  };
}

double state_l2_qem(opt::IterativeMethod& truth,
                    opt::IterativeMethod& candidate) {
  const std::vector<double> a = truth.state();
  const std::vector<double> b = candidate.state();
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return sum;
}

SweepResult sweep_with_threads(std::size_t threads) {
  arith::QcsAlu alu;
  SweepOptions options;
  options.include_oracle = true;
  options.threads = threads;
  return run_configuration_sweep(quadratic_factory(), alu, state_l2_qem,
                                 options);
}

TEST(ParallelSweep, IdenticalAcrossThreadCounts) {
  const SweepResult serial = sweep_with_threads(1);
  ASSERT_FALSE(serial.points.empty());

  for (std::size_t threads : {2u, 8u}) {
    const SweepResult parallel = sweep_with_threads(threads);
    SCOPED_TRACE(threads);

    EXPECT_EQ(parallel.truth.iterations, serial.truth.iterations);
    EXPECT_EQ(parallel.truth.status, serial.truth.status);
    EXPECT_EQ(parallel.truth.total_energy, serial.truth.total_energy);

    ASSERT_EQ(parallel.points.size(), serial.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      const ParetoPoint& a = serial.points[i];
      const ParetoPoint& b = parallel.points[i];
      EXPECT_EQ(b.label, a.label) << i;
      EXPECT_EQ(b.energy, a.energy) << a.label;
      EXPECT_EQ(b.quality_error, a.quality_error) << a.label;
      EXPECT_EQ(b.iterations, a.iterations) << a.label;
      EXPECT_EQ(b.converged, a.converged) << a.label;
    }
  }
}

TEST(ParallelSweep, ArmLedgersMergeIntoCallerAlu) {
  arith::QcsAlu alu;
  SweepOptions options;
  options.threads = 4;
  const SweepResult result = run_configuration_sweep(
      quadratic_factory(), alu, state_l2_qem, options);
  ASSERT_FALSE(result.points.empty());
  // Every arm ran on a clone; the caller's ledger holds their merged ops.
  EXPECT_GT(alu.ledger().total_ops(), 0u);
}

TEST(ParallelSweep, MergedMetricsIdenticalAcrossThreadCounts) {
  // Per-arm registries are merged into the caller's registry in fixed arm
  // order, so the merged metrics — including floating-point counter sums —
  // must be bit-identical for any thread count.
  const auto metrics_with_threads = [](std::size_t threads) {
    arith::QcsAlu alu;
    obs::MetricsRegistry registry;
    SweepOptions options;
    options.include_oracle = true;
    options.threads = threads;
    options.hooks.metrics = &registry;
    (void)run_configuration_sweep(quadratic_factory(), alu, state_l2_qem,
                                  options);
    return std::pair{registry.counter_values(), registry.gauge_values()};
  };

  const auto serial = metrics_with_threads(1);
  EXPECT_FALSE(serial.first.empty());
  EXPECT_GT(serial.first.count("session.iterations"), 0u);
  for (std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    const auto parallel = metrics_with_threads(threads);
    EXPECT_EQ(parallel.first, serial.first);
    EXPECT_EQ(parallel.second, serial.second);
  }
}

TEST(ParallelCharacterization, IdenticalAcrossThreadCounts) {
  const MethodFactory factory = quadratic_factory();
  const auto characterize_with = [&](std::size_t threads) {
    auto method_a = factory();
    auto method_b = factory();
    arith::QcsAlu alu;
    CharacterizationOptions options;
    options.threads = threads;
    return characterize_many({method_a.get(), method_b.get()}, alu, options);
  };

  const ModeCharacterization serial = characterize_with(1);
  for (std::size_t threads : {2u, 8u}) {
    const ModeCharacterization parallel = characterize_with(threads);
    SCOPED_TRACE(threads);
    EXPECT_EQ(parallel.quality_error, serial.quality_error);
    EXPECT_EQ(parallel.worst_quality_error, serial.worst_quality_error);
    EXPECT_EQ(parallel.state_error, serial.state_error);
    EXPECT_EQ(parallel.abs_state_error, serial.abs_state_error);
    EXPECT_EQ(parallel.angle_samples, serial.angle_samples);
    EXPECT_EQ(parallel.initial_improvement, serial.initial_improvement);
    EXPECT_EQ(parallel.energy_per_op, serial.energy_per_op);
  }
}

}  // namespace
}  // namespace approxit::core
