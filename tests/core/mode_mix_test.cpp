#include "core/mode_mix.h"

#include <limits>

#include <gtest/gtest.h>

namespace approxit::core {
namespace {

// Representative per-mode values: energies increase with accuracy, errors
// decrease; accurate mode is error-free.
constexpr std::array<double, arith::kNumModes> kEnergies = {1.0, 2.0, 3.0,
                                                            4.0, 10.0};
constexpr std::array<double, arith::kNumModes> kErrors = {0.4, 0.1, 0.02,
                                                          0.004, 0.0};

double weight_sum(const ModeMix& mix) {
  double s = 0.0;
  for (double w : mix.weights) s += w;
  return s;
}

TEST(ModeMix, WeightsFormDistribution) {
  const ModeMix mix = solve_mode_mix(kEnergies, kErrors, 0.05);
  EXPECT_NEAR(weight_sum(mix), 1.0, 1e-12);
  for (double w : mix.weights) {
    EXPECT_GT(w, 0.0);  // strict positivity (omega_i > 0)
  }
}

TEST(ModeMix, GenerousBudgetPicksCheapestMode) {
  const ModeMix mix = solve_mode_mix(kEnergies, kErrors, 10.0);
  EXPECT_TRUE(mix.feasible);
  // All free mass should land on level1 (cheapest).
  EXPECT_GT(mix.weights[0], 0.9);
}

TEST(ModeMix, TightBudgetLeansAccurate) {
  const ModeMix mix = solve_mode_mix(kEnergies, kErrors, 1e-6);
  EXPECT_GT(mix.weights[4], 0.9);
}

TEST(ModeMix, ErrorConstraintRespected) {
  for (double budget : {0.001, 0.01, 0.05, 0.2, 1.0}) {
    const ModeMix mix = solve_mode_mix(kEnergies, kErrors, budget);
    if (mix.feasible) {
      EXPECT_LE(mix.expected_error, budget + 1e-9) << "budget=" << budget;
    }
  }
}

TEST(ModeMix, EnergyMonotoneInBudget) {
  // A looser budget can never force a more expensive optimum.
  double previous = std::numeric_limits<double>::infinity();
  for (double budget : {0.0005, 0.005, 0.05, 0.5}) {
    const ModeMix mix = solve_mode_mix(kEnergies, kErrors, budget);
    EXPECT_LE(mix.energy, previous + 1e-9) << "budget=" << budget;
    previous = mix.energy;
  }
}

TEST(ModeMix, EnergyMatchesWeights) {
  const ModeMix mix = solve_mode_mix(kEnergies, kErrors, 0.03);
  double energy = 0.0;
  double error = 0.0;
  for (std::size_t i = 0; i < arith::kNumModes; ++i) {
    energy += mix.weights[i] * kEnergies[i];
    error += mix.weights[i] * kErrors[i];
  }
  EXPECT_NEAR(mix.energy, energy, 1e-9);
  EXPECT_NEAR(mix.expected_error, error, 1e-9);
}

TEST(ModeMix, InfeasibleFallsBackToAccurate) {
  // With a large floor, the floors alone can exceed a zero budget.
  const ModeMix mix = solve_mode_mix(kEnergies, kErrors, 0.0, 0.15);
  EXPECT_FALSE(mix.feasible);
  EXPECT_GT(mix.weights[4], 0.2);
  EXPECT_NEAR(weight_sum(mix), 1.0, 1e-12);
}

TEST(ModeMix, NegativeBudgetTreatedAsZero) {
  const ModeMix a = solve_mode_mix(kEnergies, kErrors, -5.0, 0.0);
  const ModeMix b = solve_mode_mix(kEnergies, kErrors, 0.0, 0.0);
  EXPECT_EQ(a.weights, b.weights);
}

TEST(ModeMix, ZeroFloorAllowsPureSolutions) {
  const ModeMix mix = solve_mode_mix(kEnergies, kErrors, 10.0, 0.0);
  EXPECT_NEAR(mix.weights[0], 1.0, 1e-12);
  EXPECT_NEAR(mix.energy, kEnergies[0], 1e-9);
}

TEST(ModeMix, TwoModeBlendOnActiveConstraint) {
  // Budget strictly between two single-mode errors with zero floor: the
  // optimum blends the cheapest infeasible mode with a feasible one and
  // sits exactly on the constraint.
  const ModeMix mix = solve_mode_mix(kEnergies, kErrors, 0.2, 0.0);
  EXPECT_TRUE(mix.feasible);
  EXPECT_NEAR(mix.expected_error, 0.2, 1e-9);
  int nonzero = 0;
  for (double w : mix.weights) {
    if (w > 1e-12) ++nonzero;
  }
  EXPECT_LE(nonzero, 2);
}

TEST(ModeMix, ValidatesArguments) {
  EXPECT_THROW(solve_mode_mix(kEnergies, kErrors, 0.1, 0.5),
               std::invalid_argument);
  EXPECT_THROW(solve_mode_mix(kEnergies, kErrors, 0.1, -0.1),
               std::invalid_argument);
  auto bad_errors = kErrors;
  bad_errors[2] = -1.0;
  EXPECT_THROW(solve_mode_mix(kEnergies, bad_errors, 0.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace approxit::core
