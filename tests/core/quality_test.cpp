#include "core/quality.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

namespace approxit::core {
namespace {

TEST(QualityError, RelativeDifference) {
  EXPECT_DOUBLE_EQ(quality_error(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(quality_error(10.0, 11.0), 0.1);
  EXPECT_DOUBLE_EQ(quality_error(10.0, 9.0), 0.1);
  EXPECT_DOUBLE_EQ(quality_error(-4.0, -5.0), 0.25);
}

TEST(QualityError, NearZeroReferenceFallsBackToAbsolute) {
  EXPECT_DOUBLE_EQ(quality_error(0.0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(quality_error(1e-301, 2e-301), 1e-301);
}

TEST(SteepnessAngle, MonotoneAndBounded) {
  EXPECT_DOUBLE_EQ(steepness_angle(0.0), 0.0);
  EXPECT_NEAR(steepness_angle(1.0), std::numbers::pi / 4.0, 1e-12);
  double prev = -1.0;
  for (double g : {0.0, 0.1, 1.0, 10.0, 1e6}) {
    const double a = steepness_angle(g);
    EXPECT_GT(a, prev);
    EXPECT_LT(a, std::numbers::pi / 2.0);
    prev = a;
  }
}

TEST(SteepnessAngle, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(steepness_angle(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(steepness_angle(std::nan("")), 0.0);
}

TEST(ModeCharacterization, AccessorsAndToString) {
  ModeCharacterization c;
  c.quality_error[0] = 0.5;
  c.state_error[1] = 0.25;
  c.energy_per_op[4] = 10.0;
  c.iterations_characterized = 8;
  EXPECT_DOUBLE_EQ(c.epsilon(arith::ApproxMode::kLevel1), 0.5);
  EXPECT_DOUBLE_EQ(c.state_epsilon(arith::ApproxMode::kLevel2), 0.25);
  EXPECT_DOUBLE_EQ(c.energy(arith::ApproxMode::kAccurate), 10.0);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("level1"), std::string::npos);
  EXPECT_NE(s.find("acc"), std::string::npos);
  EXPECT_NE(s.find("8 iterations"), std::string::npos);
}

}  // namespace
}  // namespace approxit::core
