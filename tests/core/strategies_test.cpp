// Unit tests for the reconfiguration strategies against synthetic
// IterationStats streams (no application in the loop).
#include <gtest/gtest.h>

#include "core/adaptive_strategy.h"
#include "core/incremental_strategy.h"
#include "core/pid_strategy.h"
#include "core/static_strategy.h"

namespace approxit::core {
namespace {

using arith::ApproxMode;

ModeCharacterization make_characterization() {
  ModeCharacterization c;
  c.quality_error = {0.3, 0.08, 0.02, 0.005, 0.0};
  c.worst_quality_error = {0.6, 0.16, 0.04, 0.01, 0.0};
  c.state_error = {0.2, 0.05, 0.01, 0.002, 0.0};
  c.worst_state_error = {0.4, 0.1, 0.02, 0.004, 0.0};
  c.energy_per_op = {1.0, 2.0, 3.0, 4.0, 10.0};
  c.angle_samples = {0.05, 0.1, 0.3, 0.5, 0.8, 1.0, 1.2, 1.3};
  c.initial_improvement = 0.5;
  c.iterations_characterized = 8;
  return c;
}

opt::IterationStats healthy_stats() {
  opt::IterationStats s;
  s.iteration = 1;
  s.objective_before = 10.0;
  s.objective_after = 8.0;   // good progress
  s.step_norm = 5.0;         // large step
  s.state_norm = 10.0;
  s.grad_dot_step = -1.0;    // descent-aligned
  s.grad_norm = 2.0;
  return s;
}

// --- StaticStrategy ---------------------------------------------------------

TEST(StaticStrategy, NeverMoves) {
  StaticStrategy strategy(ApproxMode::kLevel2);
  strategy.reset(make_characterization());
  EXPECT_EQ(strategy.initial_mode(), ApproxMode::kLevel2);
  const Decision d = strategy.observe(ApproxMode::kLevel2, healthy_stats());
  EXPECT_EQ(d.mode, ApproxMode::kLevel2);
  EXPECT_FALSE(d.rollback);
  EXPECT_FALSE(d.veto_convergence);
  EXPECT_EQ(strategy.name(), "static(level2)");
}

// --- IncrementalStrategy -----------------------------------------------------

TEST(IncrementalStrategy, StartsAtLowestLevel) {
  IncrementalStrategy strategy;
  strategy.reset(make_characterization());
  EXPECT_EQ(strategy.initial_mode(), ApproxMode::kLevel1);
}

TEST(IncrementalStrategy, HealthyIterationKeepsMode) {
  IncrementalStrategy strategy;
  strategy.reset(make_characterization());
  const Decision d = strategy.observe(ApproxMode::kLevel1, healthy_stats());
  EXPECT_EQ(d.mode, ApproxMode::kLevel1);
  EXPECT_FALSE(d.rollback);
  EXPECT_EQ(strategy.last_trigger(), "none");
}

TEST(IncrementalStrategy, GradientSchemeFiresOnObtuseStep) {
  IncrementalStrategy strategy;
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  s.grad_dot_step = 0.5;  // step points uphill
  const Decision d = strategy.observe(ApproxMode::kLevel2, s);
  EXPECT_EQ(d.mode, ApproxMode::kLevel3);
  EXPECT_FALSE(d.rollback);
  EXPECT_TRUE(d.veto_convergence);
  EXPECT_EQ(strategy.last_trigger(), "gradient");
}

TEST(IncrementalStrategy, QualitySchemeFiresWhenErrorDominatesStep) {
  IncrementalStrategy strategy;
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  // Estimated error = state_norm * state_eps(level1) = 10 * 0.2 = 2.0.
  s.step_norm = 1.0;  // below the estimated error
  const Decision d = strategy.observe(ApproxMode::kLevel1, s);
  EXPECT_EQ(d.mode, ApproxMode::kLevel2);
  EXPECT_TRUE(d.veto_convergence);
  EXPECT_EQ(strategy.last_trigger(), "quality");
}

TEST(IncrementalStrategy, FunctionSchemeRollsBackOnIncrease) {
  IncrementalStrategy strategy;
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  s.objective_after = 11.0;  // objective went UP
  const Decision d = strategy.observe(ApproxMode::kLevel3, s);
  EXPECT_EQ(d.mode, ApproxMode::kLevel4);
  EXPECT_TRUE(d.rollback);
  EXPECT_TRUE(d.veto_convergence);
  EXPECT_EQ(strategy.last_trigger(), "function");
}

TEST(IncrementalStrategy, OnlyEverStepsUpward) {
  IncrementalStrategy strategy;
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  s.grad_dot_step = 1.0;
  ApproxMode mode = ApproxMode::kLevel1;
  for (int k = 0; k < 10; ++k) {
    const Decision d = strategy.observe(mode, s);
    EXPECT_GE(arith::mode_index(d.mode), arith::mode_index(mode));
    mode = d.mode;
  }
  EXPECT_EQ(mode, ApproxMode::kAccurate);
}

TEST(IncrementalStrategy, AccurateModeNeverReconfigures) {
  IncrementalStrategy strategy;
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  s.grad_dot_step = 1.0;     // would fire gradient scheme
  s.objective_after = 20.0;  // would fire function scheme
  const Decision d = strategy.observe(ApproxMode::kAccurate, s);
  EXPECT_EQ(d.mode, ApproxMode::kAccurate);
  EXPECT_FALSE(d.rollback);
  EXPECT_FALSE(d.veto_convergence);
}

TEST(IncrementalStrategy, SchemesCanBeDisabled) {
  IncrementalOptions options;
  options.gradient_scheme = false;
  options.quality_scheme = false;
  options.function_scheme = false;
  IncrementalStrategy strategy(options);
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  s.grad_dot_step = 1.0;
  s.objective_after = 20.0;
  s.step_norm = 1e-9;
  const Decision d = strategy.observe(ApproxMode::kLevel1, s);
  EXPECT_EQ(d.mode, ApproxMode::kLevel1);
  EXPECT_EQ(strategy.last_trigger(), "none");
}

TEST(IncrementalStrategy, FunctionSlackToleratesJitter) {
  IncrementalStrategy strategy;
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  s.objective_before = 1.0;
  s.objective_after = 1.0 + 1e-15;  // below the relative slack
  const Decision d = strategy.observe(ApproxMode::kLevel4, s);
  EXPECT_NE(strategy.last_trigger(), "function");
  (void)d;
}

// --- AdaptiveAngleStrategy ----------------------------------------------------

TEST(AdaptiveStrategy, NameEncodesUpdatePeriod) {
  AdaptiveAngleStrategy f1;
  AdaptiveOptions options;
  options.update_period = 5;
  AdaptiveAngleStrategy f5(options);
  EXPECT_EQ(f1.name(), "adaptive(f=1)");
  EXPECT_EQ(f5.name(), "adaptive(f=5)");
}

TEST(AdaptiveStrategy, InitialModeIsCheapWhenBudgetGenerous) {
  AdaptiveAngleStrategy strategy;
  ModeCharacterization c = make_characterization();
  c.initial_improvement = 100.0;  // enormous budget
  strategy.reset(c);
  // With a generous budget and the steepest prior angle, the cheapest mode
  // should be selected first.
  EXPECT_EQ(strategy.initial_mode(), ApproxMode::kLevel1);
}

TEST(AdaptiveStrategy, TinyBudgetSelectsAccurate) {
  AdaptiveOptions options;
  options.min_budget_fraction = 1.0;  // clamp budget to |E0|
  AdaptiveAngleStrategy strategy(options);
  ModeCharacterization c = make_characterization();
  c.initial_improvement = 1e-12;
  strategy.reset(c);
  EXPECT_EQ(strategy.initial_mode(), ApproxMode::kAccurate);
}

TEST(AdaptiveStrategy, ThresholdsMonotoneInModeError) {
  AdaptiveAngleStrategy strategy;
  strategy.reset(make_characterization());
  const auto& t = strategy.thresholds();
  // Lossier modes require steeper angles: t[level1] >= t[level2] >= ...
  EXPECT_GE(t[0], t[1]);
  EXPECT_GE(t[1], t[2]);
  EXPECT_GE(t[2], t[3]);
}

TEST(AdaptiveStrategy, FlatAngleSelectsAccurate) {
  AdaptiveAngleStrategy strategy;
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  s.grad_norm = 1e-9;  // nearly flat manifold
  s.objective_before = 1.0;
  s.objective_after = 1.0 - 1e-9;  // nearly converged
  Decision d{};
  // Feed a few iterations so the budget window fills with tiny numbers.
  for (int k = 0; k < 4; ++k) {
    d = strategy.observe(ApproxMode::kAccurate, s);
  }
  EXPECT_EQ(d.mode, ApproxMode::kAccurate);
}

TEST(AdaptiveStrategy, SteepAngleWithBudgetSelectsCheap) {
  AdaptiveAngleStrategy strategy;
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  s.grad_norm = 100.0;  // very steep
  s.objective_before = 10.0;
  s.objective_after = 5.0;  // big improvement = big budget
  Decision d{};
  for (int k = 0; k < 4; ++k) {
    d = strategy.observe(ApproxMode::kLevel3, s);
  }
  EXPECT_TRUE(d.mode == ApproxMode::kLevel1 || d.mode == ApproxMode::kLevel2)
      << arith::mode_name(d.mode);
}

TEST(AdaptiveStrategy, ObjectiveIncreaseEscalatesAndVetoes) {
  AdaptiveAngleStrategy strategy;
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  s.objective_after = 12.0;  // increase
  const Decision d = strategy.observe(ApproxMode::kLevel2, s);
  EXPECT_TRUE(d.veto_convergence);
  EXPECT_GE(arith::mode_index(d.mode), arith::mode_index(ApproxMode::kLevel3));
}

TEST(AdaptiveStrategy, StallEscalatesAndVetoes) {
  AdaptiveAngleStrategy strategy;
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  // Estimated state error of level1 = 10 * 0.2 = 2; step much smaller.
  s.step_norm = 0.01;
  const Decision d = strategy.observe(ApproxMode::kLevel1, s);
  EXPECT_TRUE(d.veto_convergence);
  EXPECT_GE(arith::mode_index(d.mode), arith::mode_index(ApproxMode::kLevel2));
}

TEST(AdaptiveStrategy, UpdatePeriodControlsLutRefresh) {
  AdaptiveOptions options;
  options.update_period = 3;
  AdaptiveAngleStrategy strategy(options);
  strategy.reset(make_characterization());
  const std::size_t initial = strategy.lut_updates();
  for (int k = 0; k < 6; ++k) {
    strategy.observe(ApproxMode::kLevel4, healthy_stats());
  }
  EXPECT_EQ(strategy.lut_updates(), initial + 2);  // every 3 steps
}

TEST(AdaptiveStrategy, MixIsDistribution) {
  AdaptiveAngleStrategy strategy;
  strategy.reset(make_characterization());
  double s = 0.0;
  for (double w : strategy.current_mix().weights) s += w;
  EXPECT_NEAR(s, 1.0, 1e-9);
}

// --- PidStrategy --------------------------------------------------------------

TEST(PidStrategy, StartsAtConfiguredMode) {
  PidOptions options;
  options.initial_mode = ApproxMode::kLevel3;
  PidStrategy strategy(options);
  strategy.reset(make_characterization());
  EXPECT_EQ(strategy.initial_mode(), ApproxMode::kLevel3);
}

TEST(PidStrategy, RaisesAccuracyWhenQualityBelowTarget) {
  PidOptions options;
  options.setpoint = 0.5;  // demand 50% relative improvement per iteration
  PidStrategy strategy(options);
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  s.objective_before = 10.0;
  s.objective_after = 9.99;  // far below target
  const Decision d = strategy.observe(ApproxMode::kLevel2, s);
  EXPECT_GT(arith::mode_index(d.mode), arith::mode_index(ApproxMode::kLevel2));
}

TEST(PidStrategy, LowersAccuracyWhenQualityAboveTarget) {
  PidOptions options;
  options.setpoint = 0.001;
  PidStrategy strategy(options);
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  s.objective_before = 10.0;
  s.objective_after = 5.0;  // improvement far above target
  const Decision d = strategy.observe(ApproxMode::kLevel4, s);
  EXPECT_LT(arith::mode_index(d.mode), arith::mode_index(ApproxMode::kLevel4));
}

TEST(PidStrategy, NeverVetoesOrRollsBack) {
  PidStrategy strategy;
  strategy.reset(make_characterization());
  opt::IterationStats s = healthy_stats();
  s.objective_after = 100.0;  // catastrophic increase
  const Decision d = strategy.observe(ApproxMode::kLevel1, s);
  EXPECT_FALSE(d.rollback);
  EXPECT_FALSE(d.veto_convergence);
}

TEST(PidStrategy, CountsModeChanges) {
  PidOptions options;
  options.kp = 50.0;  // overdriven controller oscillates
  options.setpoint = 0.05;
  PidStrategy strategy(options);
  strategy.reset(make_characterization());
  ApproxMode mode = ApproxMode::kLevel2;
  opt::IterationStats good = healthy_stats();
  opt::IterationStats bad = healthy_stats();
  bad.objective_after = bad.objective_before;  // zero progress
  for (int k = 0; k < 10; ++k) {
    const Decision d = strategy.observe(mode, k % 2 == 0 ? good : bad);
    mode = d.mode;
  }
  EXPECT_GT(strategy.mode_changes(), 2u);
}

TEST(PidStrategy, CustomSensor) {
  int calls = 0;
  PidStrategy strategy(PidOptions{}, [&calls](const opt::IterationStats&) {
    ++calls;
    return 1.0;
  });
  strategy.reset(make_characterization());
  strategy.observe(ApproxMode::kLevel2, healthy_stats());
  EXPECT_EQ(calls, 1);
}

TEST(PidStrategy, DefaultSensorIsRelativeImprovement) {
  opt::IterationStats s = healthy_stats();
  s.objective_before = 10.0;
  s.objective_after = 9.0;
  EXPECT_NEAR(relative_improvement_sensor(s), 0.1, 1e-12);
}

}  // namespace
}  // namespace approxit::core
