#include "core/oracle.h"

#include <gtest/gtest.h>

#include "core/incremental_strategy.h"
#include "core/static_strategy.h"
#include "la/vector_ops.h"
#include "opt/gradient_descent.h"
#include "opt/problem.h"

namespace approxit::core {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  OracleTest()
      : problem_(la::Matrix{{4.0, 1.0}, {1.0, 3.0}},
                 std::vector<double>{1.0, 2.0}),
        solver_(problem_, {5.0, -4.0},
                {.step_size = 0.2, .max_iter = 500, .tolerance = 1e-12}) {}

  opt::QuadraticProblem problem_;
  opt::GradientDescentSolver solver_;
  arith::QcsAlu alu_;
};

TEST_F(OracleTest, ConvergesToTruthSolution) {
  const RunReport report = run_oracle(solver_, alu_);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.strategy_name, "oracle");
  EXPECT_NEAR(solver_.x()[0], 1.0 / 11.0, 1e-4);
  EXPECT_NEAR(solver_.x()[1], 7.0 / 11.0, 1e-4);
}

TEST_F(OracleTest, EnergyIsLowerBoundForStrategies) {
  const RunReport oracle = run_oracle(solver_, alu_);

  StaticStrategy truth_strategy(arith::ApproxMode::kAccurate);
  ApproxItSession truth_session(solver_, truth_strategy, alu_);
  const RunReport truth = truth_session.run();

  IncrementalStrategy incremental;
  ApproxItSession session(solver_, incremental, alu_);
  const RunReport incr = session.run();

  // Oracle (free lookahead) must be at least as cheap as both the Truth run
  // and the causal strategy, normalized per iteration.
  const double oracle_per_iter =
      oracle.total_energy / static_cast<double>(oracle.iterations);
  const double truth_per_iter =
      truth.total_energy / static_cast<double>(truth.iterations);
  const double incr_per_iter =
      incr.total_energy / static_cast<double>(incr.iterations);
  EXPECT_LT(oracle_per_iter, truth_per_iter);
  EXPECT_LE(oracle_per_iter, incr_per_iter * 1.0001);
}

TEST_F(OracleTest, UsesApproximateModesEarly) {
  const RunReport report = run_oracle(solver_, alu_);
  std::size_t approx_steps = 0;
  for (arith::ApproxMode mode :
       {arith::ApproxMode::kLevel1, arith::ApproxMode::kLevel2,
        arith::ApproxMode::kLevel3, arith::ApproxMode::kLevel4}) {
    approx_steps += report.steps(mode);
  }
  EXPECT_GT(approx_steps, 0u);
  // Near convergence steps shrink and only accurate passes the criterion.
  EXPECT_GT(report.steps(arith::ApproxMode::kAccurate), 0u);
}

TEST_F(OracleTest, StricterSlackForcesMoreAccuracy) {
  OracleOptions loose;
  loose.slack = 2.0;
  const RunReport loose_report = run_oracle(solver_, alu_, loose);

  OracleOptions strict;
  strict.slack = 0.01;
  const RunReport strict_report = run_oracle(solver_, alu_, strict);

  EXPECT_GE(strict_report.steps(arith::ApproxMode::kAccurate),
            loose_report.steps(arith::ApproxMode::kAccurate));
  EXPECT_GE(strict_report.total_energy /
                static_cast<double>(strict_report.iterations),
            loose_report.total_energy /
                static_cast<double>(loose_report.iterations));
}

TEST_F(OracleTest, RespectsIterationCap) {
  OracleOptions options;
  options.max_iterations = 3;
  const RunReport report = run_oracle(solver_, alu_, options);
  EXPECT_LE(report.iterations, 3u);
  EXPECT_EQ(report.trace.size(), report.iterations);
}

TEST_F(OracleTest, StepAccountingConsistent) {
  const RunReport report = run_oracle(solver_, alu_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < arith::kNumModes; ++i) {
    total += report.steps_per_mode[i];
  }
  EXPECT_EQ(total, report.iterations);
  double energy = 0.0;
  for (const IterationRecord& rec : report.trace) energy += rec.energy;
  EXPECT_NEAR(energy, report.total_energy, 1e-9);
}

}  // namespace
}  // namespace approxit::core
