// Observability must be a pure observer: enabling tracing or metrics may
// never change a single bit of the numeric results, and the emitted trace
// must reconcile exactly with the RunReport it describes.
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arith/alu.h"
#include "core/incremental_strategy.h"
#include "core/session.h"
#include "la/matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/gradient_descent.h"
#include "opt/problem.h"

namespace approxit::core {
namespace {

const opt::QuadraticProblem& quadratic() {
  static const opt::QuadraticProblem problem(
      la::Matrix{{4.0, 1.0}, {1.0, 3.0}}, {1.0, 2.0});
  return problem;
}

std::unique_ptr<opt::GradientDescentSolver> make_method() {
  opt::GdConfig config;
  config.step_size = 0.2;
  config.tolerance = 1e-12;
  config.max_iter = 400;
  return std::make_unique<opt::GradientDescentSolver>(
      quadratic(), std::vector<double>{0.0, 0.0}, config);
}

/// One full incremental-strategy run on a fresh ALU; `sink`/`metrics` may
/// be null. Returns the report; `final_state` receives the method state.
RunReport run_session(obs::TraceSink* sink, obs::MetricsRegistry* metrics,
                      std::vector<double>* final_state = nullptr) {
  if (sink != nullptr) obs::set_trace_sink(sink);
  arith::QcsAlu alu;
  auto method = make_method();
  IncrementalStrategy strategy;
  ApproxItSession session(*method, strategy, alu);
  SessionOptions options;
  options.hooks.metrics = metrics;
  const RunReport report = session.run(options);
  if (final_state != nullptr) *final_state = method->state();
  if (sink != nullptr) obs::set_trace_sink(nullptr);
  return report;
}

const obs::TraceArg* find_arg(const obs::TraceEvent& event,
                              const std::string& key) {
  for (const obs::TraceArg& a : event.args) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

double numeric_arg(const obs::TraceEvent& event, const std::string& key) {
  const obs::TraceArg* a = find_arg(event, key);
  if (a == nullptr) return std::numeric_limits<double>::quiet_NaN();
  return std::strtod(a->value.c_str(), nullptr);
}

TEST(SessionObservability, ResultsBitIdenticalTracingOnOrOff) {
  std::vector<double> state_off, state_traced, state_metered;
  const RunReport off = run_session(nullptr, nullptr, &state_off);

  obs::RingSink ring(1 << 16);
  const RunReport traced = run_session(&ring, nullptr, &state_traced);

  obs::MetricsRegistry registry;
  const RunReport metered = run_session(nullptr, &registry, &state_metered);

  for (const RunReport* report : {&traced, &metered}) {
    EXPECT_EQ(report->iterations, off.iterations);
    EXPECT_EQ(report->total_energy, off.total_energy);
    EXPECT_EQ(report->final_objective, off.final_objective);
    EXPECT_EQ(report->rollbacks, off.rollbacks);
    EXPECT_EQ(report->status, off.status);
    EXPECT_EQ(report->steps_per_mode, off.steps_per_mode);
  }
  EXPECT_EQ(state_traced, state_off);
  EXPECT_EQ(state_metered, state_off);
}

TEST(SessionObservability, TraceReconcilesExactlyWithReport) {
  obs::RingSink ring(1 << 16);
  const RunReport report = run_session(&ring, nullptr);
  ASSERT_GT(report.iterations, 0u);
  EXPECT_EQ(ring.dropped(), 0u);

  const std::vector<obs::TraceEvent> events = ring.snapshot();
  std::vector<obs::TraceEvent> iteration_events;
  const obs::TraceEvent* run_complete = nullptr;
  for (const obs::TraceEvent& event : events) {
    if (event.category != "session") continue;
    if (event.name == "iteration") iteration_events.push_back(event);
    if (event.name == "run_complete") run_complete = &event;
  }

  // One iteration event per executed iteration, in order.
  ASSERT_EQ(iteration_events.size(), report.iterations);
  std::size_t rollbacks = 0, reconfigurations = 0;
  for (std::size_t i = 0; i < iteration_events.size(); ++i) {
    const obs::TraceEvent& event = iteration_events[i];
    EXPECT_EQ(numeric_arg(event, "iter"), static_cast<double>(i + 1));
    const obs::TraceArg* rolled = find_arg(event, "rolled_back");
    ASSERT_NE(rolled, nullptr);
    if (rolled->value == "true") ++rollbacks;
    const obs::TraceArg* reconf = find_arg(event, "reconfigured");
    ASSERT_NE(reconf, nullptr);
    if (reconf->value == "true") ++reconfigurations;
    // Every iteration event mirrors one trace record exactly.
    const IterationRecord& rec = report.trace[i];
    EXPECT_EQ(find_arg(event, "mode")->value, arith::mode_name(rec.mode));
    EXPECT_EQ(find_arg(event, "scheme")->value, rec.scheme);
    EXPECT_EQ(numeric_arg(event, "objective"), rec.objective_after);
    EXPECT_EQ(numeric_arg(event, "energy"), rec.energy);
    EXPECT_EQ(numeric_arg(event, "eps_estimate"), rec.eps_estimate);
    EXPECT_EQ(numeric_arg(event, "rung"),
              static_cast<double>(rec.recovery_rung));
  }
  EXPECT_EQ(rollbacks, report.rollbacks);
  EXPECT_EQ(reconfigurations, report.reconfigurations);

  // The cumulative energy in the LAST iteration event equals the report's
  // ledger total bit-for-bit (%.17g round-trips doubles exactly).
  EXPECT_EQ(numeric_arg(iteration_events.back(), "energy_total"),
            report.total_energy);

  ASSERT_NE(run_complete, nullptr);
  EXPECT_EQ(numeric_arg(*run_complete, "iterations"),
            static_cast<double>(report.iterations));
  EXPECT_EQ(numeric_arg(*run_complete, "energy"), report.total_energy);
  EXPECT_EQ(numeric_arg(*run_complete, "objective"), report.final_objective);
}

TEST(SessionObservability, TraceContainsAluAndStrategyEvents) {
  obs::RingSink ring(1 << 16);
  (void)run_session(&ring, nullptr);
  bool saw_alu_span = false, saw_strategy = false, saw_run_span = false;
  for (const obs::TraceEvent& event : ring.snapshot()) {
    if (event.category == "alu" && event.kind == obs::EventKind::kSpan) {
      saw_alu_span = true;
    }
    if (event.category == "strategy") saw_strategy = true;
    if (event.category == "session" && event.name == "run" &&
        event.kind == obs::EventKind::kSpan) {
      saw_run_span = true;
    }
  }
  EXPECT_TRUE(saw_alu_span);  // sampled batch spans (1 in 64)
  EXPECT_TRUE(saw_strategy);  // decision events
  EXPECT_TRUE(saw_run_span);  // whole-run span
}

TEST(SessionObservability, MetricsCountersMatchReport) {
  obs::MetricsRegistry registry;
  const RunReport report = run_session(nullptr, &registry);

  const auto counters = registry.counter_values();
  EXPECT_DOUBLE_EQ(counters.at("session.runs"), 1.0);
  EXPECT_DOUBLE_EQ(counters.at("session.iterations"),
                   static_cast<double>(report.iterations));
  EXPECT_DOUBLE_EQ(counters.at("session.rollbacks"),
                   static_cast<double>(report.rollbacks));
  EXPECT_DOUBLE_EQ(counters.at("session.reconfigurations"),
                   static_cast<double>(report.reconfigurations));
  EXPECT_DOUBLE_EQ(counters.at("session.energy"), report.total_energy);
  EXPECT_DOUBLE_EQ(registry.gauge_values().at("session.final_objective"),
                   report.final_objective);

  // Per-mode ALU op counters sum to the ledger total the report drew from.
  double alu_ops = 0.0;
  for (const auto& [name, value] : counters) {
    if (name.rfind("alu.ops.", 0) == 0) alu_ops += value;
  }
  EXPECT_GT(alu_ops, 0.0);

  // A second run accumulates rather than resets.
  (void)run_session(nullptr, &registry);
  EXPECT_DOUBLE_EQ(registry.counter_values().at("session.runs"), 2.0);
}

}  // namespace
}  // namespace approxit::core
