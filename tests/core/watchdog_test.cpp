// Watchdog trigger detection (non-finite, divergence, stall, oscillation),
// CheckpointRing semantics and WatchdogConfig validation.
#include <cmath>

#include <gtest/gtest.h>

#include "core/watchdog.h"

namespace approxit::core {
namespace {

opt::IterationStats healthy_step(double before, double after) {
  opt::IterationStats stats;
  stats.objective_before = before;
  stats.objective_after = after;
  stats.step_norm = 0.1;
  stats.state_norm = 1.0;
  stats.grad_dot_step = -0.01;
  stats.grad_norm = 0.1;
  return stats;
}

TEST(RunStatusNames, AreStable) {
  EXPECT_EQ(run_status_name(RunStatus::kConverged), "converged");
  EXPECT_EQ(run_status_name(RunStatus::kBudgetExhausted), "budget_exhausted");
  EXPECT_EQ(run_status_name(RunStatus::kDiverged), "diverged");
  EXPECT_EQ(run_status_name(RunStatus::kNumericalFault), "numerical_fault");
  EXPECT_EQ(run_status_name(RunStatus::kRecovered), "recovered");
}

TEST(WatchdogTriggerNames, AreStable) {
  EXPECT_EQ(watchdog_trigger_name(WatchdogTrigger::kNone), "none");
  EXPECT_EQ(watchdog_trigger_name(WatchdogTrigger::kNonFinite), "non_finite");
  EXPECT_EQ(watchdog_trigger_name(WatchdogTrigger::kDivergence), "divergence");
  EXPECT_EQ(watchdog_trigger_name(WatchdogTrigger::kStall), "stall");
  EXPECT_EQ(watchdog_trigger_name(WatchdogTrigger::kOscillation),
            "oscillation");
}

TEST(WatchdogConfig, Validates) {
  EXPECT_NO_THROW(WatchdogConfig{}.validate());

  WatchdogConfig zero_capacity;
  zero_capacity.checkpoint_capacity = 0;
  EXPECT_THROW(zero_capacity.validate(), std::invalid_argument);

  WatchdogConfig zero_period;
  zero_period.checkpoint_period = 0;
  EXPECT_THROW(zero_period.validate(), std::invalid_argument);

  WatchdogConfig bad_factor;
  bad_factor.divergence_factor = 0.0;
  EXPECT_THROW(bad_factor.validate(), std::invalid_argument);

  WatchdogConfig inverted_budget;
  inverted_budget.safe_mode_after = 5;
  inverted_budget.max_recoveries = 4;
  EXPECT_THROW(inverted_budget.validate(), std::invalid_argument);
}

TEST(CheckpointRing, EvictsOldestAndPopsNewestFirst) {
  CheckpointRing ring(3);
  EXPECT_TRUE(ring.empty());
  for (std::size_t i = 1; i <= 5; ++i) {
    ring.push(Checkpoint{i, static_cast<double>(i), {static_cast<double>(i)}});
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.capacity(), 3u);
  ASSERT_TRUE(ring.newest().has_value());
  EXPECT_EQ(ring.newest()->iteration, 5u);

  // Pops walk back in time: 5, 4, 3 (1 and 2 were evicted).
  EXPECT_EQ(ring.pop()->iteration, 5u);
  EXPECT_EQ(ring.pop()->iteration, 4u);
  EXPECT_EQ(ring.pop()->iteration, 3u);
  EXPECT_FALSE(ring.pop().has_value());
  EXPECT_FALSE(ring.newest().has_value());
}

TEST(Watchdog, QuietOnHealthyDescent) {
  Watchdog watchdog;
  watchdog.reset(100.0);
  double f = 100.0;
  for (int k = 0; k < 50; ++k) {
    const double next = f * 0.9;
    EXPECT_EQ(watchdog.observe(healthy_step(f, next)), WatchdogTrigger::kNone);
    f = next;
  }
  EXPECT_EQ(watchdog.counters().total(), 0u);
}

TEST(Watchdog, FlagsNonFiniteStatistics) {
  Watchdog watchdog;
  watchdog.reset(1.0);
  opt::IterationStats nan_objective = healthy_step(1.0, std::nan(""));
  EXPECT_EQ(watchdog.observe(nan_objective), WatchdogTrigger::kNonFinite);

  opt::IterationStats inf_step = healthy_step(1.0, 0.9);
  inf_step.step_norm = HUGE_VAL;
  EXPECT_EQ(watchdog.observe(inf_step), WatchdogTrigger::kNonFinite);
  EXPECT_EQ(watchdog.counters().count(WatchdogTrigger::kNonFinite), 2u);
}

TEST(Watchdog, FlagsNonFiniteInitialObjective) {
  Watchdog watchdog;
  watchdog.reset(std::nan(""));
  EXPECT_EQ(watchdog.observe(healthy_step(1.0, 0.9)),
            WatchdogTrigger::kNonFinite);
}

TEST(Watchdog, FlagsDivergenceBeyondCeiling) {
  WatchdogConfig config;
  config.divergence_factor = 10.0;  // ceiling = 2 + 10 * max(|2|, 1) = 22
  Watchdog watchdog(config);
  watchdog.reset(2.0);
  EXPECT_EQ(watchdog.observe(healthy_step(2.0, 21.0)), WatchdogTrigger::kNone);
  EXPECT_EQ(watchdog.observe(healthy_step(21.0, 23.0)),
            WatchdogTrigger::kDivergence);
}

TEST(Watchdog, FlagsStallAfterWindow) {
  WatchdogConfig config;
  config.stall_window = 5;
  config.stall_tolerance = 1e-9;
  Watchdog watchdog(config);
  watchdog.reset(1.0);
  // No improvement beyond tolerance: the window must run out exactly once.
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(watchdog.observe(healthy_step(1.0, 1.0)), WatchdogTrigger::kNone)
        << k;
  }
  EXPECT_EQ(watchdog.observe(healthy_step(1.0, 1.0)), WatchdogTrigger::kStall);
  EXPECT_EQ(watchdog.counters().count(WatchdogTrigger::kStall), 1u);
}

TEST(Watchdog, ImprovementResetsStallWindow) {
  WatchdogConfig config;
  config.stall_window = 3;
  Watchdog watchdog(config);
  watchdog.reset(1.0);
  EXPECT_EQ(watchdog.observe(healthy_step(1.0, 1.0)), WatchdogTrigger::kNone);
  EXPECT_EQ(watchdog.observe(healthy_step(1.0, 1.0)), WatchdogTrigger::kNone);
  // A real improvement rearms the window.
  EXPECT_EQ(watchdog.observe(healthy_step(1.0, 0.5)), WatchdogTrigger::kNone);
  EXPECT_EQ(watchdog.observe(healthy_step(0.5, 0.5)), WatchdogTrigger::kNone);
  EXPECT_EQ(watchdog.observe(healthy_step(0.5, 0.5)), WatchdogTrigger::kNone);
  EXPECT_EQ(watchdog.observe(healthy_step(0.5, 0.5)), WatchdogTrigger::kStall);
}

TEST(Watchdog, FlagsOscillationWithoutNetGain) {
  WatchdogConfig config;
  config.oscillation_window = 4;
  config.stall_window = 0;
  Watchdog watchdog(config);
  watchdog.reset(1.0);
  // Alternate improve/regress around f=1 with zero net progress.
  double f = 1.0;
  WatchdogTrigger last = WatchdogTrigger::kNone;
  const double deltas[] = {-0.1, +0.1, -0.1, +0.1, -0.1, +0.1};
  for (double delta : deltas) {
    const double next = f + delta;
    last = watchdog.observe(healthy_step(f, next));
    if (last != WatchdogTrigger::kNone) break;
    f = next;
  }
  EXPECT_EQ(last, WatchdogTrigger::kOscillation);
}

TEST(Watchdog, SteadyDescentIsNotOscillation) {
  WatchdogConfig config;
  config.oscillation_window = 4;
  Watchdog watchdog(config);
  watchdog.reset(1.0);
  double f = 1.0;
  for (int k = 0; k < 20; ++k) {
    const double next = f * 0.95;
    EXPECT_EQ(watchdog.observe(healthy_step(f, next)), WatchdogTrigger::kNone)
        << k;
    f = next;
  }
}

TEST(Watchdog, NotifyRecoveryClearsHistories) {
  WatchdogConfig config;
  config.stall_window = 3;
  Watchdog watchdog(config);
  watchdog.reset(1.0);
  EXPECT_EQ(watchdog.observe(healthy_step(1.0, 1.0)), WatchdogTrigger::kNone);
  EXPECT_EQ(watchdog.observe(healthy_step(1.0, 1.0)), WatchdogTrigger::kNone);
  watchdog.notify_recovery(1.0);
  // The window restarts from scratch after a recovery.
  EXPECT_EQ(watchdog.observe(healthy_step(1.0, 1.0)), WatchdogTrigger::kNone);
  EXPECT_EQ(watchdog.observe(healthy_step(1.0, 1.0)), WatchdogTrigger::kNone);
  EXPECT_EQ(watchdog.observe(healthy_step(1.0, 1.0)), WatchdogTrigger::kStall);
}

TEST(Watchdog, DisabledNeverTriggers) {
  WatchdogConfig config;
  config.enabled = false;
  Watchdog watchdog(config);
  watchdog.reset(1.0);
  EXPECT_EQ(watchdog.observe(healthy_step(1.0, std::nan(""))),
            WatchdogTrigger::kNone);
  EXPECT_EQ(watchdog.observe(healthy_step(1.0, 1e9)), WatchdogTrigger::kNone);
  EXPECT_EQ(watchdog.counters().total(), 0u);
}

TEST(WatchdogCounters, TotalSumsAllTriggerKinds) {
  WatchdogCounters counters;
  counters.triggers[static_cast<std::size_t>(WatchdogTrigger::kNonFinite)] = 2;
  counters.triggers[static_cast<std::size_t>(WatchdogTrigger::kStall)] = 3;
  EXPECT_EQ(counters.total(), 5u);
  EXPECT_EQ(counters.count(WatchdogTrigger::kNonFinite), 2u);
  EXPECT_EQ(counters.count(WatchdogTrigger::kOscillation), 0u);
}

}  // namespace
}  // namespace approxit::core
