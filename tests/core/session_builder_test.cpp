// SessionBuilder must be a pure re-skin of the three-reference
// constructor: builder-built runs are bit-identical to constructor-built
// ones, wiring errors fail fast, and the characterization precedence
// (precomputed > cache > fresh) holds.
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arith/alu.h"
#include "core/incremental_strategy.h"
#include "core/report_io.h"
#include "core/session.h"
#include "core/session_builder.h"
#include "la/matrix.h"
#include "obs/metrics.h"
#include "opt/gradient_descent.h"
#include "opt/problem.h"

namespace approxit::core {
namespace {

const opt::QuadraticProblem& quadratic() {
  static const opt::QuadraticProblem problem(
      la::Matrix{{4.0, 1.0}, {1.0, 3.0}}, {1.0, 2.0});
  return problem;
}

std::unique_ptr<opt::GradientDescentSolver> make_method() {
  opt::GdConfig config;
  config.step_size = 0.2;
  config.tolerance = 1e-12;
  config.max_iter = 400;
  return std::make_unique<opt::GradientDescentSolver>(
      quadratic(), std::vector<double>{0.0, 0.0}, config);
}

/// Minimal in-memory CharacterizationCache for precedence tests.
class MapCache final : public CharacterizationCache {
 public:
  std::optional<ModeCharacterization> load(
      const CharacterizationKey& key) override {
    ++loads;
    const auto it = entries.find(key.description);
    if (it == entries.end()) return std::nullopt;
    ++hits;
    return it->second;
  }

  void store(const CharacterizationKey& key,
             const ModeCharacterization& profile) override {
    ++stores;
    entries[key.description] = profile;
  }

  std::map<std::string, ModeCharacterization> entries;
  int loads = 0;
  int hits = 0;
  int stores = 0;
};

TEST(SessionBuilder, BitIdenticalToConstructorPath) {
  CharacterizationOptions char_options;
  char_options.iterations = 8;

  // Constructor path.
  arith::QcsAlu ctor_alu;
  auto ctor_method = make_method();
  IncrementalStrategy ctor_strategy;
  ApproxItSession session(*ctor_method, ctor_strategy, ctor_alu);
  session.ensure_characterized(char_options);
  const RunReport via_ctor = session.run();

  // Builder path, identically wired.
  arith::QcsAlu built_alu;
  auto built_method = make_method();
  IncrementalStrategy built_strategy;
  const RunReport via_builder = SessionBuilder()
                                    .method(*built_method)
                                    .strategy(built_strategy)
                                    .alu(built_alu)
                                    .characterization_options(char_options)
                                    .run();

  EXPECT_EQ(report_to_json(via_builder), report_to_json(via_ctor));
  EXPECT_EQ(built_method->state(), ctor_method->state());
}

TEST(SessionBuilder, MissingReferencesThrow) {
  arith::QcsAlu alu;
  auto method = make_method();
  IncrementalStrategy strategy;

  EXPECT_THROW(SessionBuilder().run(), std::logic_error);
  EXPECT_THROW(SessionBuilder().method(*method).run(), std::logic_error);
  EXPECT_THROW(SessionBuilder().method(*method).strategy(strategy).run(),
               std::logic_error);
  EXPECT_NO_THROW(
      SessionBuilder().method(*method).strategy(strategy).alu(alu).build());
}

TEST(SessionBuilder, ProfileCacheRequiresWorkloadTag) {
  arith::QcsAlu alu;
  auto method = make_method();
  IncrementalStrategy strategy;
  MapCache cache;

  EXPECT_THROW(SessionBuilder()
                   .method(*method)
                   .strategy(strategy)
                   .alu(alu)
                   .profile_cache(&cache, "")
                   .build(),
               std::logic_error);
  EXPECT_NO_THROW(SessionBuilder()
                      .method(*method)
                      .strategy(strategy)
                      .alu(alu)
                      .profile_cache(&cache, "quadratic")
                      .build());
}

TEST(SessionBuilder, CacheMissCharacterizesThenStoresThenHits) {
  CharacterizationOptions char_options;
  char_options.iterations = 8;
  MapCache cache;

  SessionBuilder builder;
  arith::QcsAlu alu;
  auto method = make_method();
  IncrementalStrategy strategy;
  builder.method(*method)
      .strategy(strategy)
      .alu(alu)
      .characterization_options(char_options)
      .profile_cache(&cache, "quadratic");

  const RunReport cold = builder.run();
  EXPECT_EQ(cache.loads, 1);
  EXPECT_EQ(cache.hits, 0);
  EXPECT_EQ(cache.stores, 1);

  // Second run (fresh session off the same builder): served from cache.
  const RunReport warm = builder.run();
  EXPECT_EQ(cache.loads, 2);
  EXPECT_EQ(cache.hits, 1);
  EXPECT_EQ(cache.stores, 1);
  EXPECT_EQ(report_to_json(warm), report_to_json(cold));
}

TEST(SessionBuilder, PrecomputedCharacterizationBeatsCache) {
  CharacterizationOptions char_options;
  char_options.iterations = 8;

  arith::QcsAlu alu;
  auto method = make_method();
  const ModeCharacterization profile =
      characterize(*method, alu, char_options);

  MapCache cache;
  IncrementalStrategy strategy;
  const RunReport report = SessionBuilder()
                               .method(*method)
                               .strategy(strategy)
                               .alu(alu)
                               .characterization(profile)
                               .profile_cache(&cache, "quadratic")
                               .run();
  EXPECT_GT(report.iterations, 0u);
  EXPECT_EQ(cache.loads, 0);  // Never consulted.
  EXPECT_EQ(cache.stores, 0);
}

TEST(SessionBuilder, HooksAndOptionsFlowThrough) {
  CharacterizationOptions char_options;
  char_options.iterations = 8;

  arith::QcsAlu alu;
  auto method = make_method();
  IncrementalStrategy strategy;
  obs::MetricsRegistry registry;
  const RunReport report = SessionBuilder()
                               .method(*method)
                               .strategy(strategy)
                               .alu(alu)
                               .characterization_options(char_options)
                               .metrics(&registry)
                               .max_iterations(5)
                               .keep_trace(false)
                               .run();

  EXPECT_EQ(report.iterations, 5u);
  EXPECT_TRUE(report.trace.empty());
  const auto counters = registry.counter_values();
  EXPECT_EQ(counters.at("session.iterations"), 5.0);
}

}  // namespace
}  // namespace approxit::core
