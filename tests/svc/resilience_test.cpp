// Service-layer resilience: deadlines and cancellation through the
// runtime, token-bucket admission, degrade-before-shed watermarks, the
// retry ladder over injected chaos failures, recovery-ladder exhaustion
// surfacing structured aborts, and the determinism of seeded chaos runs
// across repeats and worker counts.
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "svc/chaos.h"
#include "svc/qos.h"
#include "svc/runtime.h"

namespace approxit::svc {
namespace {

/// A small fast job: few characterization probes, tight iteration cap.
JobSpec quick_job(const std::string& dataset = "3cluster",
                  const std::string& strategy = "incremental") {
  JobSpec spec;
  spec.app = "gmm";
  spec.dataset = dataset;
  spec.strategy = strategy;
  spec.max_iterations = 30;
  spec.characterization_iterations = 4;
  return spec;
}

ServiceConfig memory_only(std::size_t threads) {
  ServiceConfig config;
  config.threads = threads;
  config.cache.directory.clear();
  return config;
}

std::string fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Polls until the job leaves kQueued (running or terminal).
void wait_until_scheduled(ServiceRuntime& runtime, std::uint64_t id) {
  for (int i = 0; i < 5000; ++i) {
    const auto snapshot = runtime.status(id);
    ASSERT_TRUE(snapshot.has_value());
    if (snapshot->state != JobState::kQueued) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "job " << id << " never left the queue";
}

// ---------------------------------------------------------------------------
// QoS primitives (pure, fake clock — fully deterministic).

TEST(TokenBucket, ChargesRefillsAndCapsAtBurst) {
  TokenBucket bucket(/*rate=*/1000.0, /*burst=*/100.0, /*now_ms=*/0.0);
  EXPECT_DOUBLE_EQ(bucket.available(0.0), 100.0);  // Starts full.

  EXPECT_TRUE(bucket.try_take(60.0, 0.0));
  EXPECT_FALSE(bucket.try_take(60.0, 0.0));  // Only 40 left.
  EXPECT_DOUBLE_EQ(bucket.available(0.0), 40.0);

  // 20 ms at 1000 units/s refills 20 units.
  EXPECT_TRUE(bucket.try_take(60.0, 20.0));
  EXPECT_DOUBLE_EQ(bucket.available(20.0), 0.0);

  // Refill never exceeds the burst capacity.
  EXPECT_DOUBLE_EQ(bucket.available(1.0e9), 100.0);
}

TEST(RetryBackoff, DeterministicJitteredExponentialWithCap) {
  QosConfig qos;  // base 10 ms, cap 1000 ms.
  const double first = retry_backoff_ms(qos, 7, 0);
  EXPECT_DOUBLE_EQ(retry_backoff_ms(qos, 7, 0), first);  // Pure function.
  EXPECT_GE(first, 5.0);   // >= 0.5 * base.
  EXPECT_LT(first, 10.0);  // < 1.0 * base.

  for (std::size_t attempt = 0; attempt < 20; ++attempt) {
    const double backoff = retry_backoff_ms(qos, 7, attempt);
    EXPECT_GE(backoff, 5.0);
    EXPECT_LE(backoff, 1000.0);  // Cap holds for huge attempt counts.
  }
  // Jitter streams differ across jobs (with overwhelming probability).
  EXPECT_NE(retry_backoff_ms(qos, 7, 0), retry_backoff_ms(qos, 8, 0));
}

TEST(ServiceRuntimeQos, JobCostScalesWithBudgetAndDimension) {
  EXPECT_DOUBLE_EQ(ServiceRuntime::job_cost(quick_job()), 30.0 * 2.0);
  EXPECT_DOUBLE_EQ(ServiceRuntime::job_cost(quick_job("3d3cluster")),
                   30.0 * 3.0);
  JobSpec ar;
  ar.app = "ar";
  ar.dataset = "sp500";
  ar.max_iterations = 10;
  EXPECT_DOUBLE_EQ(ServiceRuntime::job_cost(ar), 10.0 * 4.0);
  JobSpec defaulted = quick_job();
  defaulted.max_iterations = 0;  // Stands in for the dataset MAX_ITER.
  EXPECT_DOUBLE_EQ(ServiceRuntime::job_cost(defaulted), 100.0 * 2.0);
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation.

TEST(ServiceRuntimeResilience, ExpiredDeadlineGoesTerminalWithoutAWorker) {
  ServiceConfig config = memory_only(1);
  config.start_paused = true;
  ServiceRuntime runtime(config);

  JobSpec spec = quick_job();
  spec.deadline_ms = 1.0e-9;  // Expires effectively immediately.
  std::string error;
  const auto id = runtime.submit(spec, &error);
  ASSERT_TRUE(id.has_value()) << error;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  runtime.resume();

  const auto snapshot = runtime.result(*id);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->state, JobState::kDeadlineExceeded);
  EXPECT_EQ(snapshot->attempts, 1u);
  EXPECT_TRUE(snapshot->report_json.empty());  // Never ran: no partial.

  const ServiceStats stats = runtime.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ServiceRuntimeResilience, SloIsTheDefaultDeadlineAndSpecOverridesIt) {
  ServiceConfig config = memory_only(1);
  config.qos.slo_ms = 1.0e-9;
  config.start_paused = true;
  ServiceRuntime runtime(config);

  const auto expired = runtime.submit(quick_job());
  JobSpec generous = quick_job();
  generous.deadline_ms = 1.0e9;  // Own deadline beats the tight SLO.
  const auto fine = runtime.submit(generous);
  ASSERT_TRUE(expired.has_value());
  ASSERT_TRUE(fine.has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  runtime.resume();

  EXPECT_EQ(runtime.result(*expired)->state, JobState::kDeadlineExceeded);
  EXPECT_EQ(runtime.result(*fine)->state, JobState::kDone);
}

TEST(ServiceRuntimeResilience, CancelQueuedJobIsImmediate) {
  ServiceConfig config = memory_only(1);
  config.start_paused = true;
  ServiceRuntime runtime(config);

  const auto keep = runtime.submit(quick_job());
  const auto drop = runtime.submit(quick_job());
  ASSERT_TRUE(keep.has_value());
  ASSERT_TRUE(drop.has_value());

  EXPECT_TRUE(runtime.cancel(*drop));
  const auto snapshot = runtime.status(*drop);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->state, JobState::kCancelled);  // No worker involved.
  EXPECT_FALSE(runtime.cancel(*drop));   // Already terminal.
  EXPECT_FALSE(runtime.cancel(999999));  // Unknown.

  runtime.resume();
  EXPECT_EQ(runtime.result(*keep)->state, JobState::kDone);
  EXPECT_EQ(runtime.stats().cancelled, 1u);
  EXPECT_EQ(runtime.stats().completed, 1u);
}

TEST(ServiceRuntimeResilience, CancelRunningJobReleasesTheWorker) {
  ServiceConfig config = memory_only(1);
  // A certain 50 ms stall before execution gives the test a wide window
  // in which the job is kRunning but has not finished.
  config.chaos.enabled = true;
  config.chaos.stall_probability = 1.0;
  config.chaos.stall_ms = 50.0;
  ServiceRuntime runtime(config);

  const auto id = runtime.submit(quick_job());
  ASSERT_TRUE(id.has_value());
  wait_until_scheduled(runtime, *id);
  EXPECT_TRUE(runtime.cancel(*id));

  const auto snapshot = runtime.result(*id);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->state, JobState::kCancelled);

  // The worker is free again: a follow-up job completes.
  const auto next = runtime.submit(quick_job());
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(runtime.result(*next)->state, JobState::kDone);
}

TEST(ServiceRuntimeResilience, ClockSkewDoesNotBreakDeadlinesOnItsOwnAxis) {
  // Deadlines are armed and evaluated on the same (skewed) clock, so a
  // huge constant skew — forwards or backwards — changes nothing.
  for (const double skew : {1.0e12, -1.0e12}) {
    ServiceConfig config = memory_only(1);
    config.qos.slo_ms = 1.0e9;
    config.chaos.enabled = true;
    config.chaos.clock_skew_ms = skew;
    ServiceRuntime runtime(config);
    const auto id = runtime.submit(quick_job());
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(runtime.result(*id)->state, JobState::kDone) << skew;
  }
}

// ---------------------------------------------------------------------------
// Admission: token bucket, degrade-before-shed watermarks.

TEST(ServiceRuntimeResilience, TokenBucketRateLimitsPerTenantByCost) {
  ServiceConfig config = memory_only(1);
  config.start_paused = true;
  config.qos.tenant_rate = 1.0e-6;  // Effectively no refill mid-test.
  config.qos.tenant_burst = 100.0;  // Clamped up to one default job (200).
  ServiceRuntime runtime(config);

  JobSpec big = quick_job();
  big.max_iterations = 100;  // Cost 200: drains the whole bucket.
  std::string error;
  ASSERT_TRUE(runtime.submit(big, &error).has_value()) << error;
  EXPECT_FALSE(runtime.submit(big, &error).has_value());
  EXPECT_EQ(error, "rate_limited");

  // Another tenant has its own bucket.
  JobSpec other = big;
  other.tenant = "other";
  EXPECT_TRUE(runtime.submit(other, &error).has_value()) << error;

  const ServiceStats stats = runtime.stats();
  EXPECT_EQ(stats.rejected_rate_limited, 1u);
  EXPECT_EQ(stats.submitted, 2u);
  runtime.resume();
  runtime.wait_idle();
}

TEST(ServiceRuntimeResilience, DegradesBetweenWatermarksAndShedsPastThem) {
  ServiceConfig config = memory_only(1);
  config.start_paused = true;  // Queue depth is exactly what we submitted.
  config.queue_capacity = 16;
  config.qos.degrade_watermark = 1;
  config.qos.shed_watermark = 2;
  config.qos.degraded_strategy = "level2";
  config.qos.degraded_max_iterations = 5;
  ServiceRuntime runtime(config);

  std::string error;
  const auto normal = runtime.submit(quick_job(), &error);    // Depth 0.
  const auto degraded = runtime.submit(quick_job(), &error);  // Depth 1.
  ASSERT_TRUE(normal.has_value());
  ASSERT_TRUE(degraded.has_value());

  // Depth 2 = shed watermark: a normal job is rejected...
  EXPECT_FALSE(runtime.submit(quick_job(), &error).has_value());
  EXPECT_EQ(error, "shed_overload");
  // ...but a priority job still gets the degraded trade.
  JobSpec urgent = quick_job();
  urgent.priority = 1;
  const auto prioritized = runtime.submit(urgent, &error);
  ASSERT_TRUE(prioritized.has_value()) << error;

  ServiceStats stats = runtime.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.degraded, 2u);
  EXPECT_EQ(stats.submitted, 3u);

  runtime.resume();
  const auto normal_snapshot = runtime.result(*normal);
  const auto degraded_snapshot = runtime.result(*degraded);
  const auto prioritized_snapshot = runtime.result(*prioritized);
  ASSERT_TRUE(normal_snapshot.has_value());
  ASSERT_TRUE(degraded_snapshot.has_value());
  ASSERT_TRUE(prioritized_snapshot.has_value());

  // The normal job ran its requested strategy and budget.
  EXPECT_FALSE(normal_snapshot->degraded);
  EXPECT_EQ(normal_snapshot->report.strategy_name, "incremental");

  // Degraded jobs ran the coarser static level under the capped budget;
  // the SPEC is untouched (the client's request is what it was).
  for (const auto* snapshot : {&*degraded_snapshot, &*prioritized_snapshot}) {
    EXPECT_EQ(snapshot->state, JobState::kDone);
    EXPECT_TRUE(snapshot->degraded);
    EXPECT_EQ(snapshot->spec.strategy, "incremental");
    EXPECT_EQ(snapshot->report.strategy_name, "static(level2)");
    EXPECT_LE(snapshot->report.iterations, 5u);
  }

  obs::MetricsRegistry merged;
  runtime.collect_metrics(merged);
  EXPECT_EQ(merged.counter("svc.degraded.jobs").value(), 2.0);
  EXPECT_EQ(merged.counter("svc.shed.overload").value(), 1.0);
}

// ---------------------------------------------------------------------------
// Retry ladder over injected failures.

TEST(ServiceRuntimeResilience, ExhaustedRetriesSurfaceTheTransientError) {
  ServiceConfig config = memory_only(1);
  config.chaos.enabled = true;
  config.chaos.crash_probability = 1.0;  // Every attempt crashes.
  config.qos.max_retries = 2;
  config.qos.retry_base_ms = 0.1;
  config.qos.retry_max_ms = 0.3;
  ServiceRuntime runtime(config);

  const auto id = runtime.submit(quick_job());
  ASSERT_TRUE(id.has_value());
  const auto snapshot = runtime.result(*id);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->state, JobState::kFailed);
  EXPECT_EQ(snapshot->error, "chaos: injected crash");
  EXPECT_EQ(snapshot->attempts, 3u);  // 1 + max_retries.

  const ServiceStats stats = runtime.stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST(ServiceRuntimeResilience, RetryAfterCrashIsBitIdenticalToACleanRun) {
  // Find a seed whose first attempt of job 1 crashes and whose retry does
  // not — the engine is a pure function, so the test can probe it.
  ChaosConfig chaos;
  chaos.enabled = true;
  chaos.crash_probability = 0.5;
  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 1; candidate < 10000; ++candidate) {
    chaos.seed = candidate;
    const ChaosEngine engine(chaos);
    if (engine.crash(1, 0) && !engine.crash(1, 1)) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no suitable chaos seed in range";

  ServiceConfig config = memory_only(1);
  config.chaos = chaos;
  config.chaos.seed = seed;
  config.qos.max_retries = 3;
  config.qos.retry_base_ms = 0.1;
  config.qos.retry_max_ms = 0.3;
  ServiceRuntime chaotic(config);
  const auto id = chaotic.submit(quick_job());
  ASSERT_TRUE(id.has_value());
  const auto snapshot = chaotic.result(*id);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->state, JobState::kDone);
  EXPECT_EQ(snapshot->attempts, 2u);
  EXPECT_EQ(chaotic.stats().retries, 1u);

  // The retry ran on a fresh clone with no faults injected, so its result
  // is bit-identical to the same job on a chaos-free runtime.
  ServiceRuntime clean(memory_only(1));
  const auto clean_id = clean.submit(quick_job());
  ASSERT_TRUE(clean_id.has_value());
  const auto clean_snapshot = clean.result(*clean_id);
  ASSERT_TRUE(clean_snapshot.has_value());
  EXPECT_EQ(clean_snapshot->state, JobState::kDone);
  EXPECT_EQ(snapshot->report_json, clean_snapshot->report_json);
}

TEST(ServiceRuntimeResilience, ExhaustedRecoveryLadderSurfacesTheAbort) {
  // Fault the accurate mode too: the watchdog's safe mode cannot help, so
  // the recovery ladder must end in a structured abort, and with retries
  // off that abort is the job's terminal error. Bounded fixed-point bit
  // flips never go non-finite, so the service arms the stall detector —
  // the ServiceConfig watchdog knob — to catch the no-progress jitter.
  ServiceConfig config = memory_only(1);
  config.chaos.enabled = true;
  config.chaos.alu_fault_probability = 1.0;
  config.chaos.alu_fault_rate = 0.4;
  config.chaos.alu_fault_accurate = true;
  config.qos.max_retries = 0;
  // An impossible progress demand: every iteration counts as a stall, so
  // the ladder (recover, safe-mode, abort) runs to its end deterministically.
  config.watchdog.stall_window = 1;
  config.watchdog.stall_tolerance = 1e300;
  config.watchdog.safe_mode_after = 2;
  config.watchdog.max_recoveries = 3;
  ServiceRuntime runtime(config);

  JobSpec spec = quick_job();
  spec.max_iterations = 200;  // Room for the ladder to run out.
  const auto id = runtime.submit(spec);
  ASSERT_TRUE(id.has_value());
  const auto snapshot = runtime.result(*id);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->state, JobState::kFailed);
  EXPECT_EQ(snapshot->error.rfind("aborted: ", 0), 0u) << snapshot->error;
  // The report up to the abort is attached (status names the abort kind).
  EXPECT_TRUE(snapshot->report.status == core::RunStatus::kDiverged ||
              snapshot->report.status == core::RunStatus::kNumericalFault)
      << snapshot->report_json;
  EXPECT_EQ(runtime.stats().failed, 1u);
}

// ---------------------------------------------------------------------------
// Chaos determinism: same seed => same outcomes, any worker count.

struct Outcome {
  JobState state;
  std::string error;
  std::size_t attempts;
  std::string report_json;

  bool operator==(const Outcome& other) const {
    return state == other.state && error == other.error &&
           attempts == other.attempts && report_json == other.report_json;
  }
};

std::pair<std::vector<Outcome>, std::string> run_chaos_fleet(
    std::size_t threads) {
  ServiceConfig config = memory_only(threads);
  config.chaos.enabled = true;
  config.chaos.seed = 0xfeed;
  config.chaos.crash_probability = 0.25;
  config.chaos.stall_probability = 0.25;
  config.chaos.stall_ms = 0.5;
  config.chaos.alu_fault_probability = 0.3;
  config.chaos.alu_fault_rate = 0.02;
  config.qos.max_retries = 2;
  config.qos.retry_base_ms = 0.1;
  config.qos.retry_max_ms = 0.3;
  ServiceRuntime runtime(config);

  std::vector<std::uint64_t> ids;
  for (const char* dataset : {"3cluster", "3d3cluster", "4cluster"}) {
    for (const char* strategy : {"incremental", "adaptive", "level1"}) {
      const auto id = runtime.submit(quick_job(dataset, strategy));
      EXPECT_TRUE(id.has_value());
      if (id) ids.push_back(*id);
    }
  }
  runtime.wait_idle();

  std::vector<Outcome> outcomes;
  for (const std::uint64_t id : ids) {
    const auto snapshot = runtime.status(id);
    EXPECT_TRUE(snapshot.has_value());
    outcomes.push_back(Outcome{snapshot->state, snapshot->error,
                               snapshot->attempts, snapshot->report_json});
  }
  obs::MetricsRegistry merged;
  runtime.collect_metrics(merged);
  return {outcomes, merged.to_json()};
}

TEST(ServiceRuntimeResilience, ChaosIsDeterministicAcrossRunsAndWorkers) {
  const auto reference = run_chaos_fleet(1);
  ASSERT_EQ(reference.first.size(), 9u);
  // Chaos actually fired: at least one job crashed at least once.
  std::size_t total_attempts = 0;
  for (const Outcome& outcome : reference.first) {
    total_attempts += outcome.attempts;
  }
  EXPECT_GT(total_attempts, 9u);

  const auto repeat = run_chaos_fleet(1);
  EXPECT_EQ(repeat.first, reference.first);
  EXPECT_EQ(repeat.second, reference.second);

  for (const std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
    const auto parallel = run_chaos_fleet(threads);
    EXPECT_EQ(parallel.first, reference.first) << threads << " workers";
    EXPECT_EQ(parallel.second, reference.second) << threads << " workers";
  }
}

// ---------------------------------------------------------------------------
// Cache-corruption chaos end to end: corrupt on persist, quarantine on
// the next start, recompute, carry on.

TEST(ServiceRuntimeResilience, CorruptedProfileIsQuarantinedOnRestart) {
  const std::string dir = fresh_dir("svc_chaos_corrupt");
  {
    ServiceConfig config;
    config.threads = 1;
    config.cache.directory = dir;
    config.chaos.enabled = true;
    config.chaos.cache_corruption_probability = 1.0;
    ServiceRuntime runtime(config);
    const auto id = runtime.submit(quick_job());
    ASSERT_TRUE(id.has_value());
    // The in-memory tier is unaffected; only the disk copy is corrupted.
    EXPECT_EQ(runtime.result(*id)->state, JobState::kDone);
  }

  // A fresh runtime scrubs the corrupted file into quarantine at startup
  // and the job recomputes its characterization as a clean miss.
  ServiceConfig config;
  config.threads = 1;
  config.cache.directory = dir;
  ServiceRuntime runtime(config);
  EXPECT_GE(runtime.stats().cache.quarantines, 1u);
  EXPECT_FALSE(std::filesystem::is_empty(
      runtime.profile_cache().quarantine_dir()));

  const auto id = runtime.submit(quick_job());
  ASSERT_TRUE(id.has_value());
  const auto snapshot = runtime.result(*id);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->state, JobState::kDone);
  EXPECT_FALSE(snapshot->cache_hit);  // The poisoned copy never served.
}

}  // namespace
}  // namespace approxit::svc
