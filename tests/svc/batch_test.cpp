// Cross-job micro-batching: bit-identity of batched reports vs solo
// execution (the differential reference), batch tallies/occupancy,
// profile-cache accounting parity, and the solo fallbacks (deadline
// jobs, incompatible specs).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "svc/runtime.h"

namespace approxit::svc {
namespace {

JobSpec quick_job(const std::string& tenant) {
  JobSpec spec;
  spec.tenant = tenant;
  spec.app = "gmm";
  spec.dataset = "3cluster";
  spec.max_iterations = 30;
  spec.characterization_iterations = 4;
  return spec;
}

/// One worker, paused, memory-only cache — the deterministic batching
/// harness: fill the queue, resume, and the single worker claims the
/// whole compatible prefix as one group.
ServiceConfig batching_config(std::size_t max_batch = 8) {
  ServiceConfig config;
  config.threads = 1;
  config.cache.directory.clear();
  config.start_paused = true;
  config.batch.enabled = true;
  config.batch.max_batch = max_batch;
  config.batch.window_ms = 0.0;
  return config;
}

TEST(ServiceBatching, BatchedReportsBitIdenticalToSolo) {
  // Reference: the same spec through a runtime with batching OFF.
  ServiceConfig solo_config;
  solo_config.threads = 1;
  solo_config.cache.directory.clear();
  ServiceRuntime solo(solo_config);
  const auto solo_id = solo.submit(quick_job("tenant-a"));
  ASSERT_TRUE(solo_id.has_value());
  const auto solo_snapshot = solo.result(*solo_id);
  ASSERT_TRUE(solo_snapshot.has_value());
  ASSERT_EQ(solo_snapshot->state, JobState::kDone);
  ASSERT_FALSE(solo_snapshot->report_json.empty());

  constexpr std::size_t kJobs = 5;
  ServiceRuntime batched(batching_config());
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < kJobs; ++i) {
    const auto id = batched.submit(quick_job("tenant-a"));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  batched.resume();
  for (const std::uint64_t id : ids) {
    const auto snapshot = batched.result(id);
    ASSERT_TRUE(snapshot.has_value());
    EXPECT_EQ(snapshot->state, JobState::kDone);
    // The acceptance gate: every member's report is byte-identical to
    // the solo run — batching is invisible in the results.
    EXPECT_EQ(snapshot->report_json, solo_snapshot->report_json);
    EXPECT_EQ(snapshot->report.total_energy, solo_snapshot->report.total_energy);
    EXPECT_EQ(snapshot->report.final_objective, solo_snapshot->report.final_objective);
  }
  batched.wait_idle();

  const ServiceStats stats = batched.stats();
  EXPECT_EQ(stats.completed, kJobs);
  EXPECT_EQ(stats.batch_groups, 1u);
  EXPECT_EQ(stats.batch_jobs, kJobs);
  // Cache accounting parity with solo execution: one characterization
  // miss; every peer counts as a hit (exactly what K solo jobs racing the
  // single-flight path would record).
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits, kJobs - 1);
}

TEST(ServiceBatching, MaxBatchSplitsTheQueue) {
  constexpr std::size_t kJobs = 6;
  ServiceRuntime runtime(batching_config(/*max_batch=*/3));
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < kJobs; ++i) {
    const auto id = runtime.submit(quick_job("tenant-b"));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  runtime.resume();
  for (const std::uint64_t id : ids) ASSERT_TRUE(runtime.wait(id));
  runtime.wait_idle();
  const ServiceStats stats = runtime.stats();
  EXPECT_EQ(stats.completed, kJobs);
  EXPECT_EQ(stats.batch_groups, 2u);
  EXPECT_EQ(stats.batch_jobs, kJobs);
}

TEST(ServiceBatching, IncompatibleSpecsDoNotCoalesce) {
  // Different max_iterations => different batch key: the single worker
  // must run them as separate groups, and each report must match its own
  // solo reference.
  ServiceRuntime runtime(batching_config());
  JobSpec a = quick_job("tenant-c");
  JobSpec b = quick_job("tenant-c");
  b.max_iterations = 12;
  const auto id_a = runtime.submit(a);
  const auto id_b = runtime.submit(b);
  ASSERT_TRUE(id_a.has_value());
  ASSERT_TRUE(id_b.has_value());
  runtime.resume();
  const auto snap_a = runtime.result(*id_a);
  const auto snap_b = runtime.result(*id_b);
  ASSERT_TRUE(snap_a.has_value());
  ASSERT_TRUE(snap_b.has_value());
  EXPECT_NE(snap_a->report_json, snap_b->report_json);
  runtime.wait_idle();
  const ServiceStats stats = runtime.stats();
  EXPECT_EQ(stats.batch_groups, 2u);
  EXPECT_EQ(stats.batch_jobs, 2u);
}

TEST(ServiceBatching, DeadlineJobsRunSolo) {
  // Deadline-carrying jobs are excluded from batching (their pacing is
  // their own); with batching enabled each still commits as a group of
  // one, so occupancy stays exactly 1.0.
  ServiceConfig config = batching_config();
  ServiceRuntime runtime(config);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    JobSpec spec = quick_job("tenant-d");
    spec.deadline_ms = 60000.0;
    const auto id = runtime.submit(spec);
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  runtime.resume();
  for (const std::uint64_t id : ids) {
    const auto snapshot = runtime.result(id);
    ASSERT_TRUE(snapshot.has_value());
    EXPECT_EQ(snapshot->state, JobState::kDone);
  }
  runtime.wait_idle();
  const ServiceStats stats = runtime.stats();
  EXPECT_EQ(stats.batch_groups, 3u);
  EXPECT_EQ(stats.batch_jobs, 3u);
}

TEST(ServiceBatching, CancelledMemberCommitsCancelledOthersUnaffected) {
  // Cancel one queued member before resume: a queued cancel goes terminal
  // immediately, so the group forms without it and the survivors' reports
  // are still bit-identical to solo.
  ServiceRuntime reference(batching_config());
  const auto ref_id = reference.submit(quick_job("tenant-e"));
  ASSERT_TRUE(ref_id.has_value());
  reference.resume();
  const auto ref_snapshot = reference.result(*ref_id);
  ASSERT_TRUE(ref_snapshot.has_value());

  ServiceRuntime runtime(batching_config());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    const auto id = runtime.submit(quick_job("tenant-e"));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  ASSERT_TRUE(runtime.cancel(ids[1]));
  runtime.resume();
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    const auto snapshot = runtime.result(ids[i]);
    ASSERT_TRUE(snapshot.has_value());
    EXPECT_EQ(snapshot->state, JobState::kDone);
    EXPECT_EQ(snapshot->report_json, ref_snapshot->report_json);
  }
  const auto cancelled = runtime.result(ids[1]);
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->state, JobState::kCancelled);
}

TEST(ServiceBatching, MetricsByteIdenticalBatchedVsSolo) {
  // The deterministic metrics merge must not see batching either.
  const auto metrics_for = [](bool batching) {
    ServiceConfig config = batching_config();
    config.batch.enabled = batching;
    ServiceRuntime runtime(config);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i) {
      const auto id = runtime.submit(quick_job("tenant-f"));
      EXPECT_TRUE(id.has_value());
      if (id) ids.push_back(*id);
    }
    runtime.resume();
    for (const std::uint64_t id : ids) EXPECT_TRUE(runtime.wait(id));
    runtime.wait_idle();
    obs::MetricsRegistry merged;
    runtime.collect_metrics(merged);
    return merged.to_json();
  };
  const std::string batched = metrics_for(true);
  const std::string solo = metrics_for(false);
  EXPECT_FALSE(batched.empty());
  EXPECT_EQ(batched, solo);
}

}  // namespace
}  // namespace approxit::svc
