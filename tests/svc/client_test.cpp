// svc::Client coverage, in-process transport: streams deliver the full
// causal lifecycle (queued -> running -> [progress] -> terminal, then
// end), stream() replays current state for late subscribers, the global
// event-sink fan-out feeds the socket server, and dispatch_sync — the
// single sync-op path both front ends share — produces the frozen v1
// response shapes plus the v2 additions.
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "svc/client.h"
#include "svc/protocol.h"
#include "svc/wire.h"

namespace approxit::svc {
namespace {

JobSpec quick_job(const std::string& tenant = "default") {
  JobSpec spec;
  spec.tenant = tenant;
  spec.app = "gmm";
  spec.dataset = "3cluster";
  spec.max_iterations = 30;
  spec.characterization_iterations = 4;
  return spec;
}

ServiceConfig memory_only(std::size_t threads,
                          std::size_t progress_every = 0) {
  ServiceConfig config;
  config.threads = threads;
  config.cache.directory.clear();
  config.progress_every = progress_every;
  return config;
}

WireObject parsed(const std::string& line) {
  const auto object =
      parse_wire_object(line, nullptr, /*allow_raw_nested=*/true);
  EXPECT_TRUE(object.has_value()) << line;
  return object.value_or(WireObject{});
}

TEST(InProcess, SubmitStreamDeliversCausalLifecycle) {
  InProcessClient client(memory_only(2, /*progress_every=*/8));
  std::string error;
  const auto stream = client.submit_stream(quick_job(), &error);
  ASSERT_NE(stream, nullptr) << error;

  std::vector<StreamEvent> events;
  while (const auto event = stream->next()) events.push_back(*event);
  // After the terminal event the stream stays ended.
  EXPECT_FALSE(stream->next().has_value());

  ASSERT_GE(events.size(), 3u);  // queued, running, terminal at minimum.
  EXPECT_EQ(events.front().event, "queued");
  EXPECT_EQ(events[1].event, "running");
  EXPECT_EQ(events.back().event, "terminal");
  std::size_t last_iteration = 0;
  for (std::size_t i = 2; i + 1 < events.size(); ++i) {
    EXPECT_EQ(events[i].event, "progress");
    EXPECT_GT(events[i].iteration, last_iteration);  // Monotone progress.
    last_iteration = events[i].iteration;
  }
  for (const StreamEvent& event : events) {
    EXPECT_EQ(event.id, stream->id());
    EXPECT_EQ(event.tenant, "default");
  }

  // The terminal event's payload is the job's result, report included —
  // byte-identical to what result() returns.
  ASSERT_TRUE(events.back().status.has_value());
  const auto result = client.result(stream->id());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(events.back().status->state, result->state);
  EXPECT_EQ(events.back().status->report_json, result->report_json);
  EXPECT_FALSE(result->report_json.empty());
}

TEST(InProcess, StreamReplaysTerminalStateForLateSubscribers) {
  InProcessClient client(memory_only(2));
  std::string error;
  const auto id = client.submit(quick_job(), &error);
  ASSERT_TRUE(id.has_value()) << error;
  ASSERT_TRUE(client.result(*id).has_value());  // Wait until terminal.

  const auto stream = client.stream(*id);
  ASSERT_NE(stream, nullptr);
  const auto replay = stream->next();
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(replay->terminal());
  ASSERT_TRUE(replay->status.has_value());
  EXPECT_EQ(replay->status->id, *id);
  EXPECT_FALSE(stream->next().has_value());

  EXPECT_EQ(client.stream(/*id=*/9999), nullptr);
}

TEST(InProcess, EventSinksSeeEveryJobsLifecycle) {
  InProcessClient client(memory_only(2));
  std::mutex mutex;
  std::vector<JobEvent> seen;
  const std::uint64_t token =
      client.add_event_sink([&](const JobEvent& event) {
        const std::lock_guard<std::mutex> lock(mutex);
        seen.push_back(event);
      });

  std::string error;
  const auto id = client.submit(quick_job(), &error);
  ASSERT_TRUE(id.has_value()) << error;
  ASSERT_TRUE(client.result(*id).has_value());
  client.runtime().wait_idle();

  {
    const std::lock_guard<std::mutex> lock(mutex);
    ASSERT_GE(seen.size(), 3u);
    EXPECT_EQ(seen.front().kind, JobEvent::Kind::kQueued);
    EXPECT_EQ(seen.back().kind, JobEvent::Kind::kTerminal);
    for (const JobEvent& event : seen) EXPECT_EQ(event.id, *id);
  }

  // After removal (which synchronizes with in-flight callbacks) a new
  // job's events stay unseen.
  client.remove_event_sink(token);
  const std::size_t count_after_remove = [&] {
    const std::lock_guard<std::mutex> lock(mutex);
    return seen.size();
  }();
  const auto second = client.submit(quick_job(), &error);
  ASSERT_TRUE(second.has_value()) << error;
  ASSERT_TRUE(client.result(*second).has_value());
  client.runtime().wait_idle();
  const std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(seen.size(), count_after_remove);
}

TEST(DispatchSync, HelloSubmitStatusStats) {
  InProcessClient client(memory_only(2));

  const auto hello =
      dispatch_sync(client, parsed(R"({"op":"hello","proto":2})"));
  ASSERT_TRUE(hello.has_value());
  const WireObject hello_object = parsed(*hello);
  EXPECT_TRUE(hello_object.get_bool("ok", false));
  EXPECT_EQ(hello_object.get_int("proto", 0), kProtoVersion);
  EXPECT_EQ(hello_object.get_string("service"), "approxit");

  const auto submit = dispatch_sync(
      client,
      parsed(R"({"op":"submit","app":"gmm","dataset":"3cluster",)"
             R"("max_iterations":30,"characterization_iterations":4})"));
  ASSERT_TRUE(submit.has_value());
  const WireObject submit_object = parsed(*submit);
  ASSERT_TRUE(submit_object.get_bool("ok", false)) << *submit;
  const auto id = submit_object.get_int("id", 0);
  EXPECT_GT(id, 0);

  // status is sync (point-in-time, never blocks, never carries a report).
  const auto status = dispatch_sync(
      client,
      parsed(R"({"op":"status","id":)" + std::to_string(id) + "}"));
  ASSERT_TRUE(status.has_value());
  EXPECT_FALSE(parsed(*status).has("report"));

  ASSERT_TRUE(client.result(static_cast<std::uint64_t>(id)).has_value());
  const auto stats = dispatch_sync(client, parsed(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.has_value());
  const StatsSummary summary = stats_summary_from_wire(parsed(*stats));
  EXPECT_EQ(summary.submitted, 1u);
  EXPECT_EQ(summary.completed, 1u);
}

TEST(DispatchSync, StatsFormatFoldAndLegacyAlias) {
  InProcessClient client(memory_only(1));
  std::string error;
  const auto id = client.submit(quick_job(), &error);
  ASSERT_TRUE(id.has_value()) << error;
  ASSERT_TRUE(client.result(*id).has_value());
  client.runtime().wait_idle();

  // v2: stats with a format argument returns the export.
  const auto folded = dispatch_sync(
      client,
      parsed(R"({"op":"stats","proto":2,"format":"jsonl",)"
             R"("deterministic":true})"));
  ASSERT_TRUE(folded.has_value());
  const WireObject folded_object = parsed(*folded);
  ASSERT_TRUE(folded_object.get_bool("ok", false)) << *folded;
  EXPECT_TRUE(folded_object.has("content"));

  // v1 alias: stats_export keeps working, same content shape.
  const auto legacy = dispatch_sync(
      client,
      parsed(R"({"op":"stats_export","format":"jsonl",)"
             R"("deterministic":true})"));
  ASSERT_TRUE(legacy.has_value());
  const WireObject legacy_object = parsed(*legacy);
  ASSERT_TRUE(legacy_object.get_bool("ok", false)) << *legacy;
  EXPECT_EQ(legacy_object.get_string("content"),
            folded_object.get_string("content"));

  const auto bad_format = dispatch_sync(
      client, parsed(R"({"op":"stats","format":"xml"})"));
  ASSERT_TRUE(bad_format.has_value());
  EXPECT_FALSE(parsed(*bad_format).get_bool("ok", true));
}

TEST(DispatchSync, AsyncOpsFallThroughSyncOpsDoNot) {
  InProcessClient client(memory_only(1));
  // The four ops a front end must run itself.
  EXPECT_FALSE(dispatch_sync(client, parsed(R"({"op":"result","id":1})"))
                   .has_value());
  EXPECT_FALSE(dispatch_sync(client, parsed(R"({"op":"stream","id":1})"))
                   .has_value());
  EXPECT_FALSE(dispatch_sync(
                   client,
                   parsed(R"({"op":"submit","stream":true,"app":"gmm",)"
                          R"("dataset":"3cluster"})"))
                   .has_value());
  EXPECT_FALSE(dispatch_sync(client, parsed(R"({"op":"shutdown"})"))
                   .has_value());
}

TEST(DispatchSync, ProtoErrorsAnswerEveryOpIncludingAsync) {
  InProcessClient client(memory_only(1));
  // Even ops that normally fall through answer proto errors HERE, so a
  // future-proto client is refused before any state changes.
  for (const char* line :
       {R"({"op":"result","id":1,"proto":9})",
        R"({"op":"submit","stream":true,"proto":9})",
        R"({"op":"shutdown","proto":9})", R"({"op":"stats","proto":9})"}) {
    const auto response = dispatch_sync(client, parsed(line));
    ASSERT_TRUE(response.has_value()) << line;
    const WireObject object = parsed(*response);
    EXPECT_FALSE(object.get_bool("ok", true));
    EXPECT_NE(object.get_string("error").find("unsupported_proto"),
              std::string::npos);
  }
}

TEST(DispatchSync, V1ErrorShapesAreFrozen) {
  InProcessClient client(memory_only(1));

  // Unknown op: error without an op echo (the v1 shape).
  const auto unknown =
      dispatch_sync(client, parsed(R"({"op":"frobnicate"})"));
  ASSERT_TRUE(unknown.has_value());
  const WireObject unknown_object = parsed(*unknown);
  EXPECT_FALSE(unknown_object.get_bool("ok", true));
  EXPECT_FALSE(unknown_object.has("op"));

  // Bad submit: rejection echoes the op.
  const auto rejected = dispatch_sync(
      client, parsed(R"({"op":"submit","app":"fft","dataset":"x"})"));
  ASSERT_TRUE(rejected.has_value());
  const WireObject rejected_object = parsed(*rejected);
  EXPECT_FALSE(rejected_object.get_bool("ok", true));
  EXPECT_EQ(rejected_object.get_string("op"), "submit");

  // Unknown ids on sync ops.
  const auto status =
      dispatch_sync(client, parsed(R"({"op":"status","id":42})"));
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(parsed(*status).get_string("error"), "unknown_job");
  const auto cancel =
      dispatch_sync(client, parsed(R"({"op":"cancel","id":42})"));
  ASSERT_TRUE(cancel.has_value());
  EXPECT_FALSE(parsed(*cancel).get_bool("ok", true));
}

}  // namespace
}  // namespace approxit::svc
