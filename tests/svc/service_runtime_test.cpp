// ServiceRuntime semantics: admission control (bounded queue, tenant
// caps, validation), cache amortization across jobs, and determinism of
// per-job reports and merged metrics for any worker count.
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "svc/runtime.h"

namespace approxit::svc {
namespace {

/// A small fast job: few characterization probes, tight iteration cap.
JobSpec quick_job(const std::string& dataset = "3cluster",
                  const std::string& strategy = "incremental") {
  JobSpec spec;
  spec.app = "gmm";
  spec.dataset = dataset;
  spec.strategy = strategy;
  spec.max_iterations = 30;
  spec.characterization_iterations = 4;
  return spec;
}

ServiceConfig memory_only(std::size_t threads) {
  ServiceConfig config;
  config.threads = threads;
  config.cache.directory.clear();
  return config;
}

TEST(ServiceRuntime, RunsAJobEndToEnd) {
  ServiceRuntime runtime(memory_only(2));
  std::string error;
  const auto id = runtime.submit(quick_job(), &error);
  ASSERT_TRUE(id.has_value()) << error;

  const auto snapshot = runtime.result(*id);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->state, JobState::kDone);
  EXPECT_EQ(snapshot->report.method_name, "gmm_em");
  EXPECT_EQ(snapshot->report.strategy_name, "incremental");
  EXPECT_FALSE(snapshot->report_json.empty());
  EXPECT_FALSE(snapshot->cache_hit);  // First job characterizes.
  EXPECT_GT(snapshot->report.iterations, 0u);

  const ServiceStats stats = runtime.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ServiceRuntime, ValidatesSpecsUpFront) {
  ServiceRuntime runtime(memory_only(1));
  std::string error;

  JobSpec bad_app = quick_job();
  bad_app.app = "fft";
  EXPECT_FALSE(runtime.submit(bad_app, &error).has_value());
  EXPECT_EQ(error.rfind("bad_request:", 0), 0u) << error;

  JobSpec bad_dataset = quick_job("5cluster");
  EXPECT_FALSE(runtime.submit(bad_dataset, &error).has_value());

  JobSpec bad_strategy = quick_job("3cluster", "oracle-magic");
  EXPECT_FALSE(runtime.submit(bad_strategy, &error).has_value());

  JobSpec ar_dataset_on_gmm = quick_job("hangseng");
  EXPECT_FALSE(runtime.submit(ar_dataset_on_gmm, &error).has_value());

  EXPECT_EQ(runtime.stats().rejected_bad_request, 4u);
  EXPECT_EQ(runtime.stats().submitted, 0u);

  // The static modes and both apps are accepted by validation.
  for (const char* strategy :
       {"incremental", "adaptive", "accurate", "level1", "level4"}) {
    EXPECT_TRUE(ServiceRuntime::validate(quick_job("3cluster", strategy)))
        << strategy;
  }
  JobSpec ar;
  ar.app = "ar";
  ar.dataset = "sp500";
  EXPECT_TRUE(ServiceRuntime::validate(ar));
}

TEST(ServiceRuntime, BoundedQueueRejectsWhenFull) {
  ServiceConfig config = memory_only(1);
  config.queue_capacity = 2;
  config.start_paused = true;  // Nothing drains: admission is deterministic.
  ServiceRuntime runtime(config);

  std::string error;
  const auto first = runtime.submit(quick_job(), &error);
  const auto second = runtime.submit(quick_job(), &error);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());

  EXPECT_FALSE(runtime.submit(quick_job(), &error).has_value());
  EXPECT_EQ(error, "queue_full");
  EXPECT_EQ(runtime.stats().rejected_queue_full, 1u);
  EXPECT_EQ(runtime.stats().queued, 2u);

  runtime.resume();
  EXPECT_TRUE(runtime.wait(*first));
  EXPECT_TRUE(runtime.wait(*second));
  // Capacity freed: admission works again.
  EXPECT_TRUE(runtime.submit(quick_job(), &error).has_value());
  runtime.wait_idle();
}

TEST(ServiceRuntime, PerTenantCapLimitsOnlyThatTenant) {
  ServiceConfig config = memory_only(1);
  config.per_tenant_cap = 1;
  config.start_paused = true;
  ServiceRuntime runtime(config);

  JobSpec tenant_a = quick_job();
  tenant_a.tenant = "alice";
  JobSpec tenant_b = quick_job();
  tenant_b.tenant = "bob";

  std::string error;
  const auto first = runtime.submit(tenant_a, &error);
  ASSERT_TRUE(first.has_value());

  // alice is at her cap (1 queued); bob is unaffected.
  EXPECT_FALSE(runtime.submit(tenant_a, &error).has_value());
  EXPECT_EQ(error, "tenant_cap");
  EXPECT_TRUE(runtime.submit(tenant_b, &error).has_value());
  EXPECT_EQ(runtime.stats().rejected_tenant_cap, 1u);

  runtime.resume();
  runtime.wait_idle();
  // Terminal jobs release the cap.
  EXPECT_TRUE(runtime.submit(tenant_a, &error).has_value());
  runtime.wait_idle();
}

TEST(ServiceRuntime, CacheAmortizesAcrossJobsAndStrategies) {
  ServiceRuntime runtime(memory_only(1));
  std::string error;
  // Same workload under two strategies: the characterization key ignores
  // the strategy, so the second job must hit.
  const auto first = runtime.submit(quick_job("3cluster", "incremental"));
  const auto second = runtime.submit(quick_job("3cluster", "adaptive"));
  ASSERT_TRUE(first && second);

  const auto cold = runtime.result(*first);
  const auto warm = runtime.result(*second);
  ASSERT_TRUE(cold && warm);
  EXPECT_FALSE(cold->cache_hit);
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->characterization_ms, 0.0);

  const ServiceStats stats = runtime.stats();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.stores, 1u);
}

TEST(ServiceRuntime, ReportsAndMetricsInvariantAcrossWorkerCounts) {
  const std::vector<JobSpec> jobs = {
      quick_job("3cluster", "incremental"),
      quick_job("3cluster", "adaptive"),
      quick_job("3d3cluster", "incremental"),
      quick_job("3cluster", "accurate"),
  };

  std::vector<std::string> reports_per_run[2];
  std::string metrics_per_run[2];
  const std::size_t worker_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    ServiceRuntime runtime(memory_only(worker_counts[run]));
    std::vector<std::uint64_t> ids;
    for (const JobSpec& spec : jobs) {
      const auto id = runtime.submit(spec);
      ASSERT_TRUE(id.has_value());
      ids.push_back(*id);
    }
    for (const std::uint64_t id : ids) {
      const auto snapshot = runtime.result(id);
      ASSERT_TRUE(snapshot.has_value());
      EXPECT_EQ(snapshot->state, JobState::kDone);
      reports_per_run[run].push_back(snapshot->report_json);
    }
    obs::MetricsRegistry merged;
    runtime.collect_metrics(merged);
    metrics_per_run[run] = merged.to_json();
  }

  EXPECT_EQ(reports_per_run[0], reports_per_run[1]);
  EXPECT_EQ(metrics_per_run[0], metrics_per_run[1]);
}

TEST(ServiceRuntime, StatusWhileRunningSeesOnlyCommittedStates) {
  // Regression for a data race: execute() used to write result fields
  // into the live Job unlocked while status() copied them. Poll hard
  // while the job runs — every snapshot must be internally consistent.
  ServiceRuntime runtime(memory_only(1));
  const auto id = runtime.submit(quick_job());
  ASSERT_TRUE(id.has_value());

  while (true) {
    const auto snapshot = runtime.status(*id);
    ASSERT_TRUE(snapshot.has_value());
    if (snapshot->state == JobState::kQueued ||
        snapshot->state == JobState::kRunning) {
      // Result fields commit atomically with the terminal transition:
      // a non-terminal snapshot never exposes partial results.
      EXPECT_TRUE(snapshot->report_json.empty());
      EXPECT_TRUE(snapshot->error.empty());
      continue;
    }
    EXPECT_EQ(snapshot->state, JobState::kDone);
    EXPECT_FALSE(snapshot->report_json.empty());
    break;
  }
  runtime.wait_idle();
}

TEST(ServiceRuntime, RetiresTerminalJobsBeyondRetentionBound) {
  ServiceConfig config = memory_only(2);
  config.retain_terminal = 2;
  ServiceRuntime runtime(config);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    const auto id = runtime.submit(quick_job());
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  runtime.wait_idle();

  // Lowest ids retire first; the newest retain_terminal survive.
  EXPECT_FALSE(runtime.status(ids[0]).has_value());
  EXPECT_FALSE(runtime.status(ids[1]).has_value());
  EXPECT_FALSE(runtime.status(ids[2]).has_value());
  ASSERT_TRUE(runtime.status(ids[3]).has_value());
  ASSERT_TRUE(runtime.status(ids[4]).has_value());
  EXPECT_EQ(runtime.status(ids[4])->state, JobState::kDone);

  // Retired jobs' metrics fold into the aggregate: nothing is lost.
  obs::MetricsRegistry merged;
  runtime.collect_metrics(merged);
  EXPECT_EQ(merged.counter_values().at("session.runs"), 5.0);
  // Tallies are unaffected by retirement.
  EXPECT_EQ(runtime.stats().completed, 5u);
}

TEST(ServiceRuntime, ForgetRetiresOnlyTerminalJobs) {
  ServiceConfig config = memory_only(1);
  config.start_paused = true;
  ServiceRuntime runtime(config);

  const auto id = runtime.submit(quick_job());
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(runtime.forget(*id));  // Still queued.
  EXPECT_FALSE(runtime.forget(*id + 99));  // Unknown.

  runtime.resume();
  ASSERT_TRUE(runtime.wait(*id));
  EXPECT_TRUE(runtime.forget(*id));
  EXPECT_FALSE(runtime.status(*id).has_value());
  EXPECT_FALSE(runtime.forget(*id));  // Already retired.

  // The forgotten job's metrics survive in the aggregate.
  obs::MetricsRegistry merged;
  runtime.collect_metrics(merged);
  EXPECT_EQ(merged.counter_values().at("session.runs"), 1.0);
}

TEST(ServiceRuntime, ShutdownDrainsQueuedJobs) {
  ServiceConfig config = memory_only(2);
  config.start_paused = true;
  ServiceRuntime runtime(config);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    const auto id = runtime.submit(quick_job());
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  runtime.shutdown();  // Must run the queued jobs, not drop them.

  for (const std::uint64_t id : ids) {
    const auto snapshot = runtime.status(id);
    ASSERT_TRUE(snapshot.has_value());
    EXPECT_EQ(snapshot->state, JobState::kDone);
  }
  std::string error;
  EXPECT_FALSE(runtime.submit(quick_job(), &error).has_value());
  EXPECT_EQ(error, "shutting_down");
}

}  // namespace
}  // namespace approxit::svc
