// ShardRouter semantics: consistent-hash routing (balance, stability
// under shard-count change), global-id translation across the whole
// client surface, the shared profile-cache tier, and byte-identity of
// the merged deterministic stats across shard counts.
#include "svc/shard.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "svc/client.h"

namespace approxit::svc {
namespace {

JobSpec quick_job(const std::string& tenant,
                  const std::string& dataset = "3cluster") {
  JobSpec spec;
  spec.tenant = tenant;
  spec.app = "gmm";
  spec.dataset = dataset;
  spec.max_iterations = 25;
  spec.characterization_iterations = 4;
  return spec;
}

ShardRouterConfig memory_only_router(std::size_t shards,
                                     std::size_t threads = 2) {
  ShardRouterConfig config;
  config.shards = shards;
  config.shard.threads = threads;
  config.shard.cache.directory.clear();
  return config;
}

TEST(HashRing, SpreadsKeysAcrossEveryShard) {
  for (const std::size_t shards : {2u, 4u, 8u}) {
    HashRing ring(shards, 64);
    std::vector<std::size_t> counts(shards, 0);
    for (int i = 0; i < 8000; ++i) {
      ++counts[ring.lookup("tenant-" + std::to_string(i) + "/gmm/3cluster")];
    }
    const double fair = 8000.0 / static_cast<double>(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      // Loose bounds: FNV + 64 vnodes is not perfectly flat, but no shard
      // may be starved or hot by more than ~2x.
      EXPECT_GT(counts[s], fair * 0.45) << "shards=" << shards << " s=" << s;
      EXPECT_LT(counts[s], fair * 2.0) << "shards=" << shards << " s=" << s;
    }
  }
}

TEST(HashRing, LookupIsDeterministic) {
  HashRing a(4, 64);
  HashRing b(4, 64);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a.lookup(key), b.lookup(key));
  }
}

TEST(HashRing, GrowingTheRingOnlyMovesKeysToTheNewShard) {
  // Consistent-hash stability: adding shard N+1 adds ring points without
  // moving the existing ones, so a key either keeps its shard or moves to
  // the NEW one — and only ~1/(N+1) of the keyspace moves at all.
  HashRing before(4, 64);
  HashRing after(5, 64);
  int moved = 0;
  const int keys = 4000;
  for (int i = 0; i < keys; ++i) {
    const std::string key = "stable-key-" + std::to_string(i);
    const std::size_t old_shard = before.lookup(key);
    const std::size_t new_shard = after.lookup(key);
    if (new_shard != old_shard) {
      ++moved;
      EXPECT_EQ(new_shard, 4u) << key;  // Only ever to the added shard.
    }
  }
  EXPECT_GT(moved, 0);
  // Expected fraction 1/5; generous ceiling for hash variance.
  EXPECT_LT(moved, keys * 2 / 5);
}

TEST(ShardRouter, RoutesRunsAndTranslatesIds) {
  ShardRouter router(memory_only_router(3));
  std::string error;
  std::vector<std::uint64_t> ids;
  for (const char* tenant : {"alpha", "beta", "gamma", "delta"}) {
    const JobSpec spec = quick_job(tenant);
    const auto id = router.submit(spec, &error);
    ASSERT_TRUE(id.has_value()) << error;
    // The global id encodes the ring's shard choice.
    EXPECT_EQ(*id % router.shard_count(), router.shard_of(spec));
    ids.push_back(*id);
  }
  // Global ids are unique even though shard-local ids overlap.
  EXPECT_EQ(std::set<std::uint64_t>(ids.begin(), ids.end()).size(),
            ids.size());
  for (const std::uint64_t id : ids) {
    const auto status = router.result(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->id, id);
    EXPECT_EQ(status->state, JobState::kDone);
    EXPECT_FALSE(status->report_json.empty());
    const auto snapshot = router.snapshot(id);
    ASSERT_TRUE(snapshot.has_value());
    EXPECT_EQ(snapshot->id, id);
  }
  const ServiceStats stats = router.service_stats();
  EXPECT_EQ(stats.submitted, ids.size());
  EXPECT_EQ(stats.completed, ids.size());
  // Unknown and undecodable ids answer like unknown jobs.
  EXPECT_FALSE(router.status(0).has_value());
  EXPECT_FALSE(router.cancel(1));  // local id 0 on every shard count > 1
}

TEST(ShardRouter, StreamsCarryGlobalIds) {
  ShardRouter router(memory_only_router(2));
  std::string error;
  const auto stream = router.submit_stream(quick_job("stream-tenant"), &error);
  ASSERT_NE(stream, nullptr) << error;
  const std::uint64_t id = stream->id();
  EXPECT_GE(id, router.shard_count());  // Encoded: local>=1 scaled up.
  bool saw_terminal = false;
  while (const auto event = stream->next()) {
    EXPECT_EQ(event->id, id);
    if (event->terminal()) {
      saw_terminal = true;
      ASSERT_TRUE(event->status.has_value());
      EXPECT_EQ(event->status->id, id);
      EXPECT_EQ(event->status->state, JobState::kDone);
    }
  }
  EXPECT_TRUE(saw_terminal);
}

TEST(ShardRouter, EventSinksSeeGlobalIds) {
  ShardRouter router(memory_only_router(2));
  std::mutex mutex;
  std::vector<std::uint64_t> seen;
  const std::uint64_t token =
      router.add_event_sink([&](const JobEvent& event) {
        std::lock_guard<std::mutex> lock(mutex);
        seen.push_back(event.id);
      });
  std::string error;
  const auto id = router.submit(quick_job("sink-tenant"), &error);
  ASSERT_TRUE(id.has_value()) << error;
  ASSERT_TRUE(router.result(*id).has_value());
  router.wait_idle();
  router.remove_event_sink(token);
  {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_FALSE(seen.empty());
    for (const std::uint64_t event_id : seen) EXPECT_EQ(event_id, *id);
  }
}

TEST(ShardRouter, SharedCacheServesEveryShard) {
  // Two tenants that route to DIFFERENT shards but share a
  // characterization key (tenant is not part of it): the second job must
  // hit the shared tier, wherever it ran.
  ShardRouter router(memory_only_router(4));
  std::string second_tenant;
  const std::size_t first_shard = router.shard_of(quick_job("cache-a"));
  for (int i = 0; i < 64; ++i) {
    const std::string candidate = "cache-b" + std::to_string(i);
    if (router.shard_of(quick_job(candidate)) != first_shard) {
      second_tenant = candidate;
      break;
    }
  }
  ASSERT_FALSE(second_tenant.empty()) << "no tenant routed elsewhere";

  std::string error;
  const auto first = router.submit(quick_job("cache-a"), &error);
  ASSERT_TRUE(first.has_value()) << error;
  ASSERT_TRUE(router.result(*first).has_value());
  const auto second = router.submit(quick_job(second_tenant), &error);
  ASSERT_TRUE(second.has_value()) << error;
  const auto status = router.result(*second);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->cache_hit);

  const ProfileCacheStats cache = router.profile_cache().stats();
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_GE(cache.hits, 1u);
}

/// Runs the same job set through a router and returns the stats summary.
StatsSummary run_job_set(std::size_t shards) {
  ShardRouter router(memory_only_router(shards));
  std::string error;
  std::vector<std::uint64_t> ids;
  for (const char* tenant : {"t1", "t2", "t3"}) {
    for (const char* dataset : {"3cluster", "4cluster"}) {
      for (int repeat = 0; repeat < 2; ++repeat) {
        const auto id = router.submit(quick_job(tenant, dataset), &error);
        EXPECT_TRUE(id.has_value()) << error;
        if (id) ids.push_back(*id);
      }
    }
  }
  for (const std::uint64_t id : ids) EXPECT_TRUE(router.result(id));
  router.wait_idle();
  const auto stats = router.stats();
  EXPECT_TRUE(stats.has_value());
  return stats.value_or(StatsSummary{});
}

TEST(ShardRouter, MergedStatsByteIdenticalAcrossShardCounts) {
  const StatsSummary one = run_job_set(1);
  const StatsSummary two = run_job_set(2);
  const StatsSummary four = run_job_set(4);

  EXPECT_EQ(one.submitted, two.submitted);
  EXPECT_EQ(one.completed, two.completed);
  EXPECT_EQ(one.cache_misses, two.cache_misses);
  EXPECT_EQ(one.cache_hits, two.cache_hits);
  EXPECT_EQ(two.submitted, four.submitted);
  EXPECT_EQ(two.completed, four.completed);

  // The merged deterministic metrics document — the real gate: the
  // (route_key, local id) merge order makes the FP fold sequence of every
  // per-tenant series independent of the topology.
  EXPECT_EQ(one.metrics_json, two.metrics_json);
  EXPECT_EQ(two.metrics_json, four.metrics_json);
}

TEST(ShardRouter, DeterministicExportByteIdenticalAcrossShardCounts) {
  const auto export_for = [](std::size_t shards) {
    ShardRouter router(memory_only_router(shards));
    std::string error;
    std::vector<std::uint64_t> ids;
    for (const char* tenant : {"e1", "e2"}) {
      for (int repeat = 0; repeat < 3; ++repeat) {
        const auto id = router.submit(quick_job(tenant), &error);
        EXPECT_TRUE(id.has_value()) << error;
        if (id) ids.push_back(*id);
      }
    }
    for (const std::uint64_t id : ids) EXPECT_TRUE(router.result(id));
    router.wait_idle();
    StatsExportRequest request;
    request.format = "prometheus";
    request.deterministic = true;
    const auto text = router.stats_export(request, &error);
    EXPECT_TRUE(text.has_value()) << error;
    return text.value_or("");
  };
  const std::string one = export_for(1);
  const std::string three = export_for(3);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, three);
}

}  // namespace
}  // namespace approxit::svc
