// Wire protocol v2 coverage: proto negotiation accepts 1..kProtoVersion
// and refuses the future loudly, op classification (including the v1
// stats_export alias and the submit stream split), and every typed
// payload (JobSpec / JobStatus / StatsSummary / events) survives a
// to_wire -> parse -> from_wire round trip byte-compatibly. Robustness:
// truncated and malformed lines fail decode instead of mis-parsing.
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "svc/protocol.h"
#include "svc/wire.h"

namespace approxit::svc {
namespace {

WireObject parsed(const std::string& line) {
  std::string error;
  const auto object = parse_wire_object(line, &error,
                                        /*allow_raw_nested=*/true);
  EXPECT_TRUE(object.has_value()) << error << " <- " << line;
  return object.value_or(WireObject{});
}

TEST(Proto, AcceptsV1AndV2RejectsFuture) {
  EXPECT_FALSE(check_proto(parsed(R"({"op":"status"})")).has_value());
  EXPECT_FALSE(check_proto(parsed(R"({"op":"status","proto":1})"))
                   .has_value());
  EXPECT_FALSE(check_proto(parsed(R"({"op":"status","proto":2})"))
                   .has_value());

  const auto future = check_proto(parsed(R"({"op":"status","proto":3})"));
  ASSERT_TRUE(future.has_value());
  EXPECT_NE(future->find("unsupported_proto"), std::string::npos);
  EXPECT_TRUE(check_proto(parsed(R"({"op":"status","proto":0})"))
                  .has_value());
  EXPECT_TRUE(check_proto(parsed(R"({"op":"status","proto":-1})"))
                  .has_value());
}

TEST(Proto, ClassifiesEveryOp) {
  EXPECT_EQ(classify_op(parsed(R"({"op":"hello"})")), OpKind::kHello);
  EXPECT_EQ(classify_op(parsed(R"({"op":"submit"})")), OpKind::kSubmit);
  EXPECT_EQ(classify_op(parsed(R"({"op":"submit","stream":true})")),
            OpKind::kSubmitStream);
  EXPECT_EQ(classify_op(parsed(R"({"op":"submit","stream":false})")),
            OpKind::kSubmit);
  EXPECT_EQ(classify_op(parsed(R"({"op":"status"})")), OpKind::kStatus);
  EXPECT_EQ(classify_op(parsed(R"({"op":"result"})")), OpKind::kResult);
  EXPECT_EQ(classify_op(parsed(R"({"op":"cancel"})")), OpKind::kCancel);
  EXPECT_EQ(classify_op(parsed(R"({"op":"forget"})")), OpKind::kForget);
  EXPECT_EQ(classify_op(parsed(R"({"op":"stats"})")), OpKind::kStats);
  // The v1 alias folds into the same op (format fold; DESIGN §12).
  EXPECT_EQ(classify_op(parsed(R"({"op":"stats_export"})")),
            OpKind::kStats);
  EXPECT_EQ(classify_op(parsed(R"({"op":"stream"})")), OpKind::kStream);
  EXPECT_EQ(classify_op(parsed(R"({"op":"shutdown"})")),
            OpKind::kShutdown);
  EXPECT_EQ(classify_op(parsed(R"({"op":"frobnicate"})")),
            OpKind::kUnknown);
  EXPECT_EQ(classify_op(parsed(R"({"id":4})")), OpKind::kUnknown);
}

TEST(Proto, JobSpecRoundTrip) {
  JobSpec spec;
  spec.tenant = "tenant-a";
  spec.app = "gmm";
  spec.dataset = "3cluster";
  spec.strategy = "aggressive";
  spec.max_iterations = 40;
  spec.characterization_iterations = 6;
  spec.deadline_ms = 125.5;
  spec.priority = 2;

  WireWriter writer;
  writer.field("op", "submit");
  job_spec_to_wire(spec, writer);
  const JobSpec decoded = job_spec_from_wire(parsed(writer.str()));
  EXPECT_EQ(decoded.tenant, spec.tenant);
  EXPECT_EQ(decoded.app, spec.app);
  EXPECT_EQ(decoded.dataset, spec.dataset);
  EXPECT_EQ(decoded.strategy, spec.strategy);
  EXPECT_EQ(decoded.max_iterations, spec.max_iterations);
  EXPECT_EQ(decoded.characterization_iterations,
            spec.characterization_iterations);
  EXPECT_EQ(decoded.deadline_ms, spec.deadline_ms);
  EXPECT_EQ(decoded.priority, spec.priority);
}

TEST(Proto, JobSpecAbsentFieldsKeepDefaults) {
  // The v1 rule: a minimal submit line decodes to JobSpec defaults.
  const JobSpec decoded = job_spec_from_wire(
      parsed(R"({"op":"submit","app":"gmm","dataset":"3cluster"})"));
  const JobSpec defaults;
  EXPECT_EQ(decoded.tenant, defaults.tenant);
  EXPECT_EQ(decoded.strategy, defaults.strategy);
  EXPECT_EQ(decoded.max_iterations, defaults.max_iterations);
  EXPECT_EQ(decoded.deadline_ms, defaults.deadline_ms);
  EXPECT_EQ(decoded.priority, defaults.priority);
}

JobStatus sample_status(bool with_report) {
  JobStatus status;
  status.id = 17;
  status.state = JobState::kDone;
  status.cache_hit = true;
  status.queue_ms = 1.25;
  status.run_ms = 33.5;
  status.characterization_ms = 4.75;
  status.degraded = true;
  status.attempts = 2;
  if (with_report) {
    status.report_json =
        R"({"method":"gmm_em","iterations":30,"trace":[1,2,3]})";
  }
  return status;
}

TEST(Proto, JobStatusRoundTripWithRawReport) {
  const JobStatus status = sample_status(/*with_report=*/true);
  WireWriter writer;
  writer.field("ok", true).field("op", "result");
  job_status_to_wire(status, /*include_report=*/true, writer);

  std::string error;
  const auto decoded = job_status_from_wire(parsed(writer.str()), &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->id, status.id);
  EXPECT_EQ(decoded->state, status.state);
  EXPECT_EQ(decoded->cache_hit, status.cache_hit);
  EXPECT_EQ(decoded->queue_ms, status.queue_ms);
  EXPECT_EQ(decoded->run_ms, status.run_ms);
  EXPECT_EQ(decoded->characterization_ms, status.characterization_ms);
  EXPECT_EQ(decoded->degraded, status.degraded);
  EXPECT_EQ(decoded->attempts, status.attempts);
  // The nested report payload travels VERBATIM — byte identity is what
  // the socket/stdin equivalence checks build on.
  EXPECT_EQ(decoded->report_json, status.report_json);
  EXPECT_TRUE(decoded->terminal());
}

TEST(Proto, JobStatusWithoutReportAndFailedError) {
  JobStatus status = sample_status(/*with_report=*/false);
  status.state = JobState::kFailed;
  status.error = "solver diverged";
  WireWriter writer;
  writer.field("ok", true).field("op", "status");
  job_status_to_wire(status, /*include_report=*/false, writer);

  const auto decoded = job_status_from_wire(parsed(writer.str()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->state, JobState::kFailed);
  EXPECT_EQ(decoded->error, "solver diverged");
  EXPECT_TRUE(decoded->report_json.empty());
}

TEST(Proto, JobStatusDecodeRejectsMissingFields) {
  std::string error;
  EXPECT_FALSE(job_status_from_wire(parsed(R"({"ok":true,"op":"status"})"),
                                    &error)
                   .has_value());
  EXPECT_FALSE(
      job_status_from_wire(
          parsed(R"({"ok":true,"id":3,"state":"no_such_state"})"), &error)
          .has_value());
}

TEST(Proto, JobStateNamesRoundTrip) {
  for (const JobState state :
       {JobState::kQueued, JobState::kRunning, JobState::kDone,
        JobState::kFailed, JobState::kCancelled,
        JobState::kDeadlineExceeded}) {
    const auto back = job_state_from_name(job_state_name(state));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, state);
  }
  EXPECT_FALSE(job_state_from_name("bogus").has_value());
}

TEST(Proto, StatsSummaryRoundTrip) {
  StatsSummary summary;
  summary.submitted = 10;
  summary.completed = 7;
  summary.failed = 1;
  summary.cancelled = 1;
  summary.deadline_exceeded = 1;
  summary.queued = 2;
  summary.running = 3;
  summary.rejected_queue_full = 4;
  summary.rejected_tenant_cap = 5;
  summary.rejected_bad_request = 6;
  summary.rejected_rate_limited = 7;
  summary.shed = 8;
  summary.degraded = 9;
  summary.retries = 10;
  summary.cache_hits = 11;
  summary.cache_misses = 12;
  summary.cache_disk_hits = 13;
  summary.cache_stores = 14;
  summary.cache_evictions = 15;
  summary.cache_quarantines = 16;
  summary.metrics_json = R"({"counters":{"svc.jobs":7}})";

  WireWriter writer;
  writer.field("ok", true).field("op", "stats");
  stats_summary_to_wire(summary, writer);
  const StatsSummary decoded = stats_summary_from_wire(parsed(writer.str()));
  EXPECT_EQ(decoded.submitted, summary.submitted);
  EXPECT_EQ(decoded.completed, summary.completed);
  EXPECT_EQ(decoded.failed, summary.failed);
  EXPECT_EQ(decoded.deadline_exceeded, summary.deadline_exceeded);
  EXPECT_EQ(decoded.rejected_rate_limited, summary.rejected_rate_limited);
  EXPECT_EQ(decoded.shed, summary.shed);
  EXPECT_EQ(decoded.retries, summary.retries);
  EXPECT_EQ(decoded.cache_quarantines, summary.cache_quarantines);
  EXPECT_EQ(decoded.metrics_json, summary.metrics_json);
}

TEST(Proto, HelloEventShape) {
  const std::string line = encode_hello_event();
  const WireObject object = parsed(line);
  EXPECT_TRUE(is_event_line(object));
  EXPECT_EQ(object.get_string("event"), "hello");
  EXPECT_EQ(object.get_int("proto", 0), kProtoVersion);
  EXPECT_EQ(object.get_string("service"), "approxit");

  const auto event = stream_event_from_wire(object);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->event, "hello");
  EXPECT_EQ(event->proto, kProtoVersion);
  EXPECT_FALSE(event->terminal());
  // Re-encoding a decoded hello reproduces the greeting byte-for-byte.
  EXPECT_EQ(encode_stream_event(*event), line);
}

TEST(Proto, LifecycleEventRoundTrip) {
  JobEvent progress;
  progress.kind = JobEvent::Kind::kProgress;
  progress.id = 9;
  progress.tenant = "t";
  progress.state = JobState::kRunning;
  progress.attempt = 1;
  progress.iteration = 24;
  progress.objective = 0.125;

  const std::string line = encode_job_event(progress);
  const WireObject object = parsed(line);
  EXPECT_TRUE(is_event_line(object));
  EXPECT_FALSE(object.has("ok"));  // Events and responses never mix keys.

  const auto event = stream_event_from_wire(object);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->event, "progress");
  EXPECT_EQ(event->id, 9u);
  EXPECT_EQ(event->tenant, "t");
  EXPECT_EQ(event->state, "running");
  EXPECT_EQ(event->attempt, 1u);
  EXPECT_EQ(event->iteration, 24u);
  EXPECT_EQ(event->objective, 0.125);
  EXPECT_EQ(encode_stream_event(*event), line);
}

TEST(Proto, TerminalEventCarriesFullStatus) {
  JobEvent terminal;
  terminal.kind = JobEvent::Kind::kTerminal;
  terminal.id = 17;
  terminal.tenant = "tenant-a";
  terminal.state = JobState::kDone;
  terminal.attempt = 1;
  const JobStatus status = sample_status(/*with_report=*/true);

  const std::string line = encode_terminal_event(terminal, status);
  const auto event = stream_event_from_wire(parsed(line));
  ASSERT_TRUE(event.has_value());
  EXPECT_TRUE(event->terminal());
  ASSERT_TRUE(event->status.has_value());
  EXPECT_EQ(event->status->id, status.id);
  EXPECT_EQ(event->status->state, JobState::kDone);
  EXPECT_EQ(event->status->report_json, status.report_json);
  EXPECT_EQ(encode_stream_event(*event), line);
}

TEST(Proto, EventDecodeRejectsMalformedLines) {
  std::string error;
  // No "event" key: a response, not an event.
  EXPECT_FALSE(
      stream_event_from_wire(parsed(R"({"ok":true,"op":"status"})"), &error)
          .has_value());
  // Terminal without a decodable status payload.
  EXPECT_FALSE(
      stream_event_from_wire(parsed(R"({"event":"terminal","id":1})"),
                             &error)
          .has_value());
}

TEST(Proto, TruncatedLinesFailParseNotMisparse) {
  const std::string whole = encode_terminal_event(
      JobEvent{JobEvent::Kind::kTerminal, 3, "t", JobState::kDone, 0, 0,
               0.0},
      sample_status(/*with_report=*/true));
  // Every strict prefix must fail to parse — truncation can never decode
  // to a DIFFERENT valid message.
  for (const std::size_t cut : {std::size_t{1}, whole.size() / 4,
                                whole.size() / 2, whole.size() - 1}) {
    std::string error;
    EXPECT_FALSE(parse_wire_object(whole.substr(0, cut), &error,
                                   /*allow_raw_nested=*/true)
                     .has_value())
        << "prefix length " << cut;
  }
}

TEST(Proto, ResponseHelpersShapes) {
  const std::string error_line = encode_error("submit", "queue_full");
  const WireObject error_object = parsed(error_line);
  EXPECT_FALSE(error_object.get_bool("ok", true));
  EXPECT_EQ(error_object.get_string("op"), "submit");
  EXPECT_EQ(error_object.get_string("error"), "queue_full");
  EXPECT_FALSE(is_event_line(error_object));

  // The v1 parse-error shape, byte-exact (compat-frozen).
  EXPECT_EQ(encode_parse_error("line too long"),
            R"({"ok":false,"error":"parse_error: line too long"})");

  const std::string status_line = encode_status_response(
      "result", sample_status(/*with_report=*/true), /*include_report=*/true);
  const WireObject status_object = parsed(status_line);
  EXPECT_TRUE(status_object.get_bool("ok", false));
  EXPECT_EQ(status_object.get_string("op"), "result");
  EXPECT_TRUE(status_object.has("report"));
}

}  // namespace
}  // namespace approxit::svc
