// Wire-format coverage: the flat JSON parser accepts exactly what the
// serving CLI documents (including escapes) and rejects everything else;
// WireWriter output parses back to the same values. Robustness: the line
// cap and the drain-without-buffering reader keep hostile input bounded.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "svc/wire.h"

namespace approxit::svc {
namespace {

TEST(WireParse, FlatObjectWithAllValueKinds) {
  const auto object = parse_wire_object(
      R"({"op":"submit","tenant":"t 1","max_iterations":40,)"
      R"("budget":0.25,"keep_trace":true,"negative":-7})");
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->get_string("op"), "submit");
  EXPECT_EQ(object->get_string("tenant"), "t 1");
  EXPECT_EQ(object->get_int("max_iterations", 0), 40);
  EXPECT_EQ(object->get_double("budget", 0.0), 0.25);
  EXPECT_TRUE(object->get_bool("keep_trace", false));
  EXPECT_EQ(object->get_int("negative", 0), -7);
  // Defaults for absent keys.
  EXPECT_EQ(object->get_string("missing", "fallback"), "fallback");
  EXPECT_EQ(object->get_int("missing", 9), 9);
  EXPECT_FALSE(object->has("missing"));
}

TEST(WireParse, EscapesAndWhitespace) {
  const auto object = parse_wire_object(
      "  { \"a\" : \"line\\nbreak \\\"quoted\\\" back\\\\slash\" , "
      "\"b\" : 2 }  ");
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->get_string("a"), "line\nbreak \"quoted\" back\\slash");
  EXPECT_EQ(object->get_int("b", 0), 2);

  const auto empty = parse_wire_object("{}");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->values().empty());
}

TEST(WireParse, UnicodeEscapesAreControlByteOnly) {
  // json_escape only ever emits \u00XX for control bytes; the parser
  // accepts exactly that.
  const auto object = parse_wire_object(R"({"a":"tab\u0009end"})");
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->get_string("a"), "tab\tend");

  std::string error;
  // Beyond one byte.
  EXPECT_FALSE(parse_wire_object(R"({"a":"\u0100"})", &error).has_value());
  // Non-hex digits — including a sign, which strtol would swallow.
  EXPECT_FALSE(parse_wire_object(R"({"a":"\u-012"})", &error).has_value());
  EXPECT_FALSE(parse_wire_object(R"({"a":"\u 041"})", &error).has_value());
  EXPECT_FALSE(parse_wire_object(R"({"a":"\u00gh"})", &error).has_value());
  // Truncated escape.
  EXPECT_FALSE(parse_wire_object(R"({"a":"\u00"})", &error).has_value());
}

TEST(WireParse, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_wire_object("", &error).has_value());
  EXPECT_FALSE(parse_wire_object("not json", &error).has_value());
  EXPECT_FALSE(parse_wire_object(R"({"a":1)", &error).has_value());
  EXPECT_FALSE(parse_wire_object(R"({"a" 1})", &error).has_value());
  EXPECT_FALSE(parse_wire_object(R"({"a":"unterminated})", &error)
                   .has_value());
  EXPECT_FALSE(parse_wire_object(R"({"a":1} trailing)", &error).has_value());
  // Nested values are out of contract, by design.
  EXPECT_FALSE(parse_wire_object(R"({"a":{"b":1}})", &error).has_value());
  EXPECT_EQ(error, "nested values are not supported");
  EXPECT_FALSE(parse_wire_object(R"({"a":[1,2]})", &error).has_value());
}

TEST(WireParse, QuotedNumbersStayStrings) {
  const auto object = parse_wire_object(R"({"a":"42","b":42})");
  ASSERT_TRUE(object.has_value());
  EXPECT_TRUE(object->values().at("a").quoted);
  EXPECT_FALSE(object->values().at("b").quoted);
  // get_int parses either representation.
  EXPECT_EQ(object->get_int("a", 0), 42);
  EXPECT_EQ(object->get_int("b", 0), 42);
}

TEST(WireWrite, RoundTripsThroughTheParser) {
  const std::string line = WireWriter()
                               .field("op", "status")
                               .field("id", static_cast<std::int64_t>(17))
                               .field("ratio", 0.5)
                               .field("ok", true)
                               .field("note", "a \"quoted\"\nvalue")
                               .str();
  const auto object = parse_wire_object(line);
  ASSERT_TRUE(object.has_value()) << line;
  EXPECT_EQ(object->get_string("op"), "status");
  EXPECT_EQ(object->get_int("id", 0), 17);
  EXPECT_EQ(object->get_double("ratio", 0.0), 0.5);
  EXPECT_TRUE(object->get_bool("ok", false));
  EXPECT_EQ(object->get_string("note"), "a \"quoted\"\nvalue");
}

TEST(WireParse, RejectsTrailingGarbageAfterTheObject) {
  std::string error;
  EXPECT_FALSE(parse_wire_object(R"({"a":1} x)", &error).has_value());
  EXPECT_EQ(error, "trailing characters after object");
  EXPECT_FALSE(parse_wire_object(R"({"a":1}{"b":2})", &error).has_value());
  // Trailing whitespace alone is fine.
  EXPECT_TRUE(parse_wire_object("{\"a\":1}  \t", &error).has_value());
}

TEST(WireParse, RejectsLinesOverTheCap) {
  // A syntactically VALID object that is simply too large must still be
  // rejected — the cap is a resource bound, not a syntax rule.
  std::string line = R"({"k":")";
  line.append(kMaxWireLine, 'a');
  line += "\"}";
  ASSERT_GT(line.size(), kMaxWireLine);
  std::string error;
  EXPECT_FALSE(parse_wire_object(line, &error).has_value());
  EXPECT_EQ(error, "line too long");
}

TEST(WireRead, ReadsLinesAndSignalsEof) {
  std::istringstream in("{\"a\":1}\nsecond\n");
  std::string line;
  bool overflow = true;
  EXPECT_TRUE(read_wire_line(in, line, &overflow));
  EXPECT_EQ(line, "{\"a\":1}");
  EXPECT_FALSE(overflow);
  EXPECT_TRUE(read_wire_line(in, line, &overflow));
  EXPECT_EQ(line, "second");
  EXPECT_FALSE(read_wire_line(in, line, &overflow));  // EOF, nothing read.
}

TEST(WireRead, FinalLineWithoutNewlineIsDelivered) {
  std::istringstream in("tail");
  std::string line;
  EXPECT_TRUE(read_wire_line(in, line));
  EXPECT_EQ(line, "tail");
  EXPECT_FALSE(read_wire_line(in, line));
}

TEST(WireRead, OversizedLineIsDrainedWithoutBuffering) {
  // One hostile 3x-over-cap line followed by a legitimate request: the
  // reader must cap what it buffers, flag the overflow, and stay aligned
  // so the NEXT line parses normally.
  constexpr std::size_t kCap = 16;
  std::string hostile(3 * kCap, 'x');
  std::istringstream in(hostile + "\n{\"op\":\"stats\"}\n");
  std::string line;
  bool overflow = false;
  EXPECT_TRUE(read_wire_line(in, line, &overflow, kCap));
  EXPECT_TRUE(overflow);
  EXPECT_LE(line.size(), kCap);  // Never ballooned past the cap.

  EXPECT_TRUE(read_wire_line(in, line, &overflow, kCap));
  EXPECT_FALSE(overflow);
  EXPECT_EQ(line, "{\"op\":\"stats\"}");
  const auto object = parse_wire_object(line);
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->get_string("op"), "stats");
  EXPECT_FALSE(read_wire_line(in, line, &overflow, kCap));
}

TEST(WireWrite, RawEmbedsNestedJsonVerbatim) {
  const std::string line = WireWriter()
                               .field("ok", true)
                               .raw("report", R"({"iterations":12})")
                               .str();
  EXPECT_EQ(line, R"({"ok":true,"report":{"iterations":12}})");
}

}  // namespace
}  // namespace approxit::svc
