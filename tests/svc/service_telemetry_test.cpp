// Telemetry-plane semantics of the serving runtime: byte-identical metric
// exports for any worker count, empty idle deltas, exact reconciliation of
// per-tenant counters against per-job reports under a chaos-seeded burst,
// one causal trace lane per job, and tenant aggregates that survive
// retention eviction.
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "svc/runtime.h"

namespace approxit::svc {
namespace {

JobSpec quick_job(const std::string& tenant = "default",
                  const std::string& dataset = "3cluster",
                  const std::string& strategy = "incremental") {
  JobSpec spec;
  spec.tenant = tenant;
  spec.app = "gmm";
  spec.dataset = dataset;
  spec.strategy = strategy;
  spec.max_iterations = 30;
  spec.characterization_iterations = 4;
  return spec;
}

ServiceConfig memory_only(std::size_t threads) {
  ServiceConfig config;
  config.threads = threads;
  config.cache.directory.clear();
  return config;
}

TEST(ServiceTelemetry, ExportFullByteIdenticalAcrossWorkerCounts) {
  // The ISSUE's exporter-determinism invariant: the same job set exported
  // from a 1-, 4- and 8-worker runtime must produce byte-identical
  // documents in both formats — collect_metrics() merges in a fixed order
  // regardless of completion order.
  const std::vector<JobSpec> jobs = {
      quick_job("alice", "3cluster", "incremental"),
      quick_job("alice", "3cluster", "adaptive"),
      quick_job("bob", "3d3cluster", "incremental"),
      quick_job("bob", "3cluster", "accurate"),
      quick_job("carol", "3cluster", "level1"),
  };

  std::vector<std::string> prometheus_docs;
  std::vector<std::string> jsonl_docs;
  for (const std::size_t workers : {1u, 4u, 8u}) {
    ServiceRuntime runtime(memory_only(workers));
    std::vector<std::uint64_t> ids;
    for (const JobSpec& spec : jobs) {
      const auto id = runtime.submit(spec);
      ASSERT_TRUE(id.has_value());
      ids.push_back(*id);
    }
    for (const std::uint64_t id : ids) ASSERT_TRUE(runtime.wait(id));

    obs::MetricsRegistry merged;
    runtime.collect_metrics(merged);
    obs::MetricsExporter exporter;
    prometheus_docs.push_back(exporter.export_full(
        merged, obs::MetricsExporter::Format::kPrometheus));
    jsonl_docs.push_back(exporter.export_full(
        merged, obs::MetricsExporter::Format::kJsonLines));
  }
  EXPECT_EQ(prometheus_docs[0], prometheus_docs[1]);
  EXPECT_EQ(prometheus_docs[0], prometheus_docs[2]);
  EXPECT_EQ(jsonl_docs[0], jsonl_docs[1]);
  EXPECT_EQ(jsonl_docs[0], jsonl_docs[2]);
  // The documents actually carry the per-tenant series.
  EXPECT_NE(
      prometheus_docs[0].find("approxit_svc_tenant_jobs{tenant=\"alice\"}"),
      std::string::npos);
}

TEST(ServiceTelemetry, IdleDeltaScrapeIsEmpty) {
  ServiceRuntime runtime(memory_only(2));
  const auto id = runtime.submit(quick_job());
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(runtime.wait(*id));

  obs::MetricsExporter exporter;
  obs::MetricsRegistry merged;
  runtime.collect_metrics(merged);
  const std::string first =
      exporter.export_delta(merged, obs::MetricsExporter::Format::kJsonLines);
  EXPECT_FALSE(first.empty());

  // No traffic since the last scrape: the delta must be the empty string,
  // scrape after scrape.
  for (int i = 0; i < 3; ++i) {
    obs::MetricsRegistry again;
    runtime.collect_metrics(again);
    EXPECT_EQ(exporter.export_delta(again,
                                    obs::MetricsExporter::Format::kJsonLines),
              "");
  }
}

/// Shared burst driver: submits `total` jobs round-robin across three
/// tenants (some with tight deadlines), waits for all of them, and returns
/// the terminal snapshots keyed by id.
std::map<std::uint64_t, JobSnapshot> run_burst(ServiceRuntime& runtime,
                                               int total) {
  const char* tenants[3] = {"alice", "bob", "carol"};
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < total; ++i) {
    JobSpec spec = quick_job(tenants[i % 3]);
    if (i % 7 == 3) spec.deadline_ms = 0.5;  // Practically instant expiry.
    if (i % 5 == 0) spec.priority = 1;
    std::string error;
    const auto id = runtime.submit(spec, &error);
    EXPECT_TRUE(id.has_value()) << error;
    if (id.has_value()) ids.push_back(*id);
  }
  std::map<std::uint64_t, JobSnapshot> snapshots;
  for (const std::uint64_t id : ids) {
    EXPECT_TRUE(runtime.wait(id));
    const auto snapshot = runtime.result(id);
    EXPECT_TRUE(snapshot.has_value());
    if (snapshot.has_value()) snapshots[id] = *snapshot;
  }
  return snapshots;
}

TEST(ServiceTelemetry, ChaosBurstTenantCountersReconcileWithReports) {
  // 48-job chaos-seeded burst: whatever mixture of done / failed /
  // deadline_exceeded the chaos engine produces, the exported per-tenant
  // counters must reconcile EXACTLY (zero drift) with the per-job
  // RunReports.
  ServiceConfig config = memory_only(4);
  config.qos.max_retries = 2;
  config.qos.degrade_watermark = 4;  // Burst depth exceeds this: some
                                     // jobs admit degraded.
  config.chaos.enabled = true;
  config.chaos.seed = 0xbeef;
  config.chaos.crash_probability = 0.15;
  config.chaos.stall_probability = 0.2;
  config.chaos.stall_ms = 1.0;
  ServiceRuntime runtime(config);

  const auto snapshots = run_burst(runtime, 48);
  ASSERT_EQ(snapshots.size(), 48u);

  // Ground truth from the job stream itself.
  std::map<std::string, double> jobs_per_tenant;
  std::map<std::string, double> iterations_per_tenant;
  std::map<std::string, double> converged_per_tenant;
  std::map<std::string, double> degraded_per_tenant;
  std::map<std::string, std::map<std::string, double>> terminal_per_tenant;
  double degraded_total = 0.0;
  for (const auto& [id, snapshot] : snapshots) {
    const std::string& tenant = snapshot.spec.tenant;
    jobs_per_tenant[tenant] += 1.0;
    iterations_per_tenant[tenant] +=
        static_cast<double>(snapshot.report.iterations);
    if (snapshot.report.converged) converged_per_tenant[tenant] += 1.0;
    if (snapshot.degraded) {
      degraded_per_tenant[tenant] += 1.0;
      degraded_total += 1.0;
    }
    terminal_per_tenant[tenant]
                       [std::string(job_state_name(snapshot.state))] += 1.0;
  }
  EXPECT_GT(degraded_total, 0.0) << "watermark never tripped";

  obs::MetricsRegistry merged;
  runtime.collect_metrics(merged);
  const std::map<std::string, double> counters = merged.counter_values();
  const auto counter_or_zero = [&](const std::string& name) {
    const auto it = counters.find(name);
    return it == counters.end() ? 0.0 : it->second;
  };

  for (const auto& [tenant, expected_jobs] : jobs_per_tenant) {
    EXPECT_EQ(counter_or_zero(
                  obs::labeled("svc.tenant.jobs", {{"tenant", tenant}})),
              expected_jobs)
        << tenant;
    EXPECT_EQ(counter_or_zero(obs::labeled("svc.tenant.iterations",
                                           {{"tenant", tenant}})),
              iterations_per_tenant[tenant])
        << tenant;
    EXPECT_EQ(counter_or_zero(obs::labeled("svc.tenant.converged",
                                           {{"tenant", tenant}})),
              converged_per_tenant[tenant])
        << tenant;
    EXPECT_EQ(counter_or_zero(obs::labeled("svc.tenant.degraded",
                                           {{"tenant", tenant}})),
              degraded_per_tenant[tenant])
        << tenant;
    for (const auto& [state, count] : terminal_per_tenant[tenant]) {
      EXPECT_EQ(counter_or_zero(obs::labeled(
                    "svc.tenant.terminal",
                    {{"state", state}, {"tenant", tenant}})),
                count)
          << tenant << "/" << state;
    }
  }
  // The service-level QoS counters agree with the same ground truth.
  EXPECT_EQ(counter_or_zero("svc.degraded.jobs"), degraded_total);
  EXPECT_EQ(counter_or_zero("svc.shed.overload"), 0.0);  // No shed mark.

  // The scorecard saw every terminal job exactly once. (scorecard()
  // returns a copy: bind it before iterating.)
  const obs::QualityScorecard scorecard = runtime.scorecard();
  std::size_t scored = 0;
  for (const auto& [tenant, score] : scorecard.tenants()) {
    scored += score.jobs;
    EXPECT_EQ(static_cast<double>(score.jobs), jobs_per_tenant[tenant])
        << tenant;
  }
  EXPECT_EQ(scored, 48u);
  EXPECT_NE(runtime.scorecard_json().find("\"alice\""), std::string::npos);
}

TEST(ServiceTelemetry, ShedCounterReconcilesWithRejections) {
  ServiceConfig config = memory_only(1);
  config.start_paused = true;  // Nothing drains: admission deterministic.
  config.qos.shed_watermark = 3;
  ServiceRuntime runtime(config);

  double shed = 0.0;
  std::vector<std::uint64_t> admitted;
  for (int i = 0; i < 8; ++i) {
    std::string error;
    const auto id = runtime.submit(quick_job("alice"), &error);
    if (id.has_value()) {
      admitted.push_back(*id);
    } else {
      EXPECT_EQ(error, "shed_overload");
      shed += 1.0;
    }
  }
  EXPECT_GT(shed, 0.0);

  runtime.resume();
  for (const std::uint64_t id : admitted) EXPECT_TRUE(runtime.wait(id));

  obs::MetricsRegistry merged;
  runtime.collect_metrics(merged);
  const auto counters = merged.counter_values();
  EXPECT_EQ(counters.at("svc.shed.overload"), shed);
  EXPECT_EQ(counters.at(obs::labeled("svc.tenant.jobs", {{"tenant",
                                                          "alice"}})),
            static_cast<double>(admitted.size()));
}

TEST(ServiceTelemetry, EveryJobGetsACompleteCausalTraceLane) {
  // One Chrome-trace lane per job: submit -> cache event -> (iterations
  // when it ran) -> terminal cause, all on lane job_lane(id), all tagged
  // with the job id.
  obs::RingSink ring(1 << 20);
  obs::set_trace_sink(&ring);

  ServiceConfig config = memory_only(4);
  config.chaos.enabled = true;
  config.chaos.seed = 0xf00d;
  config.chaos.crash_probability = 0.1;
  config.qos.max_retries = 2;
  ServiceRuntime runtime(config);
  const auto snapshots = run_burst(runtime, 48);
  obs::set_trace_sink(nullptr);
  ASSERT_EQ(snapshots.size(), 48u);

  struct LaneSummary {
    bool submit = false;
    bool cache_event = false;
    bool iteration = false;
    bool terminal = false;
    std::string terminal_state;
  };
  std::map<std::uint32_t, LaneSummary> lanes;
  for (const obs::TraceEvent& event : ring.snapshot()) {
    LaneSummary& lane = lanes[event.lane];
    if (event.category == "svc" && event.name == "submit") {
      lane.submit = true;
    } else if (event.category == "svc" && (event.name == "cache_hit" ||
                                           event.name == "cache_miss")) {
      lane.cache_event = true;
    } else if (event.category == "session" && event.name == "iteration") {
      lane.iteration = true;
    } else if (event.category == "svc" && event.name == "terminal") {
      lane.terminal = true;
      for (const obs::TraceArg& a : event.args) {
        if (a.key == "state") lane.terminal_state = a.value;
      }
    }
  }
  EXPECT_EQ(ring.dropped(), 0u);

  for (const auto& [id, snapshot] : snapshots) {
    const std::uint32_t lane_id = ServiceRuntime::job_lane(id);
    ASSERT_TRUE(lanes.count(lane_id)) << "no lane for job " << id;
    const LaneSummary& lane = lanes.at(lane_id);
    EXPECT_TRUE(lane.submit) << id;
    EXPECT_TRUE(lane.terminal) << id;
    EXPECT_EQ(lane.terminal_state, job_state_name(snapshot.state)) << id;
    // A job that actually ran (reached the online stage) has both a cache
    // resolution and iterations on its lane; a queued death (expired
    // before scheduling) legitimately has neither.
    if (snapshot.report.iterations > 0) {
      EXPECT_TRUE(lane.cache_event) << id;
      EXPECT_TRUE(lane.iteration) << id;
    }
  }
}

TEST(ServiceTelemetry, TenantAggregatesSurviveRetentionAndForget) {
  ServiceConfig config = memory_only(2);
  config.retain_terminal = 2;
  ServiceRuntime runtime(config);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    const auto id = runtime.submit(quick_job(i % 2 == 0 ? "even" : "odd"));
    ASSERT_TRUE(id.has_value());
    ids.push_back(*id);
  }
  runtime.wait_idle();
  // Retention already evicted the oldest jobs; their tenant series must
  // still be complete in the export.
  EXPECT_FALSE(runtime.status(ids[0]).has_value());
  runtime.forget(ids.back());

  obs::MetricsRegistry merged;
  runtime.collect_metrics(merged);
  const auto counters = merged.counter_values();
  EXPECT_EQ(counters.at(obs::labeled("svc.tenant.jobs", {{"tenant", "even"}})),
            3.0);
  EXPECT_EQ(counters.at(obs::labeled("svc.tenant.jobs", {{"tenant", "odd"}})),
            3.0);

  // And the exported document still names both tenants.
  obs::MetricsExporter exporter;
  const std::string text = exporter.export_full(
      merged, obs::MetricsExporter::Format::kPrometheus);
  EXPECT_NE(text.find("tenant=\"even\""), std::string::npos);
  EXPECT_NE(text.find("tenant=\"odd\""), std::string::npos);
}

TEST(ServiceTelemetry, QueueDepthGaugeAndLatencyHistogramsExported) {
  ServiceRuntime runtime(memory_only(2));
  const auto snapshots = run_burst(runtime, 6);
  ASSERT_EQ(snapshots.size(), 6u);

  obs::MetricsRegistry operational;
  operational.merge(runtime.timing_metrics());
  const auto gauges = operational.gauge_values();
  ASSERT_TRUE(gauges.count("svc.queue.depth"));
  EXPECT_EQ(gauges.at("svc.queue.depth"), 0.0);  // Drained.

  const auto histograms = operational.histogram_values();
  double latency_count = 0.0;
  for (const auto& [name, histogram] : histograms) {
    const obs::ParsedMetricName parsed = obs::parse_metric_name(name);
    if (parsed.base == "svc.tenant.latency_ms") {
      latency_count += static_cast<double>(histogram.count());
      EXPECT_TRUE(parsed.labels.count("tenant")) << name;
    }
  }
  EXPECT_EQ(latency_count, 6.0);
}

}  // namespace
}  // namespace approxit::svc
