// ProfileCache invariants: byte-identical round-trips, key sensitivity,
// LRU bounds with a durable disk tier, collision safety, and single-flight
// get_or_compute under contention.
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/autoregression.h"
#include "arith/alu.h"
#include "core/characterization.h"
#include "la/matrix.h"
#include "obs/metrics.h"
#include "opt/gradient_descent.h"
#include "opt/problem.h"
#include "svc/chaos.h"
#include "svc/profile_cache.h"
#include "util/rng.h"

namespace approxit::svc {
namespace {

const opt::QuadraticProblem& quadratic() {
  static const opt::QuadraticProblem problem(
      la::Matrix{{4.0, 1.0}, {1.0, 3.0}}, {1.0, 2.0});
  return problem;
}

std::unique_ptr<opt::GradientDescentSolver> make_method(
    std::size_t max_iter = 200) {
  opt::GdConfig config;
  config.step_size = 0.2;
  config.tolerance = 1e-12;
  config.max_iter = max_iter;
  return std::make_unique<opt::GradientDescentSolver>(
      quadratic(), std::vector<double>{0.0, 0.0}, config);
}

core::CharacterizationOptions fast_options() {
  core::CharacterizationOptions options;
  options.iterations = 6;
  return options;
}

/// A real (small) profile so serialization sees realistic values.
core::ModeCharacterization sample_profile(arith::QcsAlu& alu) {
  auto method = make_method();
  return core::characterize(*method, alu, fast_options());
}

core::CharacterizationKey key_for(const arith::QcsAlu& alu,
                                  const std::string& tag) {
  auto method = make_method();
  return core::characterization_cache_key(*method, alu, fast_options(), tag);
}

std::string fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("profile_cache_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(ProfileCacheSerialization, RoundTripIsByteIdentical) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "quadratic");

  const std::string text = ProfileCache::serialize(key, profile);
  const auto restored = ProfileCache::deserialize(text, key);
  ASSERT_TRUE(restored.has_value());

  // Field-exact (EXPECT_EQ on doubles is bitwise for non-NaN values)...
  EXPECT_EQ(restored->iterations_characterized,
            profile.iterations_characterized);
  EXPECT_EQ(restored->objective_scale, profile.objective_scale);
  EXPECT_EQ(restored->initial_improvement, profile.initial_improvement);
  EXPECT_EQ(restored->quality_error, profile.quality_error);
  EXPECT_EQ(restored->worst_quality_error, profile.worst_quality_error);
  EXPECT_EQ(restored->state_error, profile.state_error);
  EXPECT_EQ(restored->worst_state_error, profile.worst_state_error);
  EXPECT_EQ(restored->abs_state_error, profile.abs_state_error);
  EXPECT_EQ(restored->energy_per_op, profile.energy_per_op);
  EXPECT_EQ(restored->angle_samples, profile.angle_samples);
  // ...and the re-serialization is byte-identical.
  EXPECT_EQ(ProfileCache::serialize(key, *restored), text);
}

TEST(ProfileCacheSerialization, RejectsMalformedAndForeignText) {
  arith::QcsAlu alu;
  const core::CharacterizationKey key = key_for(alu, "quadratic");
  EXPECT_FALSE(ProfileCache::deserialize("", key).has_value());
  EXPECT_FALSE(ProfileCache::deserialize("not a profile\n", key).has_value());

  const core::ModeCharacterization profile = sample_profile(alu);
  std::string text = ProfileCache::serialize(key, profile);
  // A profile stored under a DIFFERENT key must not deserialize under ours.
  const core::CharacterizationKey other = key_for(alu, "other-workload");
  EXPECT_FALSE(ProfileCache::deserialize(text, other).has_value());
  // Truncation is rejected.
  text.resize(text.size() / 2);
  EXPECT_FALSE(ProfileCache::deserialize(text, key).has_value());
}

TEST(ProfileCacheKey, SensitiveToEveryInput) {
  arith::QcsAlu alu;
  arith::QcsAlu ar_alu(apps::ar_qcs_config());
  auto method = make_method();
  auto longer_method = make_method(500);
  const core::CharacterizationOptions options = fast_options();

  const core::CharacterizationKey base =
      core::characterization_cache_key(*method, alu, options, "tag");

  // Deterministic: same inputs, same key.
  EXPECT_EQ(core::characterization_cache_key(*method, alu, options, "tag"),
            base);

  // Each input perturbs the key.
  EXPECT_NE(
      core::characterization_cache_key(*method, alu, options, "other"),
      base);
  EXPECT_NE(
      core::characterization_cache_key(*longer_method, alu, options, "tag"),
      base);
  EXPECT_NE(
      core::characterization_cache_key(*method, ar_alu, options, "tag"),
      base);
  core::CharacterizationOptions more = options;
  more.iterations = options.iterations + 1;
  EXPECT_NE(core::characterization_cache_key(*method, alu, more, "tag"),
            base);
  core::CharacterizationOptions drift = options;
  drift.resynchronize = false;
  EXPECT_NE(core::characterization_cache_key(*method, alu, drift, "tag"),
            base);

  // threads is excluded: the result is thread-invariant.
  core::CharacterizationOptions threaded = options;
  threaded.threads = 8;
  EXPECT_EQ(core::characterization_cache_key(*method, alu, threaded, "tag"),
            base);
}

TEST(ProfileCacheLru, EvictsLeastRecentAtCapacity) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  ProfileCacheConfig config;
  config.capacity = 2;
  config.directory.clear();  // Memory-only: evictions are real losses.
  ProfileCache cache(config);

  const core::CharacterizationKey a = key_for(alu, "a");
  const core::CharacterizationKey b = key_for(alu, "b");
  const core::CharacterizationKey c = key_for(alu, "c");
  cache.store(a, profile);
  cache.store(b, profile);
  // Touch `a` so `b` becomes least-recent.
  EXPECT_TRUE(cache.load(a).has_value());
  cache.store(c, profile);

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.load(a).has_value());
  EXPECT_TRUE(cache.load(c).has_value());
  EXPECT_FALSE(cache.load(b).has_value());
}

TEST(ProfileCacheLru, EvictedEntriesReloadFromDisk) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  ProfileCacheConfig config;
  config.capacity = 1;
  config.directory = fresh_dir("reload");
  ProfileCache cache(config);

  const core::CharacterizationKey a = key_for(alu, "a");
  const core::CharacterizationKey b = key_for(alu, "b");
  cache.store(a, profile);
  cache.store(b, profile);  // Evicts a from memory; disk copy remains.
  EXPECT_EQ(cache.size(), 1u);

  const auto reloaded = cache.load(a);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  EXPECT_EQ(ProfileCache::serialize(a, *reloaded),
            ProfileCache::serialize(a, profile));
}

TEST(ProfileCacheDisk, WarmRestartServesFromDisk) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "restart");
  ProfileCacheConfig config;
  config.directory = fresh_dir("restart");

  {
    ProfileCache cold(config);
    cold.store(key, profile);
    ASSERT_TRUE(std::filesystem::exists(cold.disk_path(key)));
  }

  ProfileCache warm(config);  // Simulated process restart.
  const auto loaded = warm.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(warm.stats().hits, 1u);
  EXPECT_EQ(warm.stats().disk_hits, 1u);
  EXPECT_EQ(ProfileCache::serialize(key, *loaded),
            ProfileCache::serialize(key, profile));
}

TEST(ProfileCacheDisk, HashCollisionDegradesToMiss) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "victim");
  ProfileCacheConfig config;
  config.directory = fresh_dir("collision");
  ProfileCache cache(config);
  cache.store(key, profile);

  // Same 64-bit hash, different description — what a real collision
  // looks like to the cache. Memory and disk must both refuse.
  core::CharacterizationKey forged;
  forged.hash = key.hash;
  forged.description = key.description + "|forged";
  EXPECT_FALSE(cache.load(forged).has_value());

  ProfileCache fresh(config);  // Disk tier alone.
  EXPECT_FALSE(fresh.load(forged).has_value());
}

TEST(ProfileCacheLru, CollisionAdmitDisplacesInsteadOfCorrupting) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "victim");
  ProfileCacheConfig config;
  config.directory.clear();  // Memory-only: the displaced key must MISS.
  ProfileCache cache(config);
  cache.store(key, profile);

  core::CharacterizationKey forged;
  forged.hash = key.hash;
  forged.description = key.description + "|forged";
  core::ModeCharacterization other = profile;
  other.objective_scale += 1.0;
  cache.store(forged, other);

  // The colliding store adopts the slot wholesale: the forged key reads
  // back its own profile...
  const auto hit = cache.load(forged);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->objective_scale, other.objective_scale);
  // ...and the displaced key degrades to a miss — never the other key's
  // profile under the stale description.
  EXPECT_FALSE(cache.load(key).has_value());
}

TEST(ProfileCacheSerialization, RejectsOversizedAngleSampleCount) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "oversized");
  std::string text = ProfileCache::serialize(key, profile);

  // Corrupt the sample count to a value that cannot fit in the input;
  // deserialize must degrade to nullopt, not reserve/throw.
  const std::string needle = "angle_samples ";
  const std::size_t pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  const std::size_t eol = text.find('\n', pos);
  text.replace(pos + needle.size(), eol - (pos + needle.size()),
               "18446744073709551615");
  EXPECT_FALSE(ProfileCache::deserialize(text, key).has_value());
}

TEST(ProfileCacheSingleFlight, ConcurrentRequestsComputeOnce) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "contended");
  ProfileCacheConfig config;
  config.directory.clear();
  ProfileCache cache(config);

  constexpr int kThreads = 8;
  std::atomic<int> computations{0};
  std::vector<std::string> serialized(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const core::ModeCharacterization result = cache.get_or_compute(
          key, [&] {
            ++computations;
            // Hold the in-flight window open so peers actually wait.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            return profile;
          });
      serialized[i] = ProfileCache::serialize(key, result);
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(computations.load(), 1);
  const ProfileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::size_t>(kThreads - 1));
  for (const std::string& text : serialized) {
    EXPECT_EQ(text, serialized[0]);
  }
}

TEST(ProfileCacheSingleFlight, CollidingKeysDoNotShareAFlight) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "inflight-victim");
  core::CharacterizationKey forged;
  forged.hash = key.hash;
  forged.description = key.description + "|forged";
  core::ModeCharacterization other = profile;
  other.objective_scale += 1.0;

  ProfileCacheConfig config;
  config.directory.clear();
  ProfileCache cache(config);

  // Hold a flight open for `key`; a concurrent request for the COLLIDING
  // key must run its own compute, not wait and adopt the wrong profile.
  std::atomic<bool> started{false};
  std::thread slow([&] {
    cache.get_or_compute(key, [&] {
      started = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      return profile;
    });
  });
  while (!started) std::this_thread::yield();

  bool hit = true;
  const core::ModeCharacterization result =
      cache.get_or_compute(forged, [&] { return other; }, &hit);
  slow.join();
  EXPECT_FALSE(hit);  // Own compute, not a single-flight wait.
  EXPECT_EQ(result.objective_scale, other.objective_scale);
}

TEST(ProfileCacheSingleFlight, ComputeFailurePropagatesAndClears) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "flaky");
  ProfileCacheConfig config;
  config.directory.clear();
  ProfileCache cache(config);

  EXPECT_THROW(
      cache.get_or_compute(
          key,
          [&]() -> core::ModeCharacterization {
            throw std::runtime_error("characterization failed");
          }),
      std::runtime_error);

  // The in-flight slot is released: the next call computes normally.
  bool hit = true;
  const core::ModeCharacterization result =
      cache.get_or_compute(key, [&] { return profile; }, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(ProfileCache::serialize(key, result),
            ProfileCache::serialize(key, profile));
}

TEST(ProfileCacheSerialization, ChecksumTrailerValidatesTheWholeEntry) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "checksummed");
  const std::string text = ProfileCache::serialize(key, profile);

  EXPECT_EQ(text.rfind("approxit-profile v2\n", 0), 0u);
  EXPECT_NE(text.find("\nchecksum "), std::string::npos);
  EXPECT_TRUE(ProfileCache::validate(text));

  // Trailing garbage after the terminator is rejected.
  EXPECT_FALSE(ProfileCache::validate(text + "extra\n"));
  EXPECT_FALSE(ProfileCache::deserialize(text + "extra\n", key).has_value());
}

TEST(ProfileCacheSerialization, EveryTruncationIsRejected) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "truncated");
  const std::string text = ProfileCache::serialize(key, profile);

  // A torn write can stop at ANY byte: every strict prefix must fail both
  // the full deserialize and the structural validate.
  for (std::size_t length = 0; length < text.size(); ++length) {
    const std::string prefix = text.substr(0, length);
    EXPECT_FALSE(ProfileCache::deserialize(prefix, key).has_value())
        << "prefix length " << length;
    EXPECT_FALSE(ProfileCache::validate(prefix))
        << "prefix length " << length;
  }
}

TEST(ProfileCacheSerialization, EverySingleBitFlipIsRejected) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "bitflipped");
  const std::string text = ProfileCache::serialize(key, profile);

  // Seeded corpus of single-bit corruptions. The checksum trailer covers
  // every byte before it, and a flip INSIDE the trailer breaks the stored
  // value itself, so no flip anywhere may survive validation.
  util::Rng rng(0xb17f11b5);
  for (int trial = 0; trial < 256; ++trial) {
    const std::size_t byte =
        static_cast<std::size_t>(rng.uniform() * text.size()) % text.size();
    const int bit = static_cast<int>(rng.uniform() * 8.0) % 8;
    std::string corrupt = text;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
    EXPECT_FALSE(ProfileCache::validate(corrupt))
        << "byte " << byte << " bit " << bit;
    EXPECT_FALSE(ProfileCache::deserialize(corrupt, key).has_value())
        << "byte " << byte << " bit " << bit;
  }
}

TEST(ProfileCacheDisk, CorruptFileIsQuarantinedOnLookup) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "quarantine");
  ProfileCacheConfig config;
  config.directory = fresh_dir("quarantine");
  {
    ProfileCache writer(config);
    writer.store(key, profile);
  }

  ProfileCache cache(config);  // Fresh LRU: the next load goes to disk.
  const std::string path = cache.disk_path(key);
  corrupt_file_byte(path);

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().quarantines, 1u);
  // Moved aside, not deleted: post-mortem evidence survives.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::is_empty(cache.quarantine_dir()));
  // The slot is now a plain miss, not a repeat quarantine.
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().quarantines, 1u);
}

TEST(ProfileCacheDisk, StaleButValidFileIsAMissNotAQuarantine) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "stale");
  ProfileCacheConfig config;
  config.directory = fresh_dir("stale");
  ProfileCache cache(config);
  cache.store(key, profile);

  // A colliding key finds a VALID file with a foreign description: that
  // is corrupt-vs-stale triage — miss, file untouched, no quarantine.
  core::CharacterizationKey forged;
  forged.hash = key.hash;
  forged.description = key.description + "|forged";
  ProfileCache fresh(config);
  EXPECT_FALSE(fresh.load(forged).has_value());
  EXPECT_EQ(fresh.stats().quarantines, 0u);
  EXPECT_TRUE(std::filesystem::exists(fresh.disk_path(key)));
}

TEST(ProfileCacheDisk, ScrubSweepsCorruptAndTornFiles) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "scrub");
  ProfileCacheConfig config;
  config.directory = fresh_dir("scrub");
  config.scrub_on_start = false;  // Scrub explicitly, observe the report.
  ProfileCache cache(config);
  cache.store(key, profile);

  const auto write_file = [](const std::filesystem::path& path,
                             const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    out << content;
  };
  const std::filesystem::path dir(config.directory);
  write_file(dir / "junk.profile", "not a profile at all\n");
  // A torn tmp file is what a writer crash between write and rename
  // leaves behind.
  write_file(dir / "torn.profile.tmp",
             ProfileCache::serialize(key, profile).substr(0, 40));

  const ScrubReport report = cache.scrub();
  EXPECT_EQ(report.scanned, 2u);  // The valid entry and the junk.
  EXPECT_EQ(report.ok, 1u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.stale_tmp, 1u);

  EXPECT_TRUE(std::filesystem::exists(cache.disk_path(key)));
  EXPECT_FALSE(std::filesystem::exists(dir / "junk.profile"));
  EXPECT_FALSE(std::filesystem::exists(dir / "torn.profile.tmp"));
  EXPECT_EQ(cache.stats().quarantines, 2u);
}

TEST(ProfileCacheDisk, StartupScrubClearsTornWritesBeforeServing) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "startup");
  ProfileCacheConfig config;
  config.directory = fresh_dir("startup");
  std::string path;
  {
    ProfileCache writer(config);
    writer.store(key, profile);
    path = writer.disk_path(key);
  }
  // Crash simulation: the entry's bytes were half-written.
  const std::string full = ProfileCache::serialize(key, profile);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full.substr(0, full.size() / 2);
  }

  ProfileCache restarted(config);  // scrub_on_start is the default.
  EXPECT_EQ(restarted.stats().quarantines, 1u);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(restarted.load(key).has_value());  // Clean miss.
  // The slot is reusable: a fresh store round-trips again.
  restarted.store(key, profile);
  EXPECT_TRUE(ProfileCache(config).load(key).has_value());
}

TEST(ProfileCacheSerialization, LegacyV1FilesAreStillAccepted) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "legacy");
  const std::string v2 = ProfileCache::serialize(key, profile);

  // A v1 file is the v2 layout minus the checksum trailer.
  std::string v1 = v2;
  const std::size_t version_end = v1.find('\n');
  ASSERT_NE(version_end, std::string::npos);
  v1.replace(0, version_end, "approxit-profile v1");
  const std::size_t checksum = v1.find("checksum ");
  ASSERT_NE(checksum, std::string::npos);
  v1.erase(checksum, v1.find('\n', checksum) - checksum + 1);

  EXPECT_TRUE(ProfileCache::validate(v1));
  const auto restored = ProfileCache::deserialize(v1, key);
  ASSERT_TRUE(restored.has_value());
  // Upgrading re-serializes to checksummed v2, byte-identically.
  EXPECT_EQ(ProfileCache::serialize(key, *restored), v2);
}

TEST(ProfileCacheDisk, AfterPersistHookSeesTheFinalPath) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  const core::CharacterizationKey key = key_for(alu, "hooked");
  ProfileCacheConfig config;
  config.directory = fresh_dir("hooked");
  std::vector<std::string> persisted;
  config.after_persist = [&persisted](const std::string& path) {
    persisted.push_back(path);
  };
  ProfileCache cache(config);
  cache.store(key, profile);
  ASSERT_EQ(persisted.size(), 1u);
  EXPECT_EQ(persisted[0], cache.disk_path(key));
  EXPECT_TRUE(std::filesystem::exists(persisted[0]));
}

TEST(ProfileCacheMetrics, CountersMirrorStats) {
  arith::QcsAlu alu;
  const core::ModeCharacterization profile = sample_profile(alu);
  obs::MetricsRegistry registry;
  ProfileCacheConfig config;
  config.directory.clear();
  ProfileCache cache(config, &registry);

  const core::CharacterizationKey key = key_for(alu, "metered");
  EXPECT_FALSE(cache.load(key).has_value());
  cache.store(key, profile);
  EXPECT_TRUE(cache.load(key).has_value());

  const auto counters = registry.counter_values();
  EXPECT_EQ(counters.at("svc.profile_cache.miss"), 1.0);
  EXPECT_EQ(counters.at("svc.profile_cache.store"), 1.0);
  EXPECT_EQ(counters.at("svc.profile_cache.hit"), 1.0);
}

}  // namespace
}  // namespace approxit::svc
