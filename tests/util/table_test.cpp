#include "util/table.h"

#include <gtest/gtest.h>

namespace approxit::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t;
  t.set_header({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW({ const auto s = t.render(); (void)s; });
}

TEST(Table, SeparatorNotCountedAsRow) {
  Table t;
  t.set_header({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, AlignmentRightPadsLeft) {
  Table t;
  t.set_header({"col", "num"});
  t.add_row({"r", "7"});
  const std::string out = t.render();
  // "num" column is right-aligned: the 7 should appear at the column's right
  // edge, i.e. preceded by spaces.
  EXPECT_NE(out.find("  7"), std::string::npos);
}

TEST(FormatHelpers, Significant) {
  EXPECT_EQ(format_sig(0.051341, 3), "0.0513");
  EXPECT_EQ(format_sig(126.0, 3), "126");
  EXPECT_EQ(format_sig(4.431, 3), "4.43");
}

TEST(FormatHelpers, Fixed) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(FormatHelpers, Percent) {
  EXPECT_EQ(format_percent(0.524, 1), "52.4%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(FormatHelpers, NonFinite) {
  EXPECT_EQ(format_sig(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_sig(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_fixed(-std::numeric_limits<double>::infinity()), "-inf");
}

}  // namespace
}  // namespace approxit::util
