#include "util/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace approxit::util {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesFieldsWithSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvJoin, JoinsWithCommas) {
  EXPECT_EQ(csv_join({"a", "b,c", "d"}), "a,\"b,c\",d");
  EXPECT_EQ(csv_join({}), "");
}

TEST(CsvWriter, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "/approxit_csv_test.csv";
  {
    CsvWriter writer(path);
    writer.write_row({"x", "y"});
    writer.write_row_numeric({1.5, -2.0});
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "x,y\n1.5,-2\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zzz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace approxit::util
