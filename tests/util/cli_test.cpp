#include "util/cli.h"

#include <gtest/gtest.h>

namespace approxit::util {
namespace {

CliParser make_parser() {
  CliParser p("test program");
  p.add_flag("name", "default", "a string flag");
  p.add_flag("count", "10", "an integer flag");
  p.add_flag("rate", "0.5", "a double flag");
  p.add_flag("verbose", "false", "a boolean flag");
  return p;
}

TEST(CliParser, DefaultsApply) {
  CliParser p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_string("name"), "default");
  EXPECT_EQ(p.get_int("count"), 10);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.5);
  EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(CliParser, EqualsSyntax) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--name=abc", "--count=42", "--rate=1.25"};
  ASSERT_TRUE(p.parse(4, argv));
  EXPECT_EQ(p.get_string("name"), "abc");
  EXPECT_EQ(p.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 1.25);
}

TEST(CliParser, SpaceSyntax) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--name", "xyz", "--count", "7"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.get_string("name"), "xyz");
  EXPECT_EQ(p.get_int("count"), 7);
}

TEST(CliParser, BareBooleanFlag) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(CliParser, PositionalArguments) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "input.txt", "--count=3", "output.txt"};
  ASSERT_TRUE(p.parse(4, argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.txt");
  EXPECT_EQ(p.positional()[1], "output.txt");
}

TEST(CliParser, UnknownFlagThrows) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(CliParser, BadIntThrows) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--count=abc"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_THROW(p.get_int("count"), std::invalid_argument);
}

TEST(CliParser, BadDoubleThrows) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--rate=1.5x"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_THROW(p.get_double("rate"), std::invalid_argument);
}

TEST(CliParser, BadBoolThrows) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--verbose=maybe"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_THROW(p.get_bool("verbose"), std::invalid_argument);
}

TEST(CliParser, UnregisteredGetterThrows) {
  CliParser p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_THROW(p.get_string("missing"), std::invalid_argument);
}

TEST(CliParser, HelpReturnsFalse) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--help"};
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(p.parse(2, argv));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("--count"), std::string::npos);
}

TEST(CliParser, UsageListsFlagsAndDefaults) {
  CliParser p = make_parser();
  const std::string usage = p.usage("prog");
  EXPECT_NE(usage.find("--rate"), std::string::npos);
  EXPECT_NE(usage.find("0.5"), std::string::npos);
}

}  // namespace
}  // namespace approxit::util
