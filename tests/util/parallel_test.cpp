// Tests for the work-pool helper behind parallel sweeps: exact index
// coverage at any thread count, serial inlining, exception propagation,
// and the APPROXIT_THREADS override.
#include "util/parallel.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace approxit::util {
namespace {

TEST(ParallelFor, EveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    for (std::size_t count : {0u, 1u, 7u, 100u}) {
      std::vector<std::atomic<int>> hits(count);
      parallel_for(count, threads, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ParallelFor, SerialRunsInline) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(5);
  parallel_for(seen.size(), 1, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, CallingThreadParticipates) {
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> caller_worked{false};
  // Helper threads park on their first index until the caller has run one,
  // so the caller cannot lose the race for the whole range. The deadline
  // turns a regression (caller never enters the loop) into a failure
  // instead of a hang.
  parallel_for(64, 4, [&](std::size_t) {
    if (std::this_thread::get_id() == caller) {
      caller_worked = true;
    } else {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (!caller_worked.load() &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    }
  });
  EXPECT_TRUE(caller_worked.load());
}

TEST(ParallelFor, LowestIndexExceptionWins) {
  try {
    parallel_for(50, 4, [](std::size_t i) {
      if (i == 7 || i == 23) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 7");
  }
}

TEST(ParallelFor, SerialExceptionPropagates) {
  EXPECT_THROW(
      parallel_for(3, 1, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
}

TEST(DefaultThreadCount, RespectsEnvOverride) {
  setenv("APPROXIT_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3u);
  setenv("APPROXIT_THREADS", "0", 1);
  EXPECT_GE(default_thread_count(), 1u);
  setenv("APPROXIT_THREADS", "garbage", 1);
  EXPECT_GE(default_thread_count(), 1u);
  unsetenv("APPROXIT_THREADS");
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace approxit::util
