#include "util/stats.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace approxit::util {
namespace {

TEST(RunningStats, EmptyIsNeutral) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0, 5.0};
  for (double v : values) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);  // unbiased
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(2.5));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(static_cast<double>(i)) * 10.0;
    (i < 20 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), mean_before);
}

TEST(Stats, MeanVariance) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> v = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(v), 5.0);
}

TEST(Stats, CorrelationPerfect) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  for (double& v : y) v = -v;
  EXPECT_NEAR(correlation(x, y), -1.0, 1e-12);
}

TEST(Stats, CorrelationDegenerate) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(correlation(x, y), 0.0);
  EXPECT_DOUBLE_EQ(correlation(x, {}), 0.0);
}

TEST(Stats, HistogramClampsOutliers) {
  const std::vector<double> v = {-1.0, 0.1, 0.5, 0.9, 2.0};
  const auto h = histogram(v, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2u);  // -1 clamped into bin 0, plus 0.1
  EXPECT_EQ(h[1], 3u);  // 0.5, 0.9, and 2.0 clamped into bin 1
  std::size_t total = 0;
  for (auto c : h) total += c;
  EXPECT_EQ(total, v.size());
}

TEST(Stats, HistogramEdgeCases) {
  EXPECT_TRUE(histogram({}, 0.0, 1.0, 0).empty());
  const auto h = histogram({{0.5}}, 1.0, 1.0, 4);  // empty range
  EXPECT_EQ(h.size(), 4u);
}

TEST(BucketHistogram, EmptyAndInvalidLayout) {
  BucketHistogram empty;
  empty.add(1.0);  // no-op on the degenerate layout
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.quantile(50.0), 0.0);
  EXPECT_THROW(BucketHistogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(BucketHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(BucketHistogram, QuantilesMatchExactPercentileOnUniformGrid) {
  // 0..99 into 100 unit buckets: interpolation is exact, so p50/p90/p99
  // must agree with the sorted-sample percentile helper.
  BucketHistogram h(0.0, 100.0, 100);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i));
    values.push_back(static_cast<double>(i));
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.p50(), percentile(values, 50.0), 1.0);
  EXPECT_NEAR(h.p90(), percentile(values, 90.0), 1.0);
  EXPECT_NEAR(h.p99(), percentile(values, 99.0), 1.0);
  // Quantiles never escape the observed range.
  EXPECT_GE(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(100.0), 99.0);
}

TEST(BucketHistogram, QuantileClampsToObservedMinMax) {
  BucketHistogram h(0.0, 10.0, 2);  // coarse buckets, tight observations
  h.add(4.0);
  h.add(4.5);
  EXPECT_GE(h.p99(), 4.0);
  EXPECT_LE(h.p99(), 4.5);
  EXPECT_GE(h.p50(), 4.0);
  EXPECT_LE(h.p50(), 4.5);
}

TEST(BucketHistogram, MergeIsAssociativeOnCountsAndQuantiles) {
  // (a⊕b)⊕c and a⊕(b⊕c) must agree exactly on bucket counts, min/max and
  // therefore on every quantile — the parallel sweep reduction relies on
  // this when arm registries merge in arm order.
  const auto make = [](int seed) {
    BucketHistogram h(0.0, 50.0, 25);
    for (int i = 0; i < 40; ++i) {
      h.add(static_cast<double>((seed * 17 + i * 7) % 50));
    }
    return h;
  };
  const BucketHistogram a = make(1), b = make(2), c = make(3);

  BucketHistogram left = a;
  left.merge(b);
  left.merge(c);
  BucketHistogram bc = b;
  bc.merge(c);
  BucketHistogram right = a;
  right.merge(bc);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.buckets(), right.buckets());
  EXPECT_DOUBLE_EQ(left.stats().min(), right.stats().min());
  EXPECT_DOUBLE_EQ(left.stats().max(), right.stats().max());
  for (double p : {50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(left.quantile(p), right.quantile(p)) << p;
  }
}

TEST(BucketHistogram, MergeRejectsMismatchedLayouts) {
  BucketHistogram a(0.0, 1.0, 4);
  BucketHistogram b(0.0, 2.0, 4);
  EXPECT_FALSE(a.same_layout(b));
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

}  // namespace
}  // namespace approxit::util
