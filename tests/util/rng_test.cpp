#include "util/rng.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace approxit::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, KnownFirstValue) {
  // Reference value from the public-domain splitmix64 implementation.
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xE220A8397B1DCDAFULL);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformU64BoundAndCoverage) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform_u64(10);
    ASSERT_LT(v, 10u);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int c : seen) {
    EXPECT_GT(c, 800);  // near-uniform
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(rng.gaussian());
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.variance(), 1.0, 0.03);
}

TEST(Rng, GaussianAffine) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(rng.gaussian(10.0, 2.0));
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(21);
  Rng f1 = parent.fork(0);
  Rng f2 = parent.fork(0);
  EXPECT_EQ(f1.next_u64(), f2.next_u64());

  Rng g1 = parent.fork(1);
  EXPECT_NE(f1.next_u64(), g1.next_u64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(33), b(33);
  (void)a.fork(5);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace approxit::util
