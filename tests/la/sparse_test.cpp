// Differential suite for the sparse CSR datapath (la/sparse.h).
//
// The routed SpMV must be bit-identical to the per-row ctx.dot reference
// across all five adder families and widths 8..53, to the scalar fold
// (batching off), across SIMD tiers, and across shard AND thread counts;
// fault-injecting decorators must see the exact per-op stream of the
// serial reference. Construction edge cases (empty rows, dangling
// columns, single-element rows, duplicate triplets, transpose views) ride
// along.
#include "la/sparse.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arith/approx_adders.h"
#include "arith/exact_adders.h"
#include "arith/fault_injector.h"
#include "arith/simd_kernels.h"
#include "la/matrix.h"
#include "util/rng.h"

namespace approxit::la {
namespace {

using arith::ApproxMode;

/// Raw IEEE bits (EXPECT_EQ on doubles treats -0.0 == 0.0; we test bytes).
std::uint64_t bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

void expect_bitwise_equal(std::span<const double> a,
                          std::span<const double> b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(bits(a[i]), bits(b[i])) << label << " row " << i << ": "
                                      << a[i] << " vs " << b[i];
  }
}

/// Test matrix with deliberate edge shapes: every 7th row empty, every
/// 5th row a single entry, the last column never referenced (dangling),
/// one row longer than the 256-entry chain block.
CsrMatrix make_test_csr(std::size_t rows, std::size_t cols,
                        std::uint64_t seed, double scale = 1.0) {
  util::Rng rng(seed);
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < rows; ++r) {
    if (r % 7 == 3) continue;  // empty row
    const std::size_t want = r == 1 ? 300  // spills past one chain block
                             : r % 5 == 0 ? 1
                                          : 2 + rng.uniform_u64(6);
    for (std::size_t k = 0; k < want; ++k) {
      const std::size_t c = rng.uniform_u64(cols - 1);  // col cols-1 dangling
      triplets.push_back(
          {r, c, scale * (0.125 + rng.uniform(0.0, 1.0))});
    }
  }
  return CsrMatrix::from_triplets(rows, cols, std::move(triplets));
}

std::vector<double> make_x(std::size_t cols, std::uint64_t seed,
                           double scale = 1.0) {
  util::Rng rng(seed);
  std::vector<double> x(cols);
  for (double& v : x) v = scale * (0.0625 + rng.uniform(0.0, 1.0));
  return x;
}

/// A QcsAlu whose four approximate levels use one family at decreasing
/// cuts, accurate slot exact. family: 0 gda, 1 loa, 2 trunc, 3 etaI,
/// 4 etaII.
arith::QcsAlu make_family_alu(int family, unsigned width) {
  const arith::QFormat format{width, width / 2};
  const auto cut = [&](unsigned div) -> unsigned {
    return std::max(1u, width / div);
  };
  const std::array<unsigned, 4> cuts = {cut(2), cut(3), cut(4), cut(6)};
  std::array<arith::AdderPtr, arith::kNumModes> bank;
  for (std::size_t level = 0; level < 4; ++level) {
    const unsigned k = cuts[level];
    switch (family) {
      case 0:
        bank[level] = std::make_shared<arith::GdaAdder>(width, k);
        break;
      case 1:
        bank[level] = std::make_shared<arith::LowerOrAdder>(width, k);
        break;
      case 2:
        bank[level] = std::make_shared<arith::TruncatedAdder>(width, k);
        break;
      case 3:
        bank[level] = std::make_shared<arith::EtaIAdder>(width, k);
        break;
      default:
        bank[level] = std::make_shared<arith::EtaIIAdder>(width, k + 1);
        break;
    }
  }
  bank[4] = std::make_shared<arith::RippleCarryAdder>(width);
  return arith::QcsAlu(format, bank);
}

/// Reference: per row, gather x at the stored columns and fold through
/// ctx.dot — the semantics spmv_into promises.
void reference_spmv(const CsrMatrix& m, arith::ArithContext& ctx,
                    std::span<const double> x, std::span<double> y) {
  std::vector<double> gathered;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto cols = m.row_cols(r);
    if (cols.empty()) {
      y[r] = 0.0;
      continue;
    }
    gathered.resize(cols.size());
    for (std::size_t i = 0; i < cols.size(); ++i) gathered[i] = x[cols[i]];
    y[r] = ctx.dot(m.row_values(r), gathered);
  }
}

// --- construction ----------------------------------------------------------

TEST(CsrMatrix, FromTripletsSortsAndMergesDuplicates) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      3, 4,
      {{2, 1, 5.0}, {0, 3, 1.0}, {0, 0, 2.0}, {2, 1, 0.5}, {1, 2, -1.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nnz(), 4u);  // the (2,1) duplicate merged
  EXPECT_EQ(m.max_row_nnz(), 2u);
  const Matrix dense = m.to_dense();
  EXPECT_EQ(dense(0, 0), 2.0);
  EXPECT_EQ(dense(0, 3), 1.0);
  EXPECT_EQ(dense(1, 2), -1.0);
  EXPECT_EQ(dense(2, 1), 5.5);
  // Columns strictly increasing within each row.
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto cols = m.row_cols(r);
    for (std::size_t i = 1; i < cols.size(); ++i) {
      EXPECT_LT(cols[i - 1], cols[i]);
    }
  }
}

TEST(CsrMatrix, FromTripletsRejectsOutOfRange) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{0, 2, 1.0}}),
               std::invalid_argument);
}

TEST(CsrMatrix, FromPartsValidates) {
  // Well-formed.
  EXPECT_NO_THROW(CsrMatrix::from_parts(2, 3, {0, 2, 3}, {0, 2, 1},
                                        {1.0, 2.0, 3.0}));
  // row_ptr must start at 0, end at nnz, be non-decreasing.
  EXPECT_THROW(
      CsrMatrix::from_parts(2, 3, {1, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0}),
      std::invalid_argument);
  EXPECT_THROW(
      CsrMatrix::from_parts(2, 3, {0, 3, 2}, {0, 2, 1}, {1.0, 2.0, 3.0}),
      std::invalid_argument);
  // Columns strictly increasing within a row and in range.
  EXPECT_THROW(
      CsrMatrix::from_parts(2, 3, {0, 2, 3}, {2, 0, 1}, {1.0, 2.0, 3.0}),
      std::invalid_argument);
  EXPECT_THROW(
      CsrMatrix::from_parts(2, 3, {0, 2, 3}, {0, 3, 1}, {1.0, 2.0, 3.0}),
      std::invalid_argument);
}

TEST(CsrMatrix, TransposedMatchesDenseTranspose) {
  const CsrMatrix m = make_test_csr(23, 17, 0xabc1);
  const CsrMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), m.cols());
  EXPECT_EQ(t.cols(), m.rows());
  EXPECT_EQ(t.nnz(), m.nnz());
  const Matrix td = t.to_dense();
  const Matrix md = m.to_dense();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_EQ(md(r, c), td(c, r));
    }
  }
}

TEST(CsrMatrix, TransposeViewRequiresBuild) {
  CsrMatrix m = make_test_csr(12, 9, 0xabc2);
  arith::ExactContext exact;
  SpmvWorkspace ws;
  std::vector<double> x(m.rows(), 1.0), y(m.cols(), 0.0);
  EXPECT_THROW(m.spmv_transposed_into(exact, ws, x, y), std::logic_error);
  EXPECT_THROW(m.matvec_transposed(x, y), std::logic_error);
  m.build_transpose();
  EXPECT_TRUE(m.has_transpose());
  EXPECT_NO_THROW(m.spmv_transposed_into(exact, ws, x, y));
}

// --- exact kernels ---------------------------------------------------------

TEST(CsrMatrix, ExactMatvecMatchesDenseBitwise) {
  // Positive entries and operands keep every partial sum away from the
  // -0.0 + 0.0 corner, so skipping the dense zeros is the bitwise
  // identity.
  const CsrMatrix m = make_test_csr(41, 29, 0xd1ff);
  const Matrix dense = m.to_dense();
  const std::vector<double> x = make_x(29, 0xd1fe);
  std::vector<double> ys(m.rows(), -1.0), yd(m.rows(), -2.0);
  m.matvec(x, ys);
  dense.matvec(x, yd);
  expect_bitwise_equal(ys, yd, "sparse vs dense matvec");
}

TEST(CsrMatrix, ExactSpmvIntoMatchesMatvec) {
  CsrMatrix m = make_test_csr(37, 31, 0xd2ff);
  const std::vector<double> x = make_x(31, 0xd2fe);
  std::vector<double> y_ref(m.rows(), 0.0);
  m.matvec(x, y_ref);
  arith::ExactContext exact;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    SpmvWorkspace ws(SpmvOptions{.shards = shards, .threads = 1});
    std::vector<double> y(m.rows(), -1.0);
    m.spmv_into(exact, ws, x, y);
    expect_bitwise_equal(y, y_ref, "exact spmv_into vs matvec");
  }
}

// --- routed SpMV differential ----------------------------------------------

TEST(SparseSpmv, AllFamiliesAllWidthsMatchPerRowDot) {
  const CsrMatrix m = make_test_csr(40, 32, 0x5fa1, /*scale=*/0.25);
  const std::vector<double> x = make_x(32, 0x5fa2, /*scale=*/0.25);
  std::vector<double> y(m.rows(), 0.0), y_ref(m.rows(), 0.0);
  SpmvWorkspace ws;
  for (unsigned width = 8; width <= 53; ++width) {
    for (int family = 0; family < 5; ++family) {
      arith::QcsAlu alu = make_family_alu(family, width);
      for (const ApproxMode mode : arith::kAllModes) {
        alu.set_mode(mode);
        alu.reset_ledger();
        m.spmv_into(alu, ws, x, y);
        EXPECT_EQ(alu.ledger().total_ops(), m.nnz());

        const std::unique_ptr<arith::QcsAlu> ref = alu.clone_fresh();
        reference_spmv(m, *ref, x, y_ref);
        ASSERT_NO_FATAL_FAILURE(expect_bitwise_equal(
            y, y_ref, "routed spmv vs per-row ctx.dot"))
            << "family " << family << " width " << width << " mode "
            << static_cast<int>(mode);
        EXPECT_EQ(ref->ledger().total_ops(), m.nnz());
      }
    }
  }
}

TEST(SparseSpmv, FusedMatchesScalarFoldAndLedger) {
  const CsrMatrix m = make_test_csr(50, 40, 0x5fb1, 0.25);
  const std::vector<double> x = make_x(40, 0x5fb2, 0.25);
  arith::QcsAlu fused_alu;
  fused_alu.set_mode(ApproxMode::kLevel2);
  const std::unique_ptr<arith::QcsAlu> scalar_alu = fused_alu.clone_fresh();
  scalar_alu->set_batching(false);

  SpmvWorkspace ws_fused, ws_scalar;
  std::vector<double> y_fused(m.rows()), y_scalar(m.rows());
  m.spmv_into(fused_alu, ws_fused, x, y_fused);
  m.spmv_into(*scalar_alu, ws_scalar, x, y_scalar);
  expect_bitwise_equal(y_fused, y_scalar, "fused vs scalar fold");
  EXPECT_EQ(fused_alu.ledger().total_ops(),
            scalar_alu->ledger().total_ops());
  // Energy totals agree up to FP summation grouping (the fused path
  // records one batched total per chain, the scalar path one per op).
  EXPECT_NEAR(fused_alu.ledger().total_energy(),
              scalar_alu->ledger().total_energy(),
              1e-12 * scalar_alu->ledger().total_energy());
}

TEST(SparseSpmv, EmptyRowsWriteZeroWithNoOps) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      4, 4, {{1, 2, 0.5}, {3, 0, 0.25}, {3, 1, 0.125}});
  arith::QcsAlu alu;
  alu.set_mode(ApproxMode::kLevel1);
  SpmvWorkspace ws;
  std::vector<double> x = {0.5, 0.25, 0.75, 1.0};
  std::vector<double> y(4, -7.0);
  m.spmv_into(alu, ws, x, y);
  EXPECT_EQ(bits(y[0]), bits(0.0));  // empty row overwrites stale output
  EXPECT_EQ(bits(y[2]), bits(0.0));
  EXPECT_EQ(alu.ledger().total_ops(), 3u);  // one per stored entry only
}

TEST(SparseSpmv, ShardCountInvariance) {
  const CsrMatrix m = make_test_csr(120, 90, 0x5fc1, 0.25);
  const std::vector<double> x = make_x(90, 0x5fc2, 0.25);
  arith::QcsAlu base;
  base.set_mode(ApproxMode::kLevel3);
  SpmvWorkspace ws1;
  std::vector<double> y1(m.rows());
  m.spmv_into(base, ws1, x, y1);
  const std::size_t ops1 = base.ledger().total_ops();

  for (const std::size_t shards :
       {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    arith::QcsAlu alu;
    alu.set_mode(ApproxMode::kLevel3);
    SpmvWorkspace ws(SpmvOptions{.shards = shards, .threads = 1});
    std::vector<double> y(m.rows());
    m.spmv_into(alu, ws, x, y);
    ASSERT_NO_FATAL_FAILURE(
        expect_bitwise_equal(y, y1, "shard-count invariance"))
        << shards << " shards";
    EXPECT_EQ(alu.ledger().total_ops(), ops1) << shards << " shards";
    EXPECT_NEAR(alu.ledger().total_energy(), base.ledger().total_energy(),
                1e-9 * base.ledger().total_energy());
  }
}

TEST(SparseSpmv, ThreadCountInvarianceIsByteIdentical) {
  const CsrMatrix m = make_test_csr(160, 120, 0x5fd1, 0.25);
  const std::vector<double> x = make_x(120, 0x5fd2, 0.25);

  // Reference: 8 shards on 1 thread.
  std::vector<double> y_ref;
  double energy_ref = 0.0;
  std::size_t ops_ref = 0;
  std::map<std::string, double> counters_ref;

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    arith::QcsAlu alu;
    alu.set_mode(ApproxMode::kLevel2);
    obs::MetricsRegistry registry;
    alu.set_metrics(&registry);
    SpmvWorkspace ws(SpmvOptions{.shards = 8, .threads = threads});
    std::vector<double> y(m.rows());
    m.spmv_into(alu, ws, x, y);
    if (threads == 1) {
      y_ref = y;
      energy_ref = alu.ledger().total_energy();
      ops_ref = alu.ledger().total_ops();
      counters_ref = registry.counter_values();
      continue;
    }
    ASSERT_NO_FATAL_FAILURE(
        expect_bitwise_equal(y, y_ref, "thread-count invariance"))
        << threads << " threads";
    // Fixed shard plan + shard-id-order merges: the LEDGER and METRICS
    // aggregates are bit-identical too, not merely close.
    EXPECT_EQ(bits(alu.ledger().total_energy()), bits(energy_ref))
        << threads << " threads";
    EXPECT_EQ(alu.ledger().total_ops(), ops_ref);
    EXPECT_EQ(registry.counter_values(), counters_ref)
        << threads << " threads";
  }
}

TEST(SparseSpmv, TransposedViewMatchesTransposedCopy) {
  CsrMatrix m = make_test_csr(30, 44, 0x5fe1, 0.25);
  m.build_transpose();
  const CsrMatrix t = m.transposed();
  const std::vector<double> x = make_x(30, 0x5fe2, 0.25);

  arith::QcsAlu alu_view, alu_copy;
  alu_view.set_mode(ApproxMode::kLevel2);
  alu_copy.set_mode(ApproxMode::kLevel2);
  SpmvWorkspace ws_view, ws_copy;
  std::vector<double> y_view(m.cols()), y_copy(t.rows());
  m.spmv_transposed_into(alu_view, ws_view, x, y_view);
  t.spmv_into(alu_copy, ws_copy, x, y_copy);
  expect_bitwise_equal(y_view, y_copy, "transpose view vs copy");
  EXPECT_EQ(alu_view.ledger().total_ops(), alu_copy.ledger().total_ops());
}

TEST(SparseSpmv, FaultDecoratorFallsBackToSerialPerOpStream) {
  const CsrMatrix m = make_test_csr(25, 20, 0x5ff1, 0.25);
  const std::vector<double> x = make_x(20, 0x5ff2, 0.25);
  const arith::FaultConfig fault =
      arith::FaultConfig::uniform_approximate(0.2, 0x7357);

  arith::FaultyQcsAlu alu(fault);
  alu.set_mode(ApproxMode::kLevel1);
  // Sharding must be refused: per-op interception requires the caller's
  // context, serially, in row order.
  SpmvWorkspace ws(SpmvOptions{.shards = 4, .threads = 4});
  std::vector<double> y(m.rows());
  m.spmv_into(alu, ws, x, y);

  // Reference: identical fault stream on a fresh identically-seeded
  // decorator, rows in order, one accumulate per row (every test row is
  // shorter than the 256-entry chain block).
  ASSERT_LE(m.max_row_nnz(), 256u);
  arith::FaultyQcsAlu ref(fault);
  ref.set_mode(ApproxMode::kLevel1);
  std::vector<double> y_ref(m.rows());
  std::vector<double> products;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto cols = m.row_cols(r);
    const auto vals = m.row_values(r);
    if (cols.empty()) {
      y_ref[r] = 0.0;
      continue;
    }
    products.resize(cols.size());
    for (std::size_t i = 0; i < cols.size(); ++i) {
      products[i] = vals[i] * x[cols[i]];
    }
    y_ref[r] = ref.accumulate(products);
  }
  expect_bitwise_equal(y, y_ref, "faulty spmv vs serial reference");
  EXPECT_EQ(alu.fault_ledger().total_ops, ref.fault_ledger().total_ops);
  EXPECT_EQ(alu.fault_ledger().injected(), ref.fault_ledger().injected());
}

TEST(SparseSpmv, SparseCountersPosted) {
  const CsrMatrix m = make_test_csr(60, 45, 0x6fa1, 0.25);
  const std::vector<double> x = make_x(45, 0x6fa2, 0.25);

  arith::QcsAlu serial;
  serial.set_mode(ApproxMode::kLevel2);
  obs::MetricsRegistry serial_registry;
  serial.set_metrics(&serial_registry);
  SpmvWorkspace ws_serial;
  std::vector<double> y(m.rows());
  m.spmv_into(serial, ws_serial, x, y);
  m.spmv_into(serial, ws_serial, x, y);
  const auto serial_counters = serial_registry.counter_values();
  EXPECT_EQ(serial_counters.at("alu.sparse.rows"), 2.0 * m.rows());
  EXPECT_EQ(serial_counters.at("alu.sparse.nnz"), 2.0 * m.nnz());

  // Sharded: per-shard registries merge in shard order; the per-mode op
  // counters must equal the serial run's.
  arith::QcsAlu sharded;
  sharded.set_mode(ApproxMode::kLevel2);
  obs::MetricsRegistry sharded_registry;
  sharded.set_metrics(&sharded_registry);
  SpmvWorkspace ws_sharded(SpmvOptions{.shards = 4, .threads = 2});
  m.spmv_into(sharded, ws_sharded, x, y);
  m.spmv_into(sharded, ws_sharded, x, y);
  const auto sharded_counters = sharded_registry.counter_values();
  EXPECT_EQ(sharded_counters.at("alu.sparse.rows"), 2.0 * m.rows());
  EXPECT_EQ(sharded_counters.at("alu.sparse.nnz"), 2.0 * m.nnz());
  EXPECT_EQ(sharded_counters.at("alu.ops.level2"),
            serial_counters.at("alu.ops.level2"));
}

TEST(SparseSpmv, TierInvariance) {
  const CsrMatrix m = make_test_csr(35, 28, 0x6fb1, 0.25);
  const std::vector<double> x = make_x(28, 0x6fb2, 0.25);
  std::vector<std::vector<double>> results;
  std::vector<arith::simd::Tier> tiers = {arith::simd::Tier::kPortable};
  if (arith::simd::detected_tier() != arith::simd::Tier::kPortable) {
    tiers.push_back(arith::simd::detected_tier());
  }
  for (const auto tier : tiers) {
    arith::simd::set_tier_override(tier);
    arith::QcsAlu alu;
    alu.set_mode(ApproxMode::kLevel1);
    SpmvWorkspace ws;
    std::vector<double> y(m.rows());
    m.spmv_into(alu, ws, x, y);
    results.push_back(std::move(y));
  }
  arith::simd::set_tier_override(std::nullopt);
  for (std::size_t i = 1; i < results.size(); ++i) {
    expect_bitwise_equal(results[i], results[0], "tier invariance");
  }
}

TEST(SpmvWorkspace, ShardPlanIsNnzBalancedAndFixed) {
  const CsrMatrix m = make_test_csr(200, 64, 0x6fc1);
  arith::ExactContext exact;
  SpmvWorkspace ws(SpmvOptions{.shards = 4, .threads = 1});
  std::vector<double> x(m.cols(), 1.0), y(m.rows());
  m.spmv_into(exact, ws, x, y);
  const auto bounds = ws.shard_bounds();
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), m.rows());
  // Contiguous, non-decreasing, and roughly nnz-balanced.
  const auto row_ptr = m.row_ptr();
  for (std::size_t s = 0; s < 4; ++s) {
    ASSERT_LE(bounds[s], bounds[s + 1]);
    const std::size_t shard_nnz = row_ptr[bounds[s + 1]] - row_ptr[bounds[s]];
    EXPECT_LE(shard_nnz, m.nnz() / 2) << "shard " << s;
  }
}

}  // namespace
}  // namespace approxit::la
