#include "la/matrix.h"

#include <gtest/gtest.h>

namespace approxit::la {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), 7.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_THROW(m.row(5), std::out_of_range);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(id.trace(), 3.0);
}

TEST(Matrix, MatvecMatchesManual) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<double> x = {1.0, -1.0};
  const auto y = m.matvec(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(Matrix, MatvecTransposed) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const auto y = m.matvec_transposed(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
}

TEST(Matrix, MatvecDimensionMismatchThrows) {
  Matrix m(2, 3);
  const std::vector<double> bad = {1.0, 2.0};
  EXPECT_THROW(m.matvec(bad), std::invalid_argument);
  const std::vector<double> bad_t = {1.0, 2.0, 3.0};
  EXPECT_THROW(m.matvec_transposed(bad_t), std::invalid_argument);
}

TEST(Matrix, MultiplyAgainstIdentity) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.multiply(Matrix::identity(2)), m);
  EXPECT_EQ(Matrix::identity(2).multiply(m), m);
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), -3.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  EXPECT_THROW(a + Matrix(3, 2), std::invalid_argument);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Matrix, RowSpanIsMutable) {
  Matrix m(2, 2, 0.0);
  auto row = m.row(1);
  row[0] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
}

TEST(Matrix, ToStringContainsValues) {
  Matrix m{{1.5, 2.5}};
  const std::string s = m.to_string();
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

}  // namespace
}  // namespace approxit::la
