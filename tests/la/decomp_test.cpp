#include "la/decomp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace approxit::la {
namespace {

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = rng.uniform(-1.0, 1.0);
    }
  }
  // A^T A + n*I is SPD.
  Matrix spd = a.transposed().multiply(a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(Cholesky, FactorReconstructs) {
  const Matrix a = random_spd(5, 1);
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  const Matrix reconstructed = l->multiply(l->transposed());
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(reconstructed(r, c), a(r, c), 1e-10);
    }
  }
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix m{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(m).has_value());
}

TEST(Cholesky, SolveMatchesKnownSolution) {
  const Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> x_true = {1.0, -2.0};
  const auto b = a.matvec(x_true);
  const auto x = cholesky_solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], -2.0, 1e-12);
}

TEST(Cholesky, SolveRejectsBadDimensions) {
  const Matrix a = Matrix::identity(3);
  const std::vector<double> b = {1.0};
  EXPECT_THROW(cholesky_solve(a, b), std::invalid_argument);
  EXPECT_THROW(cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, SolveRandomSystem) {
  util::Rng rng(7);
  Matrix a(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      a(r, c) = rng.uniform(-2.0, 2.0);
    }
    a(r, r) += 4.0;  // keep well-conditioned
  }
  std::vector<double> x_true = {1.0, 2.0, -1.0, 0.5};
  const auto b = a.matvec(x_true);
  const auto x = lu_solve(a, b);
  ASSERT_TRUE(x.has_value());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR((*x)[i], x_true[i], 1e-10);
  }
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const std::vector<double> b = {2.0, 3.0};
  const auto x = lu_solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(Lu, SingularReturnsNullopt) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(lu_decompose(a).has_value());
  EXPECT_FALSE(lu_solve(a, std::vector<double>{1.0, 2.0}).has_value());
  EXPECT_DOUBLE_EQ(determinant(a), 0.0);
}

TEST(Determinant, KnownValues) {
  EXPECT_NEAR(determinant(Matrix{{2.0, 0.0}, {0.0, 3.0}}), 6.0, 1e-12);
  EXPECT_NEAR(determinant(Matrix{{0.0, 1.0}, {1.0, 0.0}}), -1.0, 1e-12);
  EXPECT_NEAR(determinant(Matrix::identity(5)), 1.0, 1e-12);
}

TEST(Inverse, MultipliesToIdentity) {
  const Matrix a = random_spd(3, 9);
  const auto inv = inverse(a);
  ASSERT_TRUE(inv.has_value());
  const Matrix prod = a.multiply(*inv);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Inverse, SingularReturnsNullopt) {
  EXPECT_FALSE(inverse(Matrix(2, 2, 1.0)).has_value());
}

TEST(Covariance, MatchesManualComputation) {
  // Points (0,0), (2,0), (0,2), (2,2) about mean (1,1): var = 4/3 unbiased.
  const std::vector<double> rows = {0.0, 0.0, 2.0, 0.0, 0.0, 2.0, 2.0, 2.0};
  const std::vector<double> mean = {1.0, 1.0};
  const Matrix cov = covariance(rows, 2, mean);
  EXPECT_NEAR(cov(0, 0), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 0.0, 1e-12);
}

TEST(Covariance, RidgeAddsToDiagonal) {
  const std::vector<double> rows = {1.0, 1.0};
  const std::vector<double> mean = {1.0, 1.0};
  const Matrix cov = covariance(rows, 2, mean, 0.5);
  EXPECT_NEAR(cov(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(cov(1, 1), 0.5, 1e-12);
}

TEST(Covariance, ValidatesLayout) {
  const std::vector<double> rows = {1.0, 2.0, 3.0};
  EXPECT_THROW(covariance(rows, 2, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(covariance(rows, 3, std::vector<double>{1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace approxit::la
