#include "la/vector_ops.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "arith/alu.h"

namespace approxit::la {
namespace {

TEST(VectorOps, Norms) {
  const std::vector<double> v = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm2_squared(v), 25.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(norm2({}), 0.0);
}

TEST(VectorOps, Distance) {
  const std::vector<double> a = {1.0, 1.0};
  const std::vector<double> b = {4.0, 5.0};
  EXPECT_DOUBLE_EQ(distance2(a, b), 5.0);
  EXPECT_THROW(distance2(a, {{1.0}}), std::invalid_argument);
}

TEST(VectorOps, Dot) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
  EXPECT_THROW(dot(a, {{1.0}}), std::invalid_argument);
}

TEST(VectorOps, AxpyExact) {
  const std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, Scale) {
  std::vector<double> x = {1.0, -2.0};
  scale(-3.0, x);
  EXPECT_DOUBLE_EQ(x[0], -3.0);
  EXPECT_DOUBLE_EQ(x[1], 6.0);
}

TEST(VectorOps, AddSubtract) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {3.0, 5.0};
  const auto s = add(a, b);
  EXPECT_DOUBLE_EQ(s[0], 4.0);
  const auto d = subtract(b, a);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
}

TEST(VectorOps, ContextRoutedMatchesExactWithExactContext) {
  arith::ExactContext ctx;
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(ctx, a, b), dot(a, b));
  EXPECT_DOUBLE_EQ(sum(ctx, a), 6.0);
}

TEST(VectorOps, ContextRoutedAxpy) {
  arith::ExactContext ctx;
  const std::vector<double> x = {1.0, 1.0};
  std::vector<double> y = {0.0, 10.0};
  axpy(ctx, 0.5, x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.5);
  EXPECT_DOUBLE_EQ(y[1], 10.5);
}

TEST(VectorOps, ContextRoutedAxpyRecordsEnergy) {
  arith::QcsAlu alu;
  alu.set_mode(arith::ApproxMode::kLevel3);
  const std::vector<double> x = {1.0, 1.0, 1.0};
  std::vector<double> y = {0.0, 0.0, 0.0};
  axpy(alu, 1.0, x, y);
  EXPECT_EQ(alu.ledger().total_ops(), 3u);
}

TEST(VectorOps, MeanRows) {
  arith::ExactContext ctx;
  // Two rows of dimension 3.
  const std::vector<double> rows = {1.0, 2.0, 3.0, 3.0, 4.0, 5.0};
  const auto m = mean_rows(ctx, rows, 3);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 3.0);
  EXPECT_DOUBLE_EQ(m[2], 4.0);
}

TEST(VectorOps, MeanRowsValidation) {
  arith::ExactContext ctx;
  EXPECT_THROW(mean_rows(ctx, {{1.0, 2.0, 3.0}}, 0), std::invalid_argument);
  EXPECT_THROW(mean_rows(ctx, {{1.0, 2.0, 3.0}}, 2), std::invalid_argument);
  const auto empty = mean_rows(ctx, {}, 4);
  EXPECT_EQ(empty.size(), 4u);
  EXPECT_DOUBLE_EQ(empty[0], 0.0);
}

}  // namespace
}  // namespace approxit::la
