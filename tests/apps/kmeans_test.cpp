#include "apps/kmeans.h"

#include <gtest/gtest.h>

#include "apps/gmm.h"
#include "arith/alu.h"
#include "arith/context.h"
#include "workloads/datasets.h"

namespace approxit::apps {
namespace {

workloads::GmmDataset small_dataset() {
  auto ds = workloads::make_gaussian_blobs(3, 300, 2, 8.0, 0.8, 13);
  ds.max_iter = 100;
  ds.convergence_tol = 1e-9;
  return ds;
}

TEST(KMeans, RejectsEmptyDataset) {
  workloads::GmmDataset empty;
  EXPECT_THROW(KMeans m(empty), std::invalid_argument);
}

TEST(KMeans, ObjectiveDecreasesExact) {
  const auto ds = small_dataset();
  KMeans m(ds);
  arith::ExactContext ctx;
  double prev = m.objective();
  for (int k = 0; k < 20; ++k) {
    const opt::IterationStats stats = m.iterate(ctx);
    EXPECT_LE(stats.objective_after, prev + 1e-12);
    prev = stats.objective_after;
  }
}

TEST(KMeans, ConvergesToFixpointExact) {
  const auto ds = small_dataset();
  KMeans m(ds);
  arith::ExactContext ctx;
  bool converged = false;
  for (std::size_t k = 0; k < ds.max_iter; ++k) {
    if (m.iterate(ctx).converged) {
      converged = true;
      break;
    }
  }
  EXPECT_TRUE(converged);
  // Lloyd's algorithm reaches an exact fixpoint: one more iteration must
  // not move the centroids.
  const auto before = m.state();
  m.iterate(ctx);
  EXPECT_EQ(m.state(), before);
}

TEST(KMeans, RecoversWellSeparatedClusters) {
  const auto ds = small_dataset();
  KMeans m(ds);
  arith::ExactContext ctx;
  for (std::size_t k = 0; k < ds.max_iter; ++k) {
    if (m.iterate(ctx).converged) break;
  }
  const std::size_t errors =
      permuted_hamming_distance(ds.labels, m.assignments(), 3);
  EXPECT_LT(errors, ds.size() / 20);
}

TEST(KMeans, McdSensorPositiveAndImproving) {
  const auto ds = small_dataset();
  KMeans m(ds);
  arith::ExactContext ctx;
  const double mcd0 = m.mean_centroid_distance();
  for (int k = 0; k < 15; ++k) m.iterate(ctx);
  EXPECT_GT(mcd0, 0.0);
  EXPECT_LT(m.mean_centroid_distance(), mcd0);
}

TEST(KMeans, SnapshotRestore) {
  const auto ds = small_dataset();
  KMeans m(ds);
  arith::ExactContext ctx;
  m.iterate(ctx);
  const auto snapshot = m.state();
  const double f = m.objective();
  m.iterate(ctx);
  m.restore(snapshot);
  EXPECT_DOUBLE_EQ(m.objective(), f);
  EXPECT_THROW(m.restore({1.0}), std::invalid_argument);
}

TEST(KMeans, ApproximateCentroidsRecordEnergy) {
  const auto ds = small_dataset();
  KMeans m(ds);
  arith::QcsAlu alu;
  alu.set_mode(arith::ApproxMode::kLevel2);
  m.iterate(alu);
  // Every sample contributes dim + 1 accumulations.
  EXPECT_EQ(alu.ledger().total_ops(), ds.size() * (ds.dim + 1));
}

TEST(KMeans, StateIsCentroids) {
  const auto ds = small_dataset();
  KMeans m(ds);
  EXPECT_EQ(m.state().size(), ds.num_clusters * ds.dim);
  EXPECT_EQ(m.dimension(), ds.num_clusters * ds.dim);
}

}  // namespace
}  // namespace approxit::apps
