// Acceptance test for the fault-injection + watchdog stack: under transient
// faults in the approximate datapath, a GMM run guarded by the convergence
// watchdog ends with strictly better clustering quality (Hamming QEM vs the
// Truth run) than the same run with the watchdog disabled — and a run in
// which the watchdog fired is never reported as a plain "converged".
#include <gtest/gtest.h>

#include "apps/gmm.h"
#include "arith/fault_injector.h"
#include "core/characterization.h"
#include "core/session.h"
#include "core/static_strategy.h"
#include "workloads/datasets.h"

namespace approxit::apps {
namespace {

using arith::ApproxMode;

TEST(GmmFaultRecovery, WatchdogImprovesHammingQemUnderFaults) {
  auto ds = workloads::make_gaussian_blobs(3, 300, 2, 8.0, 0.8, 7);
  ds.max_iter = 200;
  ds.convergence_tol = 1e-9;

  // Truth baseline (accurate mode, clean hardware).
  arith::QcsAlu clean_alu;
  GmmEm truth_method(ds);
  const core::ModeCharacterization characterization =
      core::characterize(truth_method, clean_alu);
  core::StaticStrategy truth_strategy(ApproxMode::kAccurate);
  core::ApproxItSession truth_session(truth_method, truth_strategy,
                                      clean_alu);
  truth_session.set_characterization(characterization);
  const core::RunReport truth = truth_session.run();
  ASSERT_TRUE(truth.converged);
  const std::vector<int> truth_assignments = truth_method.assignments();

  // Moderate transient-fault rate on the approximate levels; the accurate
  // mode (nominal voltage) stays fault-free, so watchdog recoveries can
  // actually escape the fault process. Both runs see the same seeded
  // fault stream from a fresh injector.
  const arith::FaultConfig faults =
      arith::FaultConfig::uniform_approximate(5e-3, /*seed=*/0x5eed);

  const auto faulted_run = [&](GmmEm& method, bool watchdog_enabled) {
    arith::FaultyQcsAlu alu(faults);
    core::StaticStrategy strategy(ApproxMode::kLevel2);
    core::ApproxItSession session(method, strategy, alu);
    session.set_characterization(characterization);
    core::SessionOptions options;
    options.watchdog.enabled = watchdog_enabled;
    options.watchdog.divergence_factor = 2.0;
    // Faults freeze or regress the EM update (zero step / negative
    // improvement), which GmmEm's own test reads as convergence — the
    // paper's false stop. EM's ascent property makes every CLEAN iteration
    // improve, so a one-iteration zero-tolerance stall window flags
    // exactly the corrupted iterations before that false convergence is
    // accepted.
    options.watchdog.stall_window = 1;
    options.watchdog.stall_tolerance = 0.0;
    options.watchdog.safe_mode_after = 2;
    options.watchdog.max_recoveries = 50;
    return session.run(options);
  };

  GmmEm bare_method(ds);
  const core::RunReport bare = faulted_run(bare_method, false);
  const std::size_t bare_qem =
      hamming_distance(truth_assignments, bare_method.assignments());

  GmmEm guarded_method(ds);
  const core::RunReport guarded = faulted_run(guarded_method, true);
  const std::size_t guarded_qem =
      hamming_distance(truth_assignments, guarded_method.assignments());

  // The fault rate is high enough to corrupt the unguarded run...
  EXPECT_EQ(bare.watchdog.total(), 0u);
  EXPECT_GT(bare_qem, 0u);

  // ...and the watchdog both noticed and recovered: triggers were counted,
  // the safe-mode latch pinned the fault-free accurate mode, and the final
  // quality is strictly better than the unguarded run's.
  EXPECT_GT(guarded.watchdog.total(), 0u);
  EXPECT_TRUE(guarded.safe_mode);
  EXPECT_NE(guarded.status, core::RunStatus::kConverged)
      << "a run with watchdog triggers must not be reported as a plain "
         "converged";
  EXPECT_LT(guarded_qem, bare_qem);
}

}  // namespace
}  // namespace approxit::apps
