#include "apps/gmm.h"

#include <gtest/gtest.h>

#include "arith/alu.h"
#include "arith/context.h"
#include "workloads/datasets.h"

namespace approxit::apps {
namespace {

workloads::GmmDataset small_dataset() {
  // 300 points, 3 well-separated blobs: fast EM for unit tests.
  auto ds = workloads::make_gaussian_blobs(3, 300, 2, 8.0, 0.8, 7);
  ds.max_iter = 200;
  ds.convergence_tol = 1e-9;
  return ds;
}

TEST(GmmEm, RejectsEmptyDataset) {
  workloads::GmmDataset empty;
  EXPECT_THROW(GmmEm m(empty), std::invalid_argument);
}

TEST(GmmEm, DimensionIsClustersTimesDim) {
  const auto ds = small_dataset();
  GmmEm m(ds);
  EXPECT_EQ(m.dimension(), 3u * 2u);
  EXPECT_EQ(m.name(), "gmm_em");
  EXPECT_EQ(m.max_iterations(), 200u);
  EXPECT_DOUBLE_EQ(m.tolerance(), 1e-9);
}

TEST(GmmEm, ObjectiveDecreasesMonotonicallyExact) {
  const auto ds = small_dataset();
  GmmEm m(ds);
  arith::ExactContext ctx;
  double prev = m.objective();
  for (int k = 0; k < 30; ++k) {
    const opt::IterationStats stats = m.iterate(ctx);
    // EM's ascent property: the (negative) log-likelihood never increases.
    EXPECT_LE(stats.objective_after, prev + 1e-9) << "iteration " << k;
    prev = stats.objective_after;
  }
}

TEST(GmmEm, ConvergesAndRecoversClusters) {
  const auto ds = small_dataset();
  GmmEm m(ds);
  arith::ExactContext ctx;
  bool converged = false;
  for (std::size_t k = 0; k < ds.max_iter; ++k) {
    if (m.iterate(ctx).converged) {
      converged = true;
      break;
    }
  }
  EXPECT_TRUE(converged);
  // Against ground-truth labels, allowing label permutation.
  const std::size_t errors =
      permuted_hamming_distance(ds.labels, m.assignments(), 3);
  EXPECT_LT(errors, ds.size() / 20);  // <5% misclustered
}

TEST(GmmEm, ResetRestoresInitialObjective) {
  const auto ds = small_dataset();
  GmmEm m(ds);
  arith::ExactContext ctx;
  const double f0 = m.objective();
  m.iterate(ctx);
  m.iterate(ctx);
  m.reset();
  EXPECT_DOUBLE_EQ(m.objective(), f0);
}

TEST(GmmEm, SnapshotRestoreRoundTrip) {
  const auto ds = small_dataset();
  GmmEm m(ds);
  arith::ExactContext ctx;
  m.iterate(ctx);
  const std::vector<double> snapshot = m.state();
  const double f = m.objective();
  m.iterate(ctx);
  EXPECT_NE(m.objective(), f);
  m.restore(snapshot);
  EXPECT_DOUBLE_EQ(m.objective(), f);
  EXPECT_EQ(m.state(), snapshot);
}

TEST(GmmEm, RestoreRejectsBadSize) {
  const auto ds = small_dataset();
  GmmEm m(ds);
  EXPECT_THROW(m.restore({1.0, 2.0}), std::invalid_argument);
}

TEST(GmmEm, StateLayoutSizes) {
  const auto ds = small_dataset();
  GmmEm m(ds);
  // weights (3) + means (3*2) + covariances (3*2*2).
  EXPECT_EQ(m.state().size(), 3u + 6u + 12u);
}

TEST(GmmEm, ApproximateRunDivergesFromExact) {
  const auto ds = small_dataset();
  GmmEm exact_m(ds);
  GmmEm approx_m(ds);
  arith::ExactContext exact;
  arith::QcsAlu alu;
  alu.set_mode(arith::ApproxMode::kLevel1);
  for (int k = 0; k < 5; ++k) {
    exact_m.iterate(exact);
    approx_m.iterate(alu);
  }
  EXPECT_NE(exact_m.objective(), approx_m.objective());
  EXPECT_GT(alu.ledger().total_ops(), 0u);
}

TEST(GmmEm, MonitorStatsPopulated) {
  const auto ds = small_dataset();
  GmmEm m(ds);
  arith::ExactContext ctx;
  const opt::IterationStats stats = m.iterate(ctx);
  EXPECT_GT(stats.step_norm, 0.0);
  EXPECT_GT(stats.state_norm, 0.0);
  EXPECT_GT(stats.grad_norm, 0.0);
  // EM improves the objective, and the step correlates with -gradient.
  EXPECT_GT(stats.improvement(), 0.0);
  EXPECT_LT(stats.grad_dot_step, 0.0);
}

TEST(GmmEm, AssignmentsCoverAllSamples) {
  const auto ds = small_dataset();
  GmmEm m(ds);
  const auto assign = m.assignments();
  EXPECT_EQ(assign.size(), ds.size());
  for (int a : assign) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 3);
  }
}

TEST(GmmEm, MeanCentroidDistancePositiveAndShrinks) {
  const auto ds = small_dataset();
  GmmEm m(ds);
  arith::ExactContext ctx;
  const double mcd0 = m.mean_centroid_distance();
  for (int k = 0; k < 20; ++k) m.iterate(ctx);
  EXPECT_GT(mcd0, 0.0);
  EXPECT_LT(m.mean_centroid_distance(), mcd0);
}

TEST(HammingDistance, CountsMismatches) {
  EXPECT_EQ(hamming_distance({0, 1, 2}, {0, 1, 2}), 0u);
  EXPECT_EQ(hamming_distance({0, 1, 2}, {0, 2, 1}), 2u);
  EXPECT_THROW(hamming_distance({0}, {0, 1}), std::invalid_argument);
}

TEST(PermutedHammingDistance, InvariantToRelabeling) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  const std::vector<int> swapped = {1, 1, 0, 0, 2, 2};
  EXPECT_EQ(hamming_distance(a, swapped), 4u);
  EXPECT_EQ(permuted_hamming_distance(a, swapped, 3), 0u);
}

TEST(PermutedHammingDistance, ValidatesLabelCount) {
  EXPECT_THROW(permuted_hamming_distance({0}, {0}, 0), std::invalid_argument);
  EXPECT_THROW(permuted_hamming_distance({0}, {0}, 9), std::invalid_argument);
}

}  // namespace
}  // namespace approxit::apps
