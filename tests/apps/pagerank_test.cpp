#include "apps/pagerank.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "arith/context.h"
#include "core/incremental_strategy.h"
#include "core/session.h"
#include "core/static_strategy.h"

namespace approxit::apps {
namespace {

workloads::WebGraph small_graph() {
  return workloads::make_web_graph(400, 4, 31, 0.05);
}

TEST(PageRank, RejectsBadArguments) {
  workloads::WebGraph empty;
  EXPECT_THROW(PageRank p(empty), std::invalid_argument);
  const auto g = small_graph();
  PageRankOptions bad;
  bad.damping = 1.0;
  EXPECT_THROW(PageRank p(g, bad), std::invalid_argument);
}

TEST(PageRank, RanksStayNormalizedExact) {
  const auto g = small_graph();
  PageRank pr(g);
  arith::ExactContext ctx;
  for (int k = 0; k < 30; ++k) {
    pr.iterate(ctx);
    const double mass =
        std::accumulate(pr.ranks().begin(), pr.ranks().end(), 0.0);
    ASSERT_NEAR(mass, 1.0, 1e-9) << "iteration " << k;
  }
}

TEST(PageRank, ResidualContractsExact) {
  const auto g = small_graph();
  PageRank pr(g);
  arith::ExactContext ctx;
  double prev = pr.objective();
  for (int k = 0; k < 20; ++k) {
    const opt::IterationStats stats = pr.iterate(ctx);
    EXPECT_LT(stats.objective_after, prev) << "iteration " << k;
    prev = stats.objective_after;
  }
}

TEST(PageRank, ConvergesToStationaryDistribution) {
  const auto g = small_graph();
  PageRank pr(g);
  arith::ExactContext ctx;
  for (std::size_t k = 0; k < pr.max_iterations(); ++k) {
    if (pr.iterate(ctx).converged) break;
  }
  // At the fixed point one more exact step barely moves the ranks.
  const std::vector<double> before(pr.ranks().begin(), pr.ranks().end());
  pr.iterate(ctx);
  EXPECT_LT(rank_l1_distance(before, pr.ranks()), 1e-7);
}

TEST(PageRank, HubsOutrankLeaves) {
  const auto g = small_graph();
  PageRank pr(g);
  arith::ExactContext ctx;
  for (int k = 0; k < 100; ++k) {
    if (pr.iterate(ctx).converged) break;
  }
  // In-degree and rank should correlate: the top page must have far more
  // than the uniform share.
  const auto top = pr.top_pages(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_GT(pr.ranks()[top[0]], 5.0 / static_cast<double>(g.nodes));
}

TEST(PageRank, SnapshotRestore) {
  const auto g = small_graph();
  PageRank pr(g);
  arith::ExactContext ctx;
  pr.iterate(ctx);
  const auto snapshot = pr.state();
  const double f = pr.objective();
  pr.iterate(ctx);
  pr.restore(snapshot);
  EXPECT_DOUBLE_EQ(pr.objective(), f);
  EXPECT_THROW(pr.restore({1.0}), std::invalid_argument);
}

TEST(PageRank, ApproximateRunRecordsEdgeOps) {
  const auto g = small_graph();
  PageRank pr(g);
  arith::QcsAlu alu(pagerank_qcs_config());
  alu.set_mode(arith::ApproxMode::kLevel2);
  pr.iterate(alu);
  std::size_t dangling = 0;
  for (const auto& links : g.out_links) {
    if (links.empty()) ++dangling;
  }
  EXPECT_EQ(alu.ledger().total_ops(), g.edges() + dangling);
}

TEST(PageRank, UnderApproxItMatchesTruthRanking) {
  const auto g = small_graph();
  arith::QcsAlu alu(pagerank_qcs_config());

  PageRank truth(g);
  core::StaticStrategy truth_strategy(arith::ApproxMode::kAccurate);
  core::ApproxItSession truth_session(truth, truth_strategy, alu);
  const core::RunReport truth_report = truth_session.run();
  EXPECT_TRUE(truth_report.converged);
  const auto truth_top = truth.top_pages(10);
  const std::vector<double> truth_ranks(truth.ranks().begin(),
                                        truth.ranks().end());

  PageRank method(g);
  core::IncrementalStrategy strategy;
  core::ApproxItSession session(method, strategy, alu);
  const core::RunReport report = session.run();
  EXPECT_TRUE(report.converged);
  // The top-10 ranking must be fully preserved and ranks nearly identical.
  EXPECT_EQ(top_k_overlap(truth_top, method.top_pages(10)), 10u);
  EXPECT_LT(rank_l1_distance(truth_ranks, method.ranks()), 1e-4);
}

TEST(RankMetrics, Helpers) {
  EXPECT_DOUBLE_EQ(rank_l1_distance(std::vector<double>{0.5, 0.5},
                                    std::vector<double>{0.25, 0.75}),
                   0.5);
  EXPECT_THROW(rank_l1_distance(std::vector<double>{1.0},
                                std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_EQ(top_k_overlap({1, 2, 3}, {3, 4, 1}), 2u);
}

}  // namespace
}  // namespace approxit::apps
