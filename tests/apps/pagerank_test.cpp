#include "apps/pagerank.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "arith/context.h"
#include "core/incremental_strategy.h"
#include "core/session.h"
#include "core/static_strategy.h"

namespace approxit::apps {
namespace {

workloads::WebGraph small_graph() {
  return workloads::make_web_graph(400, 4, 31, 0.05);
}

TEST(PageRank, RejectsBadArguments) {
  workloads::WebGraph empty;
  EXPECT_THROW(PageRank p(empty), std::invalid_argument);
  const auto g = small_graph();
  PageRankOptions bad;
  bad.damping = 1.0;
  EXPECT_THROW(PageRank p(g, bad), std::invalid_argument);
}

TEST(PageRank, RanksStayNormalizedExact) {
  const auto g = small_graph();
  PageRank pr(g);
  arith::ExactContext ctx;
  for (int k = 0; k < 30; ++k) {
    pr.iterate(ctx);
    const double mass =
        std::accumulate(pr.ranks().begin(), pr.ranks().end(), 0.0);
    ASSERT_NEAR(mass, 1.0, 1e-9) << "iteration " << k;
  }
}

TEST(PageRank, ResidualContractsExact) {
  const auto g = small_graph();
  PageRank pr(g);
  arith::ExactContext ctx;
  double prev = pr.objective();
  for (int k = 0; k < 20; ++k) {
    const opt::IterationStats stats = pr.iterate(ctx);
    EXPECT_LT(stats.objective_after, prev) << "iteration " << k;
    prev = stats.objective_after;
  }
}

TEST(PageRank, ConvergesToStationaryDistribution) {
  const auto g = small_graph();
  PageRank pr(g);
  arith::ExactContext ctx;
  for (std::size_t k = 0; k < pr.max_iterations(); ++k) {
    if (pr.iterate(ctx).converged) break;
  }
  // At the fixed point one more exact step barely moves the ranks.
  const std::vector<double> before(pr.ranks().begin(), pr.ranks().end());
  pr.iterate(ctx);
  EXPECT_LT(rank_l1_distance(before, pr.ranks()), 1e-7);
}

TEST(PageRank, HubsOutrankLeaves) {
  const auto g = small_graph();
  PageRank pr(g);
  arith::ExactContext ctx;
  for (int k = 0; k < 100; ++k) {
    if (pr.iterate(ctx).converged) break;
  }
  // In-degree and rank should correlate: the top page must have far more
  // than the uniform share.
  const auto top = pr.top_pages(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_GT(pr.ranks()[top[0]], 5.0 / static_cast<double>(g.nodes));
}

TEST(PageRank, SnapshotRestore) {
  const auto g = small_graph();
  PageRank pr(g);
  arith::ExactContext ctx;
  pr.iterate(ctx);
  const auto snapshot = pr.state();
  const double f = pr.objective();
  pr.iterate(ctx);
  pr.restore(snapshot);
  EXPECT_DOUBLE_EQ(pr.objective(), f);
  EXPECT_THROW(pr.restore({1.0}), std::invalid_argument);
}

TEST(PageRank, ApproximateRunRecordsEdgeOps) {
  const auto g = small_graph();
  PageRank pr(g);
  arith::QcsAlu alu(pagerank_qcs_config());
  alu.set_mode(arith::ApproxMode::kLevel2);
  pr.iterate(alu);
  std::size_t dangling = 0;
  for (const auto& links : g.out_links) {
    if (links.empty()) ++dangling;
  }
  EXPECT_EQ(alu.ledger().total_ops(), g.edges() + dangling);
}

TEST(PageRank, UnderApproxItMatchesTruthRanking) {
  const auto g = small_graph();
  arith::QcsAlu alu(pagerank_qcs_config());

  PageRank truth(g);
  core::StaticStrategy truth_strategy(arith::ApproxMode::kAccurate);
  core::ApproxItSession truth_session(truth, truth_strategy, alu);
  const core::RunReport truth_report = truth_session.run();
  EXPECT_TRUE(truth_report.converged);
  const auto truth_top = truth.top_pages(10);
  const std::vector<double> truth_ranks(truth.ranks().begin(),
                                        truth.ranks().end());

  PageRank method(g);
  core::IncrementalStrategy strategy;
  core::ApproxItSession session(method, strategy, alu);
  const core::RunReport report = session.run();
  EXPECT_TRUE(report.converged);
  // The top-10 ranking must be fully preserved and ranks nearly identical.
  EXPECT_EQ(top_k_overlap(truth_top, method.top_pages(10)), 10u);
  EXPECT_LT(rank_l1_distance(truth_ranks, method.ranks()), 1e-4);
}

TEST(PageRank, ShardAndThreadPlansAreByteIdentical) {
  const auto g = small_graph();
  arith::QcsAlu base(pagerank_qcs_config());
  base.set_mode(arith::ApproxMode::kLevel2);

  PageRank serial(g);
  for (int k = 0; k < 10; ++k) serial.iterate(base);
  const std::vector<double> ref(serial.ranks().begin(), serial.ranks().end());

  for (const std::size_t shards : {std::size_t{4}, std::size_t{8}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      PageRankOptions options;
      options.spmv = {.shards = shards, .threads = threads};
      PageRank pr(g, options);
      arith::QcsAlu alu(pagerank_qcs_config());
      alu.set_mode(arith::ApproxMode::kLevel2);
      for (int k = 0; k < 10; ++k) pr.iterate(alu);
      ASSERT_EQ(pr.ranks().size(), ref.size());
      for (std::size_t v = 0; v < ref.size(); ++v) {
        ASSERT_EQ(pr.ranks()[v], ref[v])
            << "node " << v << " with " << shards << " shards, " << threads
            << " threads";
      }
      EXPECT_EQ(alu.ledger().total_ops(), base.ledger().total_ops());
    }
  }
}

TEST(PageRank, TransitionIsColumnStochasticForNonDangling) {
  const auto g = small_graph();
  PageRank pr(g);
  const la::CsrMatrix& p = pr.transition();
  EXPECT_EQ(p.rows(), g.nodes);
  EXPECT_EQ(p.nnz(), g.edges());
  std::vector<double> col_sums(g.nodes, 0.0);
  for (std::size_t v = 0; v < p.rows(); ++v) {
    const auto cols = p.row_cols(v);
    const auto vals = p.row_values(v);
    for (std::size_t i = 0; i < cols.size(); ++i) col_sums[cols[i]] += vals[i];
  }
  for (std::size_t u = 0; u < g.nodes; ++u) {
    if (g.out_links[u].empty()) {
      EXPECT_EQ(col_sums[u], 0.0) << "dangling node " << u;
    } else {
      EXPECT_NEAR(col_sums[u], 1.0, 1e-12) << "node " << u;
    }
  }
}

TEST(PageRankConfig, SizeAwareConfigScalesWithNodeCount) {
  // The size-aware ladder must stay inside the fused-path width ceiling
  // and deepen its fraction as the graph grows.
  for (const std::size_t n :
       {std::size_t{400}, std::size_t{100000}, std::size_t{1000000}}) {
    const arith::QcsConfig config = pagerank_qcs_config(n);
    EXPECT_LE(config.format.total_bits, 52u) << n;
    EXPECT_GT(config.format.frac_bits, 20u) << n;
    for (std::size_t i = 1; i < config.level_approx_bits.size(); ++i) {
      EXPECT_LT(config.level_approx_bits[i], config.level_approx_bits[i - 1]);
    }
  }
  EXPECT_GT(pagerank_qcs_config(1000000).format.frac_bits,
            pagerank_qcs_config(400).format.frac_bits);
}

TEST(RankMetrics, Helpers) {
  EXPECT_DOUBLE_EQ(rank_l1_distance(std::vector<double>{0.5, 0.5},
                                    std::vector<double>{0.25, 0.75}),
                   0.5);
  EXPECT_THROW(rank_l1_distance(std::vector<double>{1.0},
                                std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_EQ(top_k_overlap({1, 2, 3}, {3, 4, 1}), 2u);
}

}  // namespace
}  // namespace approxit::apps
