// End-to-end reproduction properties on the paper's own datasets: these are
// the claims the evaluation section rests on, asserted as tests.
#include <gtest/gtest.h>

#include "apps/autoregression.h"
#include "apps/gmm.h"
#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "core/session.h"
#include "core/static_strategy.h"
#include "workloads/datasets.h"

namespace approxit::apps {
namespace {

using arith::ApproxMode;

/// Shared fixture: Truth run + characterization on 3cluster, computed once.
class GmmEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new workloads::GmmDataset(
        workloads::make_gmm_dataset(workloads::GmmDatasetId::k3cluster));
    alu_ = new arith::QcsAlu;
    GmmEm method(*dataset_);
    characterization_ = new core::ModeCharacterization(
        core::characterize(method, *alu_));

    GmmEm truth_method(*dataset_);
    core::StaticStrategy strategy(ApproxMode::kAccurate);
    core::ApproxItSession session(truth_method, strategy, *alu_);
    session.set_characterization(*characterization_);
    truth_report_ = new core::RunReport(session.run());
    truth_assignments_ = new std::vector<int>(truth_method.assignments());
  }

  static void TearDownTestSuite() {
    delete truth_assignments_;
    delete truth_report_;
    delete characterization_;
    delete alu_;
    delete dataset_;
  }

  core::RunReport run_with(core::Strategy& strategy, GmmEm& method) {
    core::ApproxItSession session(method, strategy, *alu_);
    session.set_characterization(*characterization_);
    return session.run();
  }

  static workloads::GmmDataset* dataset_;
  static arith::QcsAlu* alu_;
  static core::ModeCharacterization* characterization_;
  static core::RunReport* truth_report_;
  static std::vector<int>* truth_assignments_;
};

workloads::GmmDataset* GmmEndToEnd::dataset_ = nullptr;
arith::QcsAlu* GmmEndToEnd::alu_ = nullptr;
core::ModeCharacterization* GmmEndToEnd::characterization_ = nullptr;
core::RunReport* GmmEndToEnd::truth_report_ = nullptr;
std::vector<int>* GmmEndToEnd::truth_assignments_ = nullptr;

TEST_F(GmmEndToEnd, TruthConvergesWithinBudget) {
  EXPECT_TRUE(truth_report_->converged);
  EXPECT_LT(truth_report_->iterations, dataset_->max_iter);
  EXPECT_GT(truth_report_->iterations, 50u);  // nontrivial run
}

TEST_F(GmmEndToEnd, Level1FalselyStopsEarlyWithLargeQem) {
  GmmEm method(*dataset_);
  core::StaticStrategy strategy(ApproxMode::kLevel1);
  const core::RunReport report = run_with(strategy, method);
  // The paper's headline single-mode failure: level1 stops long before
  // Truth and mislabels hundreds of samples.
  EXPECT_LT(report.iterations, truth_report_->iterations / 3);
  EXPECT_GT(hamming_distance(*truth_assignments_, method.assignments()),
            100u);
}

TEST_F(GmmEndToEnd, SingleModeEnergyMonotoneInLevel) {
  double previous = 0.0;
  for (ApproxMode mode : {ApproxMode::kLevel2, ApproxMode::kLevel3,
                          ApproxMode::kLevel4}) {
    GmmEm method(*dataset_);
    core::StaticStrategy strategy(mode);
    const core::RunReport report = run_with(strategy, method);
    const double relative = report.total_energy / truth_report_->total_energy;
    EXPECT_GT(relative, previous) << arith::mode_name(mode);
    EXPECT_LT(relative, 1.0) << arith::mode_name(mode);
    previous = relative;
  }
}

TEST_F(GmmEndToEnd, Level4MatchesTruthClustering) {
  GmmEm method(*dataset_);
  core::StaticStrategy strategy(ApproxMode::kLevel4);
  (void)run_with(strategy, method);
  EXPECT_EQ(hamming_distance(*truth_assignments_, method.assignments()), 0u);
}

TEST_F(GmmEndToEnd, IncrementalReachesZeroErrorWithEnergySavings) {
  GmmEm method(*dataset_);
  core::IncrementalStrategy strategy;
  const core::RunReport report = run_with(strategy, method);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(hamming_distance(*truth_assignments_, method.assignments()), 0u);
  EXPECT_LT(report.total_energy, truth_report_->total_energy);
  // Starts at level1 and ramps monotonically upward.
  ASSERT_FALSE(report.trace.empty());
  EXPECT_EQ(report.trace.front().mode, ApproxMode::kLevel1);
  std::size_t previous = 0;
  for (const core::IterationRecord& rec : report.trace) {
    EXPECT_GE(arith::mode_index(rec.mode), previous);
    previous = arith::mode_index(rec.mode);
  }
}

TEST_F(GmmEndToEnd, AdaptiveReachesZeroErrorWithEnergySavings) {
  GmmEm method(*dataset_);
  core::AdaptiveAngleStrategy strategy;
  const core::RunReport report = run_with(strategy, method);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(hamming_distance(*truth_assignments_, method.assignments()), 0u);
  EXPECT_LT(report.total_energy, truth_report_->total_energy);
  // Unlike the incremental strategy, mode moves are not one-directional;
  // at least the cheap levels must actually be used.
  EXPECT_GT(report.steps(ApproxMode::kLevel1), 0u);
}

TEST(ArEndToEnd, HangSengPipelineShape) {
  const auto ds = workloads::make_series_dataset(workloads::SeriesId::kHangSeng);
  arith::QcsAlu alu(ar_qcs_config());

  AutoRegression char_method(ds);
  const core::ModeCharacterization characterization =
      core::characterize(char_method, alu);

  AutoRegression truth_method(ds);
  core::StaticStrategy truth_strategy(ApproxMode::kAccurate);
  core::ApproxItSession truth_session(truth_method, truth_strategy, alu);
  truth_session.set_characterization(characterization);
  const core::RunReport truth = truth_session.run();
  EXPECT_TRUE(truth.converged);
  const std::vector<double> w_truth(truth_method.coefficients().begin(),
                                    truth_method.coefficients().end());

  // level1 falsely stops early and lands far from the Truth coefficients.
  AutoRegression l1_method(ds);
  core::StaticStrategy l1_strategy(ApproxMode::kLevel1);
  core::ApproxItSession l1_session(l1_method, l1_strategy, alu);
  l1_session.set_characterization(characterization);
  const core::RunReport l1 = l1_session.run();
  EXPECT_LT(l1.iterations, truth.iterations / 2);
  const double l1_qem =
      coefficient_l2_error(l1_method.coefficients(), w_truth);

  // The incremental strategy recovers (orders of magnitude better QEM) at
  // lower energy than Truth.
  AutoRegression incr_method(ds);
  core::IncrementalStrategy incr_strategy;
  core::ApproxItSession incr_session(incr_method, incr_strategy, alu);
  incr_session.set_characterization(characterization);
  const core::RunReport incr = incr_session.run();
  const double incr_qem =
      coefficient_l2_error(incr_method.coefficients(), w_truth);
  EXPECT_LT(incr_qem, l1_qem / 100.0);
  EXPECT_LT(incr.total_energy, truth.total_energy);
}

}  // namespace
}  // namespace approxit::apps
