#include "apps/autoregression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "arith/context.h"
#include "la/decomp.h"
#include "workloads/datasets.h"

namespace approxit::apps {
namespace {

workloads::TimeSeriesDataset small_series() {
  auto ds = workloads::make_financial_series(800, 100.0, 2e-4, 0.01, 21,
                                             /*return_autocorr=*/0.6);
  ds.ar_order = 4;
  ds.max_iter = 2000;
  ds.convergence_tol = 1e-13;
  return ds;
}

TEST(AutoRegression, RejectsShortSeries) {
  workloads::TimeSeriesDataset tiny;
  tiny.values = {1.0, 2.0, 3.0};
  tiny.ar_order = 10;
  EXPECT_THROW(AutoRegression m(tiny), std::invalid_argument);
}

TEST(AutoRegression, RejectsBadResilientFraction) {
  const auto ds = small_series();
  ArOptions options;
  options.resilient_fraction = 1.5;
  EXPECT_THROW(AutoRegression(ds, options), std::invalid_argument);
}

TEST(AutoRegression, DesignShapeAndDefaults) {
  const auto ds = small_series();
  AutoRegression m(ds);
  EXPECT_EQ(m.dimension(), 4u);
  // Returns series has length-1 entries; design drops `order` more.
  EXPECT_EQ(m.samples(), 800u - 1u - 4u);
  EXPECT_GT(m.step_size(), 0.0);
  EXPECT_EQ(m.name(), "autoregression");
}

TEST(AutoRegression, ObjectiveDecreasesExact) {
  const auto ds = small_series();
  AutoRegression m(ds);
  arith::ExactContext ctx;
  double prev = m.objective();
  for (int k = 0; k < 50; ++k) {
    const opt::IterationStats stats = m.iterate(ctx);
    EXPECT_LE(stats.objective_after, prev + 1e-12);
    prev = stats.objective_after;
  }
}

TEST(AutoRegression, ConvergesTowardNormalEquationSolution) {
  const auto ds = small_series();
  AutoRegression m(ds);
  arith::ExactContext ctx;
  for (std::size_t k = 0; k < ds.max_iter; ++k) {
    if (m.iterate(ctx).converged) break;
  }
  // Compare against the closed-form least-squares gradient: it must be
  // (nearly) zero at the fitted coefficients.
  const std::vector<double> w(m.coefficients().begin(),
                              m.coefficients().end());
  AutoRegression probe(ds);
  probe.restore(w);
  arith::ExactContext exact;
  const opt::IterationStats stats = probe.iterate(exact);
  EXPECT_LT(stats.grad_norm, 1e-4);
}

TEST(AutoRegression, RecoversGeneratorMomentum) {
  // Returns follow AR(1) with rho = 0.6: the fitted first lag coefficient
  // should be near 0.6 and dominate the others.
  const auto ds = small_series();
  AutoRegression m(ds);
  arith::ExactContext ctx;
  for (std::size_t k = 0; k < ds.max_iter; ++k) {
    if (m.iterate(ctx).converged) break;
  }
  EXPECT_NEAR(m.coefficients()[0], 0.6, 0.15);
  EXPECT_GT(std::abs(m.coefficients()[0]), std::abs(m.coefficients()[2]));
}

TEST(AutoRegression, ResetClearsCoefficients) {
  const auto ds = small_series();
  AutoRegression m(ds);
  arith::ExactContext ctx;
  m.iterate(ctx);
  m.reset();
  for (double w : m.coefficients()) {
    EXPECT_DOUBLE_EQ(w, 0.0);
  }
}

TEST(AutoRegression, SnapshotRestoreRoundTrip) {
  const auto ds = small_series();
  AutoRegression m(ds);
  arith::ExactContext ctx;
  m.iterate(ctx);
  const std::vector<double> snapshot = m.state();
  const double f = m.objective();
  m.iterate(ctx);
  m.restore(snapshot);
  EXPECT_DOUBLE_EQ(m.objective(), f);
  EXPECT_THROW(m.restore({1.0}), std::invalid_argument);
}

TEST(AutoRegression, ApproximateModeRecordsOnlyResilientOps) {
  const auto ds = small_series();
  // With resilient_fraction 0 every sample is error-sensitive: no ALU ops.
  ArOptions none;
  none.resilient_fraction = 0.0;
  AutoRegression m_none(ds, none);
  arith::QcsAlu alu(ar_qcs_config());
  alu.set_mode(arith::ApproxMode::kLevel2);
  m_none.iterate(alu);
  // Only the coefficient update (order ops/iteration) goes through the ALU.
  EXPECT_LE(alu.ledger().total_ops(), 2u * m_none.dimension());

  alu.reset_ledger();
  AutoRegression m_all(ds, ArOptions{.resilient_fraction = 1.0});
  m_all.iterate(alu);
  EXPECT_GT(alu.ledger().total_ops(), m_all.samples());
}

TEST(AutoRegression, MeanSquaredErrorConsistentWithObjective) {
  const auto ds = small_series();
  AutoRegression m(ds);
  EXPECT_DOUBLE_EQ(m.mean_squared_error(), 2.0 * m.objective());
}

TEST(CoefficientL2Error, ComputesDistance) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {4.0, 6.0};
  EXPECT_DOUBLE_EQ(coefficient_l2_error(a, b), 5.0);
  EXPECT_THROW(coefficient_l2_error(a, {{1.0}}), std::invalid_argument);
}

TEST(ArQcsConfig, WideFormatWithDeeperLadder) {
  const arith::QcsConfig config = ar_qcs_config();
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.format.total_bits, 48u);
  EXPECT_EQ(config.format.frac_bits, 32u);
  EXPECT_NO_THROW(arith::QcsAlu alu(config));
}

}  // namespace
}  // namespace approxit::apps
