// Asserts the zero-allocation contract of the application iteration hot
// paths: after warm-up, steady-state GmmEm, AutoRegression, PageRank and
// sparse ConjugateGradientSolver iterations perform no heap allocation —
// every temporary lives in a member arena (sized in reset()) or on the
// stack (the ALU's span chunks).
//
// The check uses a replacement global operator new that counts allocations
// while a flag is armed. This file must be its own test binary: the
// replacement is program-wide.
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "apps/autoregression.h"
#include "apps/gmm.h"
#include "apps/pagerank.h"
#include "arith/alu.h"
#include "arith/context.h"
#include "opt/conjugate_gradient.h"
#include "workloads/datasets.h"
#include "workloads/graphs.h"

namespace {

std::atomic<long long> g_allocations{0};
std::atomic<bool> g_armed{false};

void* counted_alloc(std::size_t size) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace approxit::apps {
namespace {

/// Counts heap allocations performed by `body`.
template <typename Body>
long long count_allocations(Body&& body) {
  const long long before = g_allocations.load(std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
  body();
  g_armed.store(false, std::memory_order_relaxed);
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(ZeroAlloc, GmmIterationsAreAllocationFree) {
  const auto dataset = workloads::make_gaussian_blobs(3, 300, 2, 8.0, 0.8, 7);
  GmmEm gmm(dataset);
  arith::QcsAlu alu;
  alu.set_mode(arith::ApproxMode::kLevel2);

  // Warm-up: first iterations may still grow arenas to their steady size.
  for (int i = 0; i < 3; ++i) (void)gmm.iterate(alu);

  const long long allocs = count_allocations([&] {
    for (int i = 0; i < 5; ++i) (void)gmm.iterate(alu);
  });
  EXPECT_EQ(allocs, 0) << "GMM steady-state iterate() allocated";
}

TEST(ZeroAlloc, GmmIterationsAreAllocationFreeExactContext) {
  const auto dataset = workloads::make_gaussian_blobs(3, 300, 2, 8.0, 0.8, 7);
  GmmEm gmm(dataset);
  arith::ExactContext exact;
  for (int i = 0; i < 3; ++i) (void)gmm.iterate(exact);

  const long long allocs = count_allocations([&] {
    for (int i = 0; i < 5; ++i) (void)gmm.iterate(exact);
  });
  EXPECT_EQ(allocs, 0);
}

TEST(ZeroAlloc, AutoRegressionIterationsAreAllocationFree) {
  auto dataset = workloads::make_financial_series(800, 100.0, 2e-4, 0.01, 21,
                                                  /*return_autocorr=*/0.6);
  dataset.ar_order = 4;
  AutoRegression ar(dataset);
  arith::QcsAlu alu(ar_qcs_config());
  alu.set_mode(arith::ApproxMode::kLevel2);

  for (int i = 0; i < 3; ++i) (void)ar.iterate(alu);

  const long long allocs = count_allocations([&] {
    for (int i = 0; i < 5; ++i) (void)ar.iterate(alu);
  });
  EXPECT_EQ(allocs, 0) << "AR steady-state iterate() allocated";
}

TEST(ZeroAlloc, AutoRegressionIterationsAreAllocationFreeExactContext) {
  auto dataset = workloads::make_financial_series(800, 100.0, 2e-4, 0.01, 21,
                                                  /*return_autocorr=*/0.6);
  dataset.ar_order = 4;
  AutoRegression ar(dataset);
  arith::ExactContext exact;
  for (int i = 0; i < 3; ++i) (void)ar.iterate(exact);

  const long long allocs = count_allocations([&] {
    for (int i = 0; i < 5; ++i) (void)ar.iterate(exact);
  });
  EXPECT_EQ(allocs, 0);
}

TEST(ZeroAlloc, PageRankIterationsAreAllocationFree) {
  const auto graph = workloads::make_web_graph(600, 6, 31);
  PageRankOptions options;
  // Sharded but single-threaded: the shard loop runs inline (the
  // threaded path's std::function dispatch is outside this contract).
  options.spmv = {.shards = 4, .threads = 1};
  PageRank pr(graph, options);
  arith::QcsAlu alu(pagerank_qcs_config());
  alu.set_mode(arith::ApproxMode::kLevel2);

  // Warm-up also covers the SpmvWorkspace's lazy first-use prepare().
  for (int i = 0; i < 3; ++i) (void)pr.iterate(alu);

  const long long allocs = count_allocations([&] {
    for (int i = 0; i < 5; ++i) (void)pr.iterate(alu);
  });
  EXPECT_EQ(allocs, 0) << "PageRank steady-state iterate() allocated";
}

TEST(ZeroAlloc, PageRankIterationsAreAllocationFreeExactContext) {
  const auto graph = workloads::make_web_graph(600, 6, 31);
  PageRank pr(graph);
  arith::ExactContext exact;
  for (int i = 0; i < 3; ++i) (void)pr.iterate(exact);

  const long long allocs = count_allocations([&] {
    for (int i = 0; i < 5; ++i) (void)pr.iterate(exact);
  });
  EXPECT_EQ(allocs, 0);
}

TEST(ZeroAlloc, SparseCgIterationsAreAllocationFree) {
  const std::size_t grid = 24;
  la::CsrMatrix a = workloads::make_stencil_laplacian(grid, grid);
  const std::size_t n = a.rows();
  opt::CgConfig config;
  config.spmv = {.shards = 4, .threads = 1};
  opt::ConjugateGradientSolver cg(std::move(a), std::vector<double>(n, 1.0),
                                  std::vector<double>(n, 0.0), config);
  arith::QcsAlu alu;
  alu.set_mode(arith::ApproxMode::kLevel3);

  for (int i = 0; i < 3; ++i) (void)cg.iterate(alu);

  const long long allocs = count_allocations([&] {
    for (int i = 0; i < 5; ++i) (void)cg.iterate(alu);
  });
  EXPECT_EQ(allocs, 0) << "sparse CG steady-state iterate() allocated";
}

TEST(ZeroAlloc, HookIsLive) {
  // Sanity-check the counting hook itself so a silent miscompile cannot
  // turn the suite vacuous.
  const long long allocs = count_allocations([] {
    std::vector<double>* v = new std::vector<double>(100, 1.0);
    delete v;
  });
  EXPECT_GE(allocs, 1);
}

}  // namespace
}  // namespace approxit::apps
