#include "workloads/datasets.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace approxit::workloads {
namespace {

TEST(GmmDatasets, Table2SizesAndParameters) {
  const GmmDataset c3 = make_gmm_dataset(GmmDatasetId::k3cluster);
  EXPECT_EQ(c3.name, "3cluster");
  EXPECT_EQ(c3.size(), 1000u);
  EXPECT_EQ(c3.dim, 2u);
  EXPECT_EQ(c3.num_clusters, 3u);
  EXPECT_EQ(c3.max_iter, 500u);
  EXPECT_DOUBLE_EQ(c3.convergence_tol, 1e-10);

  const GmmDataset d3 = make_gmm_dataset(GmmDatasetId::k3d3cluster);
  EXPECT_EQ(d3.size(), 1900u);
  EXPECT_EQ(d3.dim, 3u);
  EXPECT_EQ(d3.num_clusters, 3u);
  EXPECT_DOUBLE_EQ(d3.convergence_tol, 1e-6);

  const GmmDataset c4 = make_gmm_dataset(GmmDatasetId::k4cluster);
  EXPECT_EQ(c4.size(), 2350u);
  EXPECT_EQ(c4.dim, 2u);
  EXPECT_EQ(c4.num_clusters, 4u);
}

TEST(GmmDatasets, Deterministic) {
  const GmmDataset a = make_gmm_dataset(GmmDatasetId::k3cluster);
  const GmmDataset b = make_gmm_dataset(GmmDatasetId::k3cluster);
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(GmmDatasets, LabelsInRange) {
  for (GmmDatasetId id : all_gmm_datasets()) {
    const GmmDataset ds = make_gmm_dataset(id);
    ASSERT_EQ(ds.labels.size(), ds.size());
    for (int label : ds.labels) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, static_cast<int>(ds.num_clusters));
    }
  }
}

TEST(GmmDatasets, EveryClusterPopulated) {
  for (GmmDatasetId id : all_gmm_datasets()) {
    const GmmDataset ds = make_gmm_dataset(id);
    std::vector<int> counts(ds.num_clusters, 0);
    for (int label : ds.labels) ++counts[static_cast<std::size_t>(label)];
    for (int c : counts) {
      EXPECT_GT(c, static_cast<int>(ds.size() / 10));
    }
  }
}

TEST(SeriesDatasets, Table2SizesAndParameters) {
  const TimeSeriesDataset hs = make_series_dataset(SeriesId::kHangSeng);
  EXPECT_EQ(hs.values.size(), 6694u);
  EXPECT_EQ(hs.ar_order, 10u);
  EXPECT_EQ(hs.max_iter, 1000u);
  EXPECT_DOUBLE_EQ(hs.convergence_tol, 1e-13);

  EXPECT_EQ(make_series_dataset(SeriesId::kNasdaq).values.size(), 10799u);
  EXPECT_EQ(make_series_dataset(SeriesId::kSp500).values.size(), 16080u);
}

TEST(SeriesDatasets, PositiveLevels) {
  for (SeriesId id : all_series_datasets()) {
    const TimeSeriesDataset ds = make_series_dataset(id);
    for (double v : ds.values) {
      ASSERT_GT(v, 0.0) << ds.name;
    }
  }
}

TEST(SeriesDatasets, Deterministic) {
  const auto a = make_series_dataset(SeriesId::kSp500);
  const auto b = make_series_dataset(SeriesId::kSp500);
  EXPECT_EQ(a.values, b.values);
}

TEST(GaussianBlobs, RespectsParameters) {
  const GmmDataset ds = make_gaussian_blobs(4, 800, 3, 6.0, 1.0, 42);
  EXPECT_EQ(ds.size(), 800u);
  EXPECT_EQ(ds.dim, 3u);
  EXPECT_EQ(ds.num_clusters, 4u);
  EXPECT_EQ(ds.points.size(), 800u * 3u);
}

TEST(GaussianBlobs, RejectsDegenerateArguments) {
  EXPECT_THROW(make_gaussian_blobs(0, 10, 2, 1.0, 1.0, 1),
               std::invalid_argument);
  EXPECT_THROW(make_gaussian_blobs(2, 10, 0, 1.0, 1.0, 1),
               std::invalid_argument);
}

TEST(FinancialSeries, LengthAndStart) {
  const TimeSeriesDataset ds = make_financial_series(500, 100.0, 0.0, 0.01, 5);
  EXPECT_EQ(ds.values.size(), 500u);
  // First value is one step from the start (multiplicative shock).
  EXPECT_NEAR(ds.values[0], 100.0, 20.0);
}

TEST(FinancialSeries, AutocorrelationKnobWorks) {
  // Log-return lag-1 autocorrelation should track the requested value.
  auto returns = [](const TimeSeriesDataset& ds) {
    std::vector<double> r;
    for (std::size_t i = 1; i < ds.values.size(); ++i) {
      r.push_back(std::log(ds.values[i] / ds.values[i - 1]));
    }
    return r;
  };
  const auto uncorrelated =
      returns(make_financial_series(8000, 100.0, 0.0, 0.01, 11, 0.0));
  const auto correlated =
      returns(make_financial_series(8000, 100.0, 0.0, 0.01, 11, 0.8));

  auto lag1 = [](const std::vector<double>& r) {
    std::vector<double> a(r.begin(), r.end() - 1);
    std::vector<double> b(r.begin() + 1, r.end());
    return util::correlation(a, b);
  };
  EXPECT_NEAR(lag1(uncorrelated), 0.0, 0.1);
  EXPECT_NEAR(lag1(correlated), 0.8, 0.1);
}

TEST(FinancialSeries, RejectsZeroLength) {
  EXPECT_THROW(make_financial_series(0, 1.0, 0.0, 0.01, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace approxit::workloads
