#include "workloads/graphs.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "la/matrix.h"
#include "la/sparse.h"

namespace approxit::workloads {
namespace {

TEST(WebGraph, RespectsShape) {
  const WebGraph g = make_web_graph(500, 4, 7);
  EXPECT_EQ(g.nodes, 500u);
  EXPECT_EQ(g.out_links.size(), 500u);
  EXPECT_GT(g.edges(), 500u);
  // Node 0 never links (it is the seed node).
  for (std::size_t u = 0; u < g.nodes; ++u) {
    for (std::uint32_t v : g.out_links[u]) {
      EXPECT_LT(v, u) << "links must point to earlier nodes";
    }
  }
}

TEST(WebGraph, Deterministic) {
  const WebGraph a = make_web_graph(200, 3, 11);
  const WebGraph b = make_web_graph(200, 3, 11);
  ASSERT_EQ(a.nodes, b.nodes);
  for (std::size_t u = 0; u < a.nodes; ++u) {
    EXPECT_EQ(a.out_links[u], b.out_links[u]);
  }
}

TEST(WebGraph, LinksAreDistinctAndSorted) {
  const WebGraph g = make_web_graph(300, 5, 13);
  for (const auto& links : g.out_links) {
    EXPECT_TRUE(std::is_sorted(links.begin(), links.end()));
    EXPECT_EQ(std::adjacent_find(links.begin(), links.end()), links.end());
  }
}

TEST(WebGraph, DanglingFractionProducesDanglingNodes) {
  const WebGraph g = make_web_graph(1000, 4, 17, 0.1);
  std::size_t dangling = 0;
  for (const auto& links : g.out_links) {
    if (links.empty()) ++dangling;
  }
  EXPECT_GT(dangling, 50u);
  EXPECT_LT(dangling, 200u);
}

TEST(WebGraph, PreferentialAttachmentSkewsInDegree) {
  const WebGraph g = make_web_graph(2000, 4, 19, 0.0);
  std::vector<std::size_t> in_degree(g.nodes, 0);
  for (const auto& links : g.out_links) {
    for (std::uint32_t v : links) ++in_degree[v];
  }
  const std::size_t max_in =
      *std::max_element(in_degree.begin(), in_degree.end());
  const double mean_in =
      static_cast<double>(g.edges()) / static_cast<double>(g.nodes);
  // Heavy tail: the hub's in-degree dwarfs the average.
  EXPECT_GT(static_cast<double>(max_in), 10.0 * mean_in);
}

TEST(WebGraph, Validation) {
  EXPECT_THROW(make_web_graph(1, 2, 1), std::invalid_argument);
  EXPECT_THROW(make_web_graph(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(make_web_graph(10, 2, 1, 1.5), std::invalid_argument);
}

TEST(PageRankTransition, MatchesGraphEdges) {
  const WebGraph g = make_web_graph(400, 4, 23, 0.05);
  const la::CsrMatrix p = pagerank_transition(g);
  EXPECT_EQ(p.rows(), g.nodes);
  EXPECT_EQ(p.cols(), g.nodes);
  EXPECT_EQ(p.nnz(), g.edges());
  // Every edge u -> v appears at (v, u) with value 1/outdeg(u); checking
  // via the dense image keeps the test independent of CSR internals.
  const la::Matrix dense = p.to_dense();
  for (std::size_t u = 0; u < g.nodes; ++u) {
    const double expect = g.out_links[u].empty()
                              ? 0.0
                              : 1.0 / static_cast<double>(g.out_links[u].size());
    for (std::uint32_t v : g.out_links[u]) {
      EXPECT_EQ(dense(v, u), expect);
    }
  }
}

TEST(PageRankTransition, DanglingNodesAreExactlyTheOutlinkless) {
  const WebGraph g = make_web_graph(300, 3, 29, 0.1);
  const auto dangling = dangling_nodes(g);
  EXPECT_TRUE(std::is_sorted(dangling.begin(), dangling.end()));
  std::size_t expect = 0;
  for (const auto& links : g.out_links) {
    if (links.empty()) ++expect;
  }
  EXPECT_EQ(dangling.size(), expect);
  for (const std::uint32_t u : dangling) {
    EXPECT_TRUE(g.out_links[u].empty()) << "node " << u;
  }
}

TEST(StencilLaplacian, ShapeAndSymmetry) {
  const la::CsrMatrix a = make_stencil_laplacian(7, 5);
  EXPECT_EQ(a.rows(), 35u);
  EXPECT_EQ(a.cols(), 35u);
  EXPECT_EQ(a.max_row_nnz(), 5u);
  const la::Matrix dense = a.to_dense();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    EXPECT_EQ(dense(r, r), 4.0);
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(dense(r, c), dense(c, r));
    }
  }
}

TEST(StencilLaplacian, IsPositiveDefiniteOnTestVectors) {
  const la::CsrMatrix a = make_stencil_laplacian(8, 8);
  const std::size_t n = a.rows();
  std::vector<double> x(n), ax(n);
  // x^T A x > 0 for several deterministic non-zero vectors.
  for (int trial = 0; trial < 4; ++trial) {
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = std::sin(0.3 * static_cast<double>(i + 1) *
                      static_cast<double>(trial + 1));
    }
    a.matvec(x, ax);
    double quad = 0.0;
    for (std::size_t i = 0; i < n; ++i) quad += x[i] * ax[i];
    EXPECT_GT(quad, 0.0) << "trial " << trial;
  }
}

TEST(StencilLaplacian, Validation) {
  EXPECT_THROW(make_stencil_laplacian(0, 4), std::invalid_argument);
  EXPECT_THROW(make_stencil_laplacian(4, 0), std::invalid_argument);
}

TEST(Classification, ShapeAndLabels) {
  const ClassificationDataset ds = make_classification(400, 5, 3.0, 23);
  EXPECT_EQ(ds.size(), 400u);
  EXPECT_EQ(ds.dim, 5u);
  EXPECT_EQ(ds.features.size(), 400u * 5u);
  int zeros = 0, ones = 0;
  for (int label : ds.labels) {
    ASSERT_TRUE(label == 0 || label == 1);
    (label == 0 ? zeros : ones)++;
  }
  // Roughly balanced classes.
  EXPECT_GT(zeros, 120);
  EXPECT_GT(ones, 120);
}

TEST(Classification, SeparationMakesClassesSeparable) {
  // With large separation and no label noise, the class means along any
  // coordinate used by the axis should differ measurably.
  const ClassificationDataset ds = make_classification(2000, 3, 8.0, 29, 0.0);
  std::vector<double> mean0(3, 0.0), mean1(3, 0.0);
  int n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    auto& m = ds.labels[i] == 0 ? mean0 : mean1;
    (ds.labels[i] == 0 ? n0 : n1)++;
    for (std::size_t d = 0; d < 3; ++d) m[d] += ds.features[i * 3 + d];
  }
  double gap = 0.0;
  for (std::size_t d = 0; d < 3; ++d) {
    gap += std::abs(mean1[d] / n1 - mean0[d] / n0);
  }
  EXPECT_GT(gap, 2.0);
}

TEST(Classification, Validation) {
  EXPECT_THROW(make_classification(0, 2, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(make_classification(10, 0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(make_classification(10, 2, 1.0, 1, 0.7),
               std::invalid_argument);
}

}  // namespace
}  // namespace approxit::workloads
