// Tests for the stationary (Jacobi/Gauss-Seidel/SOR) and conjugate-gradient
// linear solvers.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "arith/alu.h"
#include "arith/context.h"
#include "la/sparse.h"
#include "la/vector_ops.h"
#include "opt/conjugate_gradient.h"
#include "opt/linear_stationary.h"
#include "util/rng.h"
#include "workloads/graphs.h"

namespace approxit::opt {
namespace {

/// Diagonally dominant SPD system with a known solution.
struct TestSystem {
  la::Matrix a;
  std::vector<double> b;
  std::vector<double> x_true;
};

TestSystem make_system(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  TestSystem sys;
  sys.a = la::Matrix(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) continue;
      const double v = rng.uniform(-1.0, 1.0);
      sys.a(r, c) = v;
      row_sum += std::abs(v);
    }
    sys.a(r, r) = row_sum + 1.0 + rng.uniform(0.0, 1.0);
  }
  // Symmetrize to make CG applicable; diagonal dominance is preserved.
  sys.a = (sys.a + sys.a.transposed()) * 0.5;
  sys.x_true.resize(n);
  for (std::size_t i = 0; i < n; ++i) sys.x_true[i] = rng.uniform(-2.0, 2.0);
  sys.b = sys.a.matvec(sys.x_true);
  return sys;
}

class StationarySchemeTest
    : public ::testing::TestWithParam<StationaryScheme> {};

TEST_P(StationarySchemeTest, ConvergesOnDominantSystem) {
  const TestSystem sys = make_system(8, 42);
  StationaryConfig config;
  config.scheme = GetParam();
  config.relaxation = 1.2;
  config.tolerance = 1e-10;
  config.max_iter = 2000;
  StationarySolver solver(sys.a, sys.b, std::vector<double>(8, 0.0), config);
  arith::ExactContext ctx;
  IterationStats stats;
  std::size_t iters = 0;
  for (; iters < config.max_iter; ++iters) {
    stats = solver.iterate(ctx);
    if (stats.converged) break;
  }
  EXPECT_TRUE(stats.converged) << to_string(GetParam());
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(solver.x()[i], sys.x_true[i], 1e-8);
  }
}

TEST_P(StationarySchemeTest, ResidualDecreasesInitially) {
  const TestSystem sys = make_system(6, 7);
  StationaryConfig config;
  config.scheme = GetParam();
  StationarySolver solver(sys.a, sys.b, std::vector<double>(6, 0.0), config);
  arith::ExactContext ctx;
  const double r0 = solver.residual_norm();
  solver.iterate(ctx);
  EXPECT_LT(solver.residual_norm(), r0);
}

INSTANTIATE_TEST_SUITE_P(Schemes, StationarySchemeTest,
                         ::testing::Values(StationaryScheme::kJacobi,
                                           StationaryScheme::kGaussSeidel,
                                           StationaryScheme::kSor),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(StationarySolver, GaussSeidelFasterThanJacobi) {
  const TestSystem sys = make_system(10, 9);
  auto iterations_for = [&](StationaryScheme scheme) {
    StationaryConfig config;
    config.scheme = scheme;
    config.tolerance = 1e-10;
    config.max_iter = 5000;
    StationarySolver solver(sys.a, sys.b, std::vector<double>(10, 0.0),
                            config);
    arith::ExactContext ctx;
    std::size_t iters = 0;
    for (; iters < config.max_iter; ++iters) {
      if (solver.iterate(ctx).converged) break;
    }
    return iters;
  };
  EXPECT_LT(iterations_for(StationaryScheme::kGaussSeidel),
            iterations_for(StationaryScheme::kJacobi));
}

TEST(StationarySolver, Validation) {
  la::Matrix singular_diag{{0.0, 1.0}, {1.0, 1.0}};
  EXPECT_THROW(StationarySolver(singular_diag, {1.0, 1.0}, {0.0, 0.0}, {}),
               std::invalid_argument);
  EXPECT_THROW(StationarySolver(la::Matrix(2, 3), {1.0, 1.0}, {0.0, 0.0}, {}),
               std::invalid_argument);
  StationaryConfig bad_omega;
  bad_omega.scheme = StationaryScheme::kSor;
  bad_omega.relaxation = 2.5;
  EXPECT_THROW(StationarySolver(la::Matrix::identity(2), {1.0, 1.0},
                                {0.0, 0.0}, bad_omega),
               std::invalid_argument);
}

TEST(StationarySolver, SnapshotRestore) {
  const TestSystem sys = make_system(4, 3);
  StationarySolver solver(sys.a, sys.b, std::vector<double>(4, 0.0), {});
  arith::ExactContext ctx;
  solver.iterate(ctx);
  const auto snapshot = solver.state();
  const double f = solver.objective();
  solver.iterate(ctx);
  solver.restore(snapshot);
  EXPECT_DOUBLE_EQ(solver.objective(), f);
  EXPECT_THROW(solver.restore({1.0}), std::invalid_argument);
}

TEST(StationarySolver, NameMatchesScheme) {
  const TestSystem sys = make_system(3, 5);
  StationaryConfig config;
  config.scheme = StationaryScheme::kSor;
  config.relaxation = 1.5;
  StationarySolver solver(sys.a, sys.b, std::vector<double>(3, 0.0), config);
  EXPECT_EQ(solver.name(), "sor");
}

// --- Conjugate gradient -----------------------------------------------------

TEST(ConjugateGradient, ExactConvergenceWithinNIterations) {
  const TestSystem sys = make_system(12, 21);
  CgConfig config;
  config.tolerance = 1e-9;
  ConjugateGradientSolver solver(sys.a, sys.b, std::vector<double>(12, 0.0),
                                 config);
  arith::ExactContext ctx;
  std::size_t iters = 0;
  for (; iters < 50; ++iters) {
    if (solver.iterate(ctx).converged) break;
  }
  // CG converges in at most n steps in exact arithmetic (plus slack for
  // floating-point effects).
  EXPECT_LE(iters, 14u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(solver.x()[i], sys.x_true[i], 1e-6);
  }
}

TEST(ConjugateGradient, ObjectiveMonotoneExact) {
  const TestSystem sys = make_system(10, 13);
  ConjugateGradientSolver solver(sys.a, sys.b, std::vector<double>(10, 0.0),
                                 {});
  arith::ExactContext ctx;
  double prev = solver.objective();
  for (int k = 0; k < 10; ++k) {
    const IterationStats stats = solver.iterate(ctx);
    EXPECT_LE(stats.objective_after, prev + 1e-10);
    prev = stats.objective_after;
  }
}

TEST(ConjugateGradient, SnapshotIncludesRecurrences) {
  const TestSystem sys = make_system(5, 17);
  ConjugateGradientSolver solver(sys.a, sys.b, std::vector<double>(5, 0.0),
                                 {});
  arith::ExactContext ctx;
  solver.iterate(ctx);
  const auto snapshot = solver.state();
  EXPECT_EQ(snapshot.size(), 15u);  // x | r | p
  solver.iterate(ctx);
  solver.restore(snapshot);
  EXPECT_EQ(solver.state(), snapshot);
  EXPECT_THROW(solver.restore({1.0}), std::invalid_argument);
}

TEST(ConjugateGradient, Validation) {
  EXPECT_THROW(ConjugateGradientSolver(la::Matrix(2, 3), {1.0, 1.0},
                                       {0.0, 0.0}, {}),
               std::invalid_argument);
}

// --- Sparse operator ---------------------------------------------------------

TEST(ConjugateGradient, SparseMatchesDenseOperator) {
  // The same SPD system via the sparse and the dense constructors must
  // produce identical iterates: the sparse A p runs exact arithmetic
  // through the SpMV datapath and matvec/spmv_into agree bitwise.
  la::CsrMatrix sa = workloads::make_stencil_laplacian(6, 6);
  const la::Matrix da = sa.to_dense();
  const std::size_t n = sa.rows();
  const std::vector<double> b(n, 1.0), x0(n, 0.0);
  CgConfig config;
  config.spmv = {.shards = 4, .threads = 2};
  ConjugateGradientSolver sparse(std::move(sa), b, x0, config);
  ConjugateGradientSolver dense(da, b, x0, {});
  EXPECT_TRUE(sparse.sparse());
  EXPECT_FALSE(dense.sparse());
  arith::QcsAlu alu;
  alu.set_mode(arith::ApproxMode::kLevel4);
  for (int k = 0; k < 12; ++k) {
    const IterationStats ss = sparse.iterate(alu);
    const IterationStats ds = dense.iterate(alu);
    ASSERT_EQ(ss.objective_after, ds.objective_after) << "iteration " << k;
    ASSERT_EQ(ss.grad_norm, ds.grad_norm) << "iteration " << k;
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(sparse.x()[i], dense.x()[i]) << "entry " << i;
  }
}

TEST(ConjugateGradient, SparseStencilConvergesExact) {
  la::CsrMatrix a = workloads::make_stencil_laplacian(16, 16);
  const std::size_t n = a.rows();
  // Known solution: b = A x_true.
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = std::sin(0.05 * static_cast<double>(i + 1));
  }
  std::vector<double> b(n, 0.0);
  a.matvec(x_true, b);
  CgConfig config;
  config.tolerance = 1e-8;
  config.max_iter = 600;
  ConjugateGradientSolver solver(std::move(a), std::move(b),
                                 std::vector<double>(n, 0.0), config);
  arith::ExactContext ctx;
  bool converged = false;
  for (std::size_t k = 0; k < config.max_iter && !converged; ++k) {
    converged = solver.iterate(ctx).converged;
  }
  EXPECT_TRUE(converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(solver.x()[i], x_true[i], 1e-6);
  }
}

TEST(ConjugateGradient, SparseValidation) {
  // Non-square operator.
  EXPECT_THROW(
      ConjugateGradientSolver(
          la::CsrMatrix::from_triplets(2, 3, {{0, 0, 1.0}}), {1.0, 1.0},
          {0.0, 0.0}, {}),
      std::invalid_argument);
  // Mismatched right-hand side.
  EXPECT_THROW(
      ConjugateGradientSolver(workloads::make_stencil_laplacian(3, 3),
                              {1.0, 1.0}, {0.0, 0.0}, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace approxit::opt
