#include "opt/logistic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "arith/context.h"
#include "la/decomp.h"
#include "la/vector_ops.h"
#include "opt/gradient_descent.h"
#include "opt/newton.h"
#include "workloads/graphs.h"

namespace approxit::opt {
namespace {

LogisticProblem make_problem(double l2 = 0.0) {
  const auto ds = workloads::make_classification(300, 3, 4.0, 41, 0.02);
  la::Matrix x(ds.size(), ds.dim);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t d = 0; d < ds.dim; ++d) {
      x(i, d) = ds.features[i * ds.dim + d];
    }
  }
  return LogisticProblem(std::move(x), ds.labels, l2);
}

TEST(Sigmoid, StableAtExtremes) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(50.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-50.0), 0.0, 1e-12);
  EXPECT_NEAR(sigmoid(-1000.0), 0.0, 1e-12);  // no overflow
  EXPECT_GT(sigmoid(1.0), sigmoid(-1.0));
}

TEST(Log1pExp, StableAndAccurate) {
  EXPECT_NEAR(log1p_exp(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(log1p_exp(100.0), 100.0, 1e-9);
  EXPECT_NEAR(log1p_exp(-100.0), 0.0, 1e-12);
}

TEST(LogisticProblem, Validation) {
  EXPECT_THROW(LogisticProblem(la::Matrix(2, 2), {0}), std::invalid_argument);
  EXPECT_THROW(LogisticProblem(la::Matrix(1, 1, 1.0), {2}),
               std::invalid_argument);
  EXPECT_THROW(LogisticProblem(la::Matrix(1, 1, 1.0), {0}, -1.0),
               std::invalid_argument);
}

TEST(LogisticProblem, GradientMatchesFiniteDifferences) {
  const LogisticProblem problem = make_problem(0.01);
  arith::ExactContext ctx;
  const std::vector<double> w = {0.2, -0.4, 0.1};
  std::vector<double> analytic(3);
  problem.gradient(w, analytic, ctx);
  std::vector<double> wp = w;
  const double h = 1e-6;
  for (std::size_t j = 0; j < 3; ++j) {
    wp[j] = w[j] + h;
    const double fp = problem.value(wp);
    wp[j] = w[j] - h;
    const double fm = problem.value(wp);
    wp[j] = w[j];
    EXPECT_NEAR(analytic[j], (fp - fm) / (2.0 * h), 1e-5);
  }
}

TEST(LogisticProblem, HessianIsSpdWithRegularization) {
  const LogisticProblem problem = make_problem(0.01);
  la::Matrix h;
  problem.hessian(std::vector<double>{0.1, 0.1, 0.1}, h);
  EXPECT_TRUE(la::cholesky(h).has_value());
  // Symmetry.
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(h(r, c), h(c, r));
    }
  }
}

TEST(LogisticProblem, GradientDescentLearnsSeparableData) {
  const LogisticProblem problem = make_problem(0.01);
  GradientDescentSolver solver(problem, std::vector<double>(3, 0.0),
                               {.step_size = 0.5, .max_iter = 2000,
                                .tolerance = 1e-12});
  arith::ExactContext ctx;
  for (int k = 0; k < 2000; ++k) {
    if (solver.iterate(ctx).converged) break;
  }
  // ~2% label noise: accuracy should approach 1 - noise.
  EXPECT_GT(problem.accuracy(solver.x()), 0.95);
}

TEST(LogisticProblem, NewtonConvergesFasterThanGd) {
  const LogisticProblem problem = make_problem(0.05);
  arith::ExactContext ctx;

  NewtonSolver newton(problem, std::vector<double>(3, 0.0),
                      {.damping = 1.0, .max_iter = 100, .tolerance = 1e-12});
  std::size_t newton_iters = 0;
  for (; newton_iters < 100; ++newton_iters) {
    if (newton.iterate(ctx).converged) break;
  }

  GradientDescentSolver gd(problem, std::vector<double>(3, 0.0),
                           {.step_size = 0.5, .max_iter = 5000,
                            .tolerance = 1e-12});
  std::size_t gd_iters = 0;
  for (; gd_iters < 5000; ++gd_iters) {
    if (gd.iterate(ctx).converged) break;
  }
  EXPECT_LT(newton_iters, gd_iters);
  EXPECT_LT(newton_iters, 30u);  // IRLS is quadratic
}

TEST(LogisticProblem, RegularizationShrinksWeights) {
  const LogisticProblem weak = make_problem(1e-4);
  const LogisticProblem strong = make_problem(1.0);
  arith::ExactContext ctx;
  auto fit = [&ctx](const LogisticProblem& p) {
    GradientDescentSolver solver(p, std::vector<double>(3, 0.0),
                                 {.step_size = 0.5, .max_iter = 3000,
                                  .tolerance = 1e-13});
    for (int k = 0; k < 3000; ++k) {
      if (solver.iterate(ctx).converged) break;
    }
    return la::norm2(solver.x());
  };
  EXPECT_GT(fit(weak), 2.0 * fit(strong));
}

TEST(LogisticProblem, ProbabilitiesInUnitInterval) {
  const LogisticProblem problem = make_problem();
  const auto p = problem.probabilities(std::vector<double>{1.0, -2.0, 0.5});
  for (double pi : p) {
    ASSERT_GE(pi, 0.0);
    ASSERT_LE(pi, 1.0);
  }
}

}  // namespace
}  // namespace approxit::opt
