#include "opt/nonlinear_cg.h"

#include <gtest/gtest.h>

#include "arith/alu.h"
#include "arith/context.h"
#include "la/vector_ops.h"
#include "opt/gradient_descent.h"
#include "opt/line_search.h"
#include "opt/problem.h"

namespace approxit::opt {
namespace {

// --- Line search -------------------------------------------------------------

TEST(LineSearch, AcceptsFullStepWhenSufficient) {
  la::Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  QuadraticProblem problem(a, {0.0, 0.0});
  arith::ExactContext ctx;
  const std::vector<double> x = {2.0, 0.0};
  std::vector<double> g(2);
  problem.gradient(x, g, ctx);
  std::vector<double> d = {-g[0], -g[1]};
  const LineSearchResult result =
      backtracking_line_search(problem, x, d, g);
  EXPECT_TRUE(result.success);
  EXPECT_GT(result.step, 0.0);
  EXPECT_LT(result.objective, problem.value(x));
}

TEST(LineSearch, BacktracksOnOvershoot) {
  la::Matrix a{{100.0, 0.0}, {0.0, 100.0}};  // steep bowl
  QuadraticProblem problem(a, {0.0, 0.0});
  arith::ExactContext ctx;
  const std::vector<double> x = {1.0, 1.0};
  std::vector<double> g(2);
  problem.gradient(x, g, ctx);
  std::vector<double> d = {-g[0], -g[1]};
  LineSearchOptions options;
  options.initial_step = 1.0;  // far too large for curvature 100
  const LineSearchResult result =
      backtracking_line_search(problem, x, d, g, options);
  EXPECT_TRUE(result.success);
  EXPECT_LT(result.step, 1.0);
  EXPECT_GT(result.evaluations, 2u);
}

TEST(LineSearch, FailsOnAscentDirection) {
  la::Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  QuadraticProblem problem(a, {0.0, 0.0});
  arith::ExactContext ctx;
  const std::vector<double> x = {1.0, 0.0};
  std::vector<double> g(2);
  problem.gradient(x, g, ctx);
  const std::vector<double> uphill = {g[0], g[1]};
  const LineSearchResult result =
      backtracking_line_search(problem, x, uphill, g);
  EXPECT_FALSE(result.success);
  EXPECT_DOUBLE_EQ(result.step, 0.0);
}

TEST(LineSearch, ValidatesArguments) {
  la::Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  QuadraticProblem problem(a, {0.0, 0.0});
  const std::vector<double> x = {1.0, 0.0};
  const std::vector<double> short_vec = {1.0};
  EXPECT_THROW(
      backtracking_line_search(problem, x, short_vec, x),
      std::invalid_argument);
  LineSearchOptions bad;
  bad.shrink = 1.5;
  EXPECT_THROW(backtracking_line_search(problem, x, x, x, bad),
               std::invalid_argument);
}

// --- Nonlinear CG ------------------------------------------------------------

class NonlinearCgBetaTest : public ::testing::TestWithParam<CgBeta> {};

TEST_P(NonlinearCgBetaTest, SolvesRosenbrock) {
  RosenbrockProblem problem(2);
  NonlinearCgConfig config;
  config.beta = GetParam();
  config.max_iter = 5000;
  config.tolerance = 1e-14;
  NonlinearCgSolver solver(problem, {-1.2, 1.0}, config);
  arith::ExactContext ctx;
  for (std::size_t k = 0; k < config.max_iter; ++k) {
    if (solver.iterate(ctx).converged) break;
  }
  // The signed convergence check can trip on a line-search stall slightly
  // before the exact optimum; require the valley-floor neighbourhood.
  EXPECT_NEAR(solver.x()[0], 1.0, 0.05);
  EXPECT_NEAR(solver.x()[1], 1.0, 0.05);
  EXPECT_LT(problem.value(std::vector<double>(solver.x().begin(),
                                              solver.x().end())),
            1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Betas, NonlinearCgBetaTest,
    ::testing::Values(CgBeta::kFletcherReeves, CgBeta::kPolakRibierePlus),
    [](const auto& info) {
      return info.param == CgBeta::kFletcherReeves ? "fletcher_reeves"
                                                   : "polak_ribiere_plus";
    });

TEST(NonlinearCg, FasterThanPlainGdOnRosenbrock) {
  RosenbrockProblem problem(2);
  arith::ExactContext ctx;

  NonlinearCgSolver cg(problem, {-1.2, 1.0},
                       {.max_iter = 20000, .tolerance = 1e-13});
  std::size_t cg_iters = 0;
  for (; cg_iters < 20000; ++cg_iters) {
    if (cg.iterate(ctx).converged) break;
  }

  GradientDescentSolver gd(problem, {-1.2, 1.0},
                           {.step_size = 1.5e-3, .max_iter = 20000,
                            .tolerance = 1e-13});
  std::size_t gd_iters = 0;
  for (; gd_iters < 20000; ++gd_iters) {
    if (gd.iterate(ctx).converged) break;
  }
  EXPECT_LT(cg_iters, gd_iters / 4);
}

TEST(NonlinearCg, ObjectiveNonIncreasingExact) {
  RosenbrockProblem problem(4);
  NonlinearCgSolver solver(problem, {-1.0, 0.5, -0.5, 1.5}, {});
  arith::ExactContext ctx;
  double prev = solver.objective();
  for (int k = 0; k < 100; ++k) {
    const IterationStats stats = solver.iterate(ctx);
    EXPECT_LE(stats.objective_after, prev + 1e-10) << "iteration " << k;
    prev = stats.objective_after;
  }
}

TEST(NonlinearCg, SnapshotRestoreRoundTrip) {
  RosenbrockProblem problem(2);
  NonlinearCgSolver solver(problem, {0.0, 0.0}, {});
  arith::ExactContext ctx;
  solver.iterate(ctx);
  const auto snapshot = solver.state();
  EXPECT_EQ(snapshot.size(), 6u);  // x | grad | direction
  const double f = solver.objective();
  solver.iterate(ctx);
  solver.restore(snapshot);
  EXPECT_DOUBLE_EQ(solver.objective(), f);
  EXPECT_EQ(solver.state(), snapshot);
  EXPECT_THROW(solver.restore({1.0}), std::invalid_argument);
}

TEST(NonlinearCg, PeriodicRestartResetsCounter) {
  la::Matrix a{{2.0, 0.0}, {0.0, 1.0}};
  QuadraticProblem problem(a, {1.0, 1.0});
  NonlinearCgConfig config;
  config.restart_period = 3;
  NonlinearCgSolver solver(problem, {5.0, 5.0}, config);
  arith::ExactContext ctx;
  for (int k = 0; k < 3; ++k) solver.iterate(ctx);
  EXPECT_EQ(solver.iterations_since_restart(), 0u);
}

TEST(NonlinearCg, WorksUnderApproximateContext) {
  RosenbrockProblem problem(2);
  NonlinearCgSolver solver(problem, {-1.2, 1.0},
                           {.max_iter = 5000, .tolerance = 1e-13});
  // CG's conjugacy recurrences are sensitive to arithmetic error; give the
  // approximate run a fine-grained datapath (level4 error ~ 8e-6).
  arith::QcsConfig qcs;
  qcs.format = arith::QFormat{32, 24};
  qcs.level_approx_bits = {14, 12, 10, 8};
  arith::QcsAlu alu(qcs);
  alu.set_mode(arith::ApproxMode::kLevel4);
  for (int k = 0; k < 5000; ++k) {
    if (solver.iterate(alu).converged) break;
  }
  // Level4 is near-exact at this format: CG still reaches the valley floor.
  EXPECT_LT(solver.objective(), 1e-2);
  EXPECT_GT(alu.ledger().total_ops(), 0u);
}

TEST(NonlinearCg, ValidatesDimension) {
  RosenbrockProblem problem(3);
  EXPECT_THROW(NonlinearCgSolver(problem, {0.0, 0.0}, {}),
               std::invalid_argument);
}

TEST(NonlinearCg, NameEncodesBeta) {
  RosenbrockProblem problem(2);
  NonlinearCgConfig fr;
  fr.beta = CgBeta::kFletcherReeves;
  EXPECT_EQ(NonlinearCgSolver(problem, {0.0, 0.0}, fr).name(),
            "nonlinear_cg(fletcher_reeves)");
}

}  // namespace
}  // namespace approxit::opt
