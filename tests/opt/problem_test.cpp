#include "opt/problem.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "arith/context.h"
#include "la/vector_ops.h"
#include "util/rng.h"

namespace approxit::opt {
namespace {

/// Central-difference gradient check for any Problem.
void check_gradient(const Problem& problem, std::span<const double> x,
                    double tolerance) {
  arith::ExactContext ctx;
  const std::size_t n = problem.dimension();
  std::vector<double> analytic(n);
  problem.gradient(x, analytic, ctx);

  std::vector<double> xp(x.begin(), x.end());
  const double h = 1e-6;
  for (std::size_t i = 0; i < n; ++i) {
    xp[i] = x[i] + h;
    const double fp = problem.value(xp);
    xp[i] = x[i] - h;
    const double fm = problem.value(xp);
    xp[i] = x[i];
    const double numeric = (fp - fm) / (2.0 * h);
    EXPECT_NEAR(analytic[i], numeric, tolerance)
        << problem.name() << " component " << i;
  }
}

TEST(QuadraticProblem, ValueAndGradient) {
  la::Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  QuadraticProblem problem(a, {1.0, 2.0});
  const std::vector<double> x = {0.5, -0.5};
  // f = 0.5 x^T A x - b^T x.
  const double expected = 0.5 * (4.0 * 0.25 + 2.0 * 0.5 * -0.5 * 1.0 +
                                 3.0 * 0.25) - (0.5 - 1.0);
  EXPECT_NEAR(problem.value(x), expected, 1e-12);
  check_gradient(problem, x, 1e-5);
}

TEST(QuadraticProblem, MinimizerSolvesSystem) {
  la::Matrix a{{2.0, 0.0}, {0.0, 8.0}};
  QuadraticProblem problem(a, {4.0, 8.0});
  // Gradient at x* = A^{-1} b must vanish.
  const std::vector<double> x_star = {2.0, 1.0};
  arith::ExactContext ctx;
  std::vector<double> g(2);
  problem.gradient(x_star, g, ctx);
  EXPECT_NEAR(la::norm2(g), 0.0, 1e-12);
}

TEST(QuadraticProblem, HessianIsA) {
  la::Matrix a{{2.0, 1.0}, {1.0, 5.0}};
  QuadraticProblem problem(a, {0.0, 0.0});
  EXPECT_TRUE(problem.has_hessian());
  la::Matrix h;
  problem.hessian(std::vector<double>{0.0, 0.0}, h);
  EXPECT_EQ(h, a);
}

TEST(QuadraticProblem, RejectsDimensionMismatch) {
  EXPECT_THROW(QuadraticProblem(la::Matrix(2, 3), {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(QuadraticProblem(la::Matrix(2, 2), {1.0}),
               std::invalid_argument);
}

TEST(LeastSquaresProblem, GradientCheck) {
  util::Rng rng(3);
  la::Matrix a(20, 4);
  std::vector<double> y(20);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    y[r] = rng.uniform(-1.0, 1.0);
  }
  LeastSquaresProblem problem(a, y);
  const std::vector<double> x = {0.1, -0.2, 0.3, 0.0};
  check_gradient(problem, x, 1e-5);
}

TEST(LeastSquaresProblem, ZeroResidualAtExactSolution) {
  la::Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> w = {2.0, 3.0};
  const std::vector<double> y = a.matvec(w);
  LeastSquaresProblem problem(a, y);
  EXPECT_NEAR(problem.value(w), 0.0, 1e-14);
  const auto r = problem.residual(w);
  EXPECT_NEAR(la::norm2(r), 0.0, 1e-14);
}

TEST(LeastSquaresProblem, HessianMatchesNormalMatrix) {
  la::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  LeastSquaresProblem problem(a, {0.0, 0.0});
  la::Matrix h;
  problem.hessian(std::vector<double>{0.0, 0.0}, h);
  // (1/m) A^T A with m = 2.
  EXPECT_NEAR(h(0, 0), (1.0 + 9.0) / 2.0, 1e-12);
  EXPECT_NEAR(h(0, 1), (2.0 + 12.0) / 2.0, 1e-12);
  EXPECT_NEAR(h(1, 1), (4.0 + 16.0) / 2.0, 1e-12);
}

TEST(LeastSquaresProblem, RejectsEmptyOrMismatched) {
  EXPECT_THROW(LeastSquaresProblem(la::Matrix(0, 0), {}),
               std::invalid_argument);
  EXPECT_THROW(LeastSquaresProblem(la::Matrix(2, 2), {1.0}),
               std::invalid_argument);
}

TEST(RosenbrockProblem, KnownValues) {
  RosenbrockProblem problem(2);
  EXPECT_DOUBLE_EQ(problem.value(std::vector<double>{1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(problem.value(std::vector<double>{0.0, 0.0}), 1.0);
  check_gradient(problem, std::vector<double>{-0.5, 0.7}, 1e-4);
}

TEST(RosenbrockProblem, HigherDimensionGradientCheck) {
  RosenbrockProblem problem(5);
  const std::vector<double> x = {0.2, -0.3, 0.5, 1.2, -0.8};
  check_gradient(problem, x, 1e-3);
  EXPECT_DOUBLE_EQ(
      problem.value(std::vector<double>(5, 1.0)), 0.0);  // global minimum
}

TEST(RosenbrockProblem, RejectsTooSmallDimension) {
  EXPECT_THROW(RosenbrockProblem(1), std::invalid_argument);
}

TEST(Problem, DefaultHessianThrows) {
  RosenbrockProblem problem(2);
  la::Matrix h;
  EXPECT_FALSE(problem.has_hessian());
  EXPECT_THROW(problem.hessian(std::vector<double>{0.0, 0.0}, h),
               std::logic_error);
}

}  // namespace
}  // namespace approxit::opt
