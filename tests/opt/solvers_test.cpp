// Tests for the generic iterative solvers (gradient descent, Newton) as
// IterativeMethod implementations.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "arith/alu.h"
#include "arith/context.h"
#include "la/vector_ops.h"
#include "opt/gradient_descent.h"
#include "opt/newton.h"
#include "opt/problem.h"

namespace approxit::opt {
namespace {

QuadraticProblem make_quadratic() {
  la::Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  return QuadraticProblem(a, {1.0, 2.0});
}

TEST(GradientDescent, ConvergesOnQuadratic) {
  const QuadraticProblem problem = make_quadratic();
  GdConfig config;
  config.step_size = 0.2;
  config.tolerance = 1e-14;
  config.max_iter = 5000;
  GradientDescentSolver solver(problem, {0.0, 0.0}, config);
  arith::ExactContext ctx;
  IterationStats stats;
  for (std::size_t k = 0; k < config.max_iter; ++k) {
    stats = solver.iterate(ctx);
    if (stats.converged) break;
  }
  EXPECT_TRUE(stats.converged);
  // Minimizer solves A x = b: x = (1/11) * (1, 7).
  EXPECT_NEAR(solver.x()[0], 1.0 / 11.0, 1e-5);
  EXPECT_NEAR(solver.x()[1], 7.0 / 11.0, 1e-5);
}

TEST(GradientDescent, ObjectiveMonotoneWithSafeStep) {
  const QuadraticProblem problem = make_quadratic();
  GradientDescentSolver solver(problem, {3.0, -2.0},
                               {.step_size = 0.1, .max_iter = 100});
  arith::ExactContext ctx;
  double prev = solver.objective();
  for (int k = 0; k < 50; ++k) {
    const IterationStats stats = solver.iterate(ctx);
    EXPECT_LE(stats.objective_after, prev + 1e-12);
    prev = stats.objective_after;
  }
}

TEST(GradientDescent, StatsAreConsistent) {
  const QuadraticProblem problem = make_quadratic();
  GradientDescentSolver solver(problem, {1.0, 1.0},
                               {.step_size = 0.05, .max_iter = 10});
  arith::ExactContext ctx;
  const double f0 = solver.objective();
  const IterationStats stats = solver.iterate(ctx);
  EXPECT_EQ(stats.iteration, 1u);
  EXPECT_DOUBLE_EQ(stats.objective_before, f0);
  EXPECT_DOUBLE_EQ(stats.objective_after, solver.objective());
  EXPECT_GT(stats.step_norm, 0.0);
  EXPECT_GT(stats.grad_norm, 0.0);
  // Plain GD steps along the negative gradient: strictly descent-aligned.
  EXPECT_LT(stats.grad_dot_step, 0.0);
}

TEST(GradientDescent, ResetRestoresInitialState) {
  const QuadraticProblem problem = make_quadratic();
  GradientDescentSolver solver(problem, {2.0, 2.0},
                               {.step_size = 0.1, .max_iter = 10});
  arith::ExactContext ctx;
  const double f0 = solver.objective();
  solver.iterate(ctx);
  solver.iterate(ctx);
  solver.reset();
  EXPECT_DOUBLE_EQ(solver.objective(), f0);
  EXPECT_DOUBLE_EQ(solver.x()[0], 2.0);
}

TEST(GradientDescent, SnapshotRestoreRoundTrip) {
  const QuadraticProblem problem = make_quadratic();
  GradientDescentSolver solver(problem, {2.0, 2.0},
                               {.step_size = 0.1, .momentum = 0.5});
  arith::ExactContext ctx;
  solver.iterate(ctx);
  const std::vector<double> snapshot = solver.state();
  const double f_snap = solver.objective();
  solver.iterate(ctx);
  solver.restore(snapshot);
  EXPECT_DOUBLE_EQ(solver.objective(), f_snap);
  EXPECT_EQ(solver.state(), snapshot);
}

TEST(GradientDescent, RestoreRejectsBadSize) {
  const QuadraticProblem problem = make_quadratic();
  GradientDescentSolver solver(problem, {0.0, 0.0}, {});
  EXPECT_THROW(solver.restore({1.0}), std::invalid_argument);
}

TEST(GradientDescent, MomentumAcceleratesIllConditioned) {
  la::Matrix a{{100.0, 0.0}, {0.0, 1.0}};
  QuadraticProblem problem(a, {1.0, 1.0});
  auto run = [&](double momentum) {
    GradientDescentSolver solver(
        problem, {0.0, 0.0},
        {.step_size = 0.009, .momentum = momentum, .max_iter = 20000,
         .tolerance = 1e-16});
    arith::ExactContext ctx;
    std::size_t iters = 0;
    for (; iters < 20000; ++iters) {
      if (solver.iterate(ctx).converged) break;
    }
    return iters;
  };
  EXPECT_LT(run(0.8), run(0.0));
}

TEST(GradientDescent, NamesReflectMomentum) {
  const QuadraticProblem problem = make_quadratic();
  GradientDescentSolver plain(problem, {0.0, 0.0}, {.momentum = 0.0});
  GradientDescentSolver heavy(problem, {0.0, 0.0}, {.momentum = 0.5});
  EXPECT_EQ(plain.name(), "gradient_descent");
  EXPECT_EQ(heavy.name(), "momentum_gd");
}

TEST(GradientDescent, ValidatesConfig) {
  const QuadraticProblem problem = make_quadratic();
  EXPECT_THROW(
      GradientDescentSolver(problem, {0.0}, {}),
      std::invalid_argument);  // wrong dimension
  EXPECT_THROW(GradientDescentSolver(problem, {0.0, 0.0}, {.step_size = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(GradientDescentSolver(problem, {0.0, 0.0}, {.momentum = 1.0}),
               std::invalid_argument);
}

TEST(GradientDescent, ApproximateContextDegradesDirection) {
  const QuadraticProblem problem = make_quadratic();
  arith::QcsAlu alu;
  alu.set_mode(arith::ApproxMode::kLevel1);
  GradientDescentSolver solver(problem, {3.0, 3.0},
                               {.step_size = 0.1, .max_iter = 50});
  double worst_gap = 0.0;
  for (int k = 0; k < 20; ++k) {
    solver.iterate(alu);
  }
  // The approximate run should not reach the exact-run objective precision.
  GradientDescentSolver exact_solver(problem, {3.0, 3.0},
                                     {.step_size = 0.1, .max_iter = 50});
  arith::ExactContext exact;
  for (int k = 0; k < 20; ++k) {
    exact_solver.iterate(exact);
  }
  worst_gap = std::abs(solver.objective() - exact_solver.objective());
  EXPECT_GT(worst_gap, 1e-9);
  EXPECT_GT(alu.ledger().total_ops(), 0u);
}

// --- Newton ----------------------------------------------------------------

TEST(Newton, OneStepSolvesQuadratic) {
  const QuadraticProblem problem = make_quadratic();
  NewtonSolver solver(problem, {5.0, -3.0}, {.damping = 1.0, .ridge = 0.0});
  arith::ExactContext ctx;
  const IterationStats stats = solver.iterate(ctx);
  // Newton on a quadratic converges in one full step.
  EXPECT_NEAR(solver.x()[0], 1.0 / 11.0, 1e-9);
  EXPECT_NEAR(solver.x()[1], 7.0 / 11.0, 1e-9);
  EXPECT_LT(stats.objective_after, stats.objective_before);
}

TEST(Newton, DampedStepsConverge) {
  const QuadraticProblem problem = make_quadratic();
  NewtonSolver solver(problem, {5.0, -3.0},
                      {.damping = 0.5, .max_iter = 100, .tolerance = 1e-14});
  arith::ExactContext ctx;
  IterationStats stats;
  for (int k = 0; k < 100; ++k) {
    stats = solver.iterate(ctx);
    if (stats.converged) break;
  }
  EXPECT_NEAR(solver.x()[0], 1.0 / 11.0, 1e-5);
}

TEST(Newton, RequiresHessian) {
  RosenbrockProblem rosenbrock(2);
  EXPECT_THROW(NewtonSolver(rosenbrock, {0.0, 0.0}, {}),
               std::invalid_argument);
}

TEST(Newton, ValidatesConfig) {
  const QuadraticProblem problem = make_quadratic();
  EXPECT_THROW(NewtonSolver(problem, {0.0, 0.0}, {.damping = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(NewtonSolver(problem, {0.0, 0.0}, {.damping = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(NewtonSolver(problem, {0.0}, {}), std::invalid_argument);
}

TEST(Newton, SnapshotRestore) {
  const QuadraticProblem problem = make_quadratic();
  NewtonSolver solver(problem, {1.0, 1.0}, {.damping = 0.5});
  arith::ExactContext ctx;
  const std::vector<double> snapshot = solver.state();
  solver.iterate(ctx);
  solver.restore(snapshot);
  EXPECT_EQ(solver.state(), snapshot);
  EXPECT_THROW(solver.restore({1.0, 2.0, 3.0}), std::invalid_argument);
}

}  // namespace
}  // namespace approxit::opt
