// Loopback integration for the socket front end: a real NetServer on a
// real Unix-domain (and TCP) socket, exercised by real LineClients over
// concurrent connections. Covered here because only the full stack shows
// it: per-job causal event order across the sink -> post -> drain path,
// byte-identical terminal reports between the socket and the in-process
// transport, pipelined request/response order across parking, v1 line
// compatibility on a socket, and the slow-reader backpressure disconnect.
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/server.h"
#include "net/socket.h"
#include "svc/client.h"
#include "svc/protocol.h"

namespace approxit::net {
namespace {

using svc::JobSpec;
using svc::LineClient;
using svc::StreamEvent;

JobSpec quick_job(const std::string& tenant = "default") {
  JobSpec spec;
  spec.tenant = tenant;
  spec.app = "gmm";
  spec.dataset = "3cluster";
  spec.max_iterations = 30;
  spec.characterization_iterations = 4;
  return spec;
}

/// A live server on its own loop thread, torn down on destruction.
class LoopbackServer {
 public:
  explicit LoopbackServer(NetServerConfig net_config = {},
                          svc::ServiceConfig service_config = {}) {
    static std::atomic<int> sequence{0};
    if (net_config.address == NetServerConfig{}.address) {
      net_config.address =
          "unix:/tmp/approxit_lo_" + std::to_string(getpid()) + "_" +
          std::to_string(sequence.fetch_add(1)) + ".sock";
    }
    service_config.threads = std::max<std::size_t>(service_config.threads, 2);
    service_config.cache.directory.clear();
    client_ = std::make_unique<svc::InProcessClient>(
        std::move(service_config));
    server_ = std::make_unique<NetServer>(*client_, net_config);
    std::string error;
    started_ = server_->start(&error);
    EXPECT_TRUE(started_) << error;
    if (started_) thread_ = std::thread([this] { server_->run(); });
  }

  ~LoopbackServer() {
    if (started_) server_->stop();
    if (thread_.joinable()) thread_.join();
    server_.reset();
    client_.reset();
  }

  const std::string& address() const { return server_->listen_address(); }
  svc::InProcessClient& in_process() { return *client_; }
  NetServer& server() { return *server_; }
  /// Joins the loop thread (for shutdown-op tests where the SERVER ends
  /// the run, not the test).
  void join() {
    if (thread_.joinable()) thread_.join();
  }

  std::unique_ptr<LineClient> connect() {
    std::string error;
    auto client = connect_client(address(), &error);
    EXPECT_NE(client, nullptr) << error;
    return client;
  }

 private:
  std::unique_ptr<svc::InProcessClient> client_;
  std::unique_ptr<NetServer> server_;
  std::thread thread_;
  bool started_ = false;
};

/// A raw line-speaking connection for byte-level protocol assertions
/// (pipelining, v1 shapes) that the typed client would paper over.
class RawConn {
 public:
  explicit RawConn(const std::string& address) {
    std::string error;
    const auto parsed = parse_address(address, &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    if (parsed) fd_ = connect_socket(*parsed, &error);
    EXPECT_GE(fd_, 0) << error;
  }
  ~RawConn() {
    if (fd_ >= 0) close(fd_);
  }

  bool send_all(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next full line, or nullopt on EOF/timeout.
  std::optional<std::string> read_line(int timeout_ms = 20000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline -
                                     std::chrono::steady_clock::now());
      if (remaining.count() <= 0) return std::nullopt;
      pollfd pfd{fd_, POLLIN, 0};
      if (poll(&pfd, 1, static_cast<int>(remaining.count())) <= 0) {
        return std::nullopt;
      }
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True once the peer has closed (recv sees EOF/reset).
  bool closed_by_peer(int timeout_ms = 20000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    char chunk[65536];
    while (std::chrono::steady_clock::now() < deadline) {
      pollfd pfd{fd_, POLLIN, 0};
      if (poll(&pfd, 1, 100) <= 0) continue;
      const ssize_t n = recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return true;  // EOF or reset: server dropped us.
    }
    return false;
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

svc::WireObject parsed(const std::string& line) {
  const auto object =
      svc::parse_wire_object(line, nullptr, /*allow_raw_nested=*/true);
  EXPECT_TRUE(object.has_value()) << line;
  return object.value_or(svc::WireObject{});
}

TEST(NetLoopback, HelloRoundTripAndTypedOps) {
  LoopbackServer server;
  const auto client = server.connect();
  ASSERT_NE(client, nullptr);

  std::string error;
  const auto id = client->submit(quick_job(), &error);
  ASSERT_TRUE(id.has_value()) << error;
  // The greeting was consumed en route to the first response.
  ASSERT_TRUE(client->server_proto().has_value());
  EXPECT_EQ(*client->server_proto(), svc::kProtoVersion);

  const auto result = client->result(*id);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->terminal());
  EXPECT_FALSE(result->report_json.empty());

  const auto status = client->status(*id);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->report_json.empty());  // status never carries it.

  const auto stats = client->stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->submitted, 1u);
  EXPECT_EQ(stats->completed, 1u);
  EXPECT_TRUE(client->ok());
}

TEST(NetLoopback, TerminalReportsByteIdenticalToInProcessClient) {
  LoopbackServer server;
  const auto client = server.connect();
  ASSERT_NE(client, nullptr);

  std::string error;
  const auto stream = client->submit_stream(quick_job(), &error);
  ASSERT_NE(stream, nullptr) << error;
  std::optional<StreamEvent> terminal;
  while (const auto event = stream->next()) terminal = *event;
  ASSERT_TRUE(terminal.has_value());
  ASSERT_TRUE(terminal->terminal());
  ASSERT_TRUE(terminal->status.has_value());

  // Same job, read through the IN-PROCESS transport: the report payload
  // must match byte for byte (it travels verbatim as raw nested JSON).
  const auto direct = server.in_process().result(stream->id());
  ASSERT_TRUE(direct.has_value());
  EXPECT_FALSE(direct->report_json.empty());
  EXPECT_EQ(terminal->status->report_json, direct->report_json);

  // And through a second socket op on the same connection.
  const auto socket_result = client->result(stream->id());
  ASSERT_TRUE(socket_result.has_value());
  EXPECT_EQ(socket_result->report_json, direct->report_json);
}

TEST(NetLoopback, ConcurrentStreamsKeepPerJobCausalOrder) {
  constexpr std::size_t kConnections = 8;
  svc::ServiceConfig service;
  service.threads = 4;
  service.progress_every = 8;
  LoopbackServer server({}, std::move(service));

  struct Tail {
    std::vector<StreamEvent> events;
    std::uint64_t id = 0;
    bool ok = false;
  };
  std::vector<Tail> tails(kConnections);
  std::vector<std::thread> threads;
  threads.reserve(kConnections);
  for (std::size_t i = 0; i < kConnections; ++i) {
    threads.emplace_back([&server, &tail = tails[i], i] {
      std::string error;
      const auto client = connect_client(server.address(), &error);
      if (client == nullptr) return;
      const auto stream =
          client->submit_stream(quick_job("tenant-" + std::to_string(i)),
                                &error);
      if (stream == nullptr) return;
      tail.id = stream->id();
      while (const auto event = stream->next()) {
        tail.events.push_back(*event);
      }
      tail.ok = true;
    });
  }
  for (auto& thread : threads) thread.join();

  std::vector<std::uint64_t> ids;
  for (const Tail& tail : tails) {
    ASSERT_TRUE(tail.ok);
    ids.push_back(tail.id);
    ASSERT_GE(tail.events.size(), 3u);
    // Per-job causal order survives the runtime-thread -> post -> drain
    // relay: queued first, running second, monotone progress, terminal
    // last — and every event belongs to THIS connection's job.
    EXPECT_EQ(tail.events.front().event, "queued");
    EXPECT_EQ(tail.events[1].event, "running");
    EXPECT_EQ(tail.events.back().event, "terminal");
    std::size_t last_iteration = 0;
    for (std::size_t i = 2; i + 1 < tail.events.size(); ++i) {
      EXPECT_EQ(tail.events[i].event, "progress");
      EXPECT_GT(tail.events[i].iteration, last_iteration);
      last_iteration = tail.events[i].iteration;
    }
    for (const StreamEvent& event : tail.events) {
      EXPECT_EQ(event.id, tail.id);
    }
    ASSERT_TRUE(tail.events.back().status.has_value());
    EXPECT_FALSE(tail.events.back().status->report_json.empty());
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(NetLoopback, PipelinedRequestsAnswerInOrderAcrossParking) {
  LoopbackServer server;
  RawConn conn(server.address());
  const auto greeting = conn.read_line();
  ASSERT_TRUE(greeting.has_value());
  EXPECT_EQ(parsed(*greeting).get_string("event"), "hello");

  // submit, then IN THE SAME WRITE: result (parks until the job ends),
  // hello, status. Responses must come back strictly in request order.
  ASSERT_TRUE(conn.send_all(
      R"({"op":"submit","app":"gmm","dataset":"3cluster",)"
      R"("max_iterations":30,"characterization_iterations":4})"
      "\n"));
  const auto submit = conn.read_line();
  ASSERT_TRUE(submit.has_value());
  const auto id = parsed(*submit).get_int("id", 0);
  ASSERT_GT(id, 0);

  const std::string id_text = std::to_string(id);
  ASSERT_TRUE(conn.send_all(R"({"op":"result","id":)" + id_text + "}\n" +
                            R"({"op":"hello","proto":2})" + "\n" +
                            R"({"op":"status","id":)" + id_text + "}\n"));
  const auto result = conn.read_line();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(parsed(*result).get_string("op"), "result");
  EXPECT_TRUE(parsed(*result).has("report"));
  const auto hello = conn.read_line();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(parsed(*hello).get_string("op"), "hello");
  const auto status = conn.read_line();
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(parsed(*status).get_string("op"), "status");
  EXPECT_EQ(parsed(*status).get_string("state"), "done");
}

TEST(NetLoopback, V1LinesKeepTheirShapesOverSockets) {
  NetServerConfig net_config;
  net_config.max_line = 4096;  // Small cap so the oversize probe is cheap.
  LoopbackServer server(net_config);
  RawConn conn(server.address());
  ASSERT_TRUE(conn.read_line().has_value());  // Greeting.

  // v1 submit (no proto field) answers the v1 shape.
  ASSERT_TRUE(conn.send_all(
      R"({"op":"submit","app":"gmm","dataset":"3cluster",)"
      R"("max_iterations":30,"characterization_iterations":4})"
      "\n"));
  const auto submit = conn.read_line();
  ASSERT_TRUE(submit.has_value());
  EXPECT_TRUE(parsed(*submit).get_bool("ok", false)) << *submit;

  // Unknown op: error WITHOUT an op echo (frozen v1 shape).
  ASSERT_TRUE(conn.send_all(R"({"op":"frobnicate"})" "\n"));
  const auto unknown = conn.read_line();
  ASSERT_TRUE(unknown.has_value());
  EXPECT_FALSE(parsed(*unknown).get_bool("ok", true));
  EXPECT_FALSE(parsed(*unknown).has("op"));

  // Empty lines are skipped, not answered.
  ASSERT_TRUE(conn.send_all("\n" R"({"op":"hello"})" "\n"));
  const auto hello = conn.read_line();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(parsed(*hello).get_string("op"), "hello");

  // The v1 stats_export alias still answers with content.
  ASSERT_TRUE(conn.send_all(
      R"({"op":"stats_export","format":"prometheus"})" "\n"));
  const auto exported = conn.read_line();
  ASSERT_TRUE(exported.has_value());
  EXPECT_TRUE(parsed(*exported).get_bool("ok", false));
  EXPECT_TRUE(parsed(*exported).has("content"));

  // Malformed JSON and oversize lines answer the exact v1 parse errors.
  ASSERT_TRUE(conn.send_all("not json\n"));
  const auto malformed = conn.read_line();
  ASSERT_TRUE(malformed.has_value());
  EXPECT_NE(malformed->find("parse_error"), std::string::npos);

  const std::string oversize(net_config.max_line + 16, 'x');
  ASSERT_TRUE(conn.send_all(oversize + "\n"));
  const auto too_long = conn.read_line();
  ASSERT_TRUE(too_long.has_value());
  EXPECT_EQ(*too_long,
            R"({"ok":false,"error":"parse_error: line too long"})");

  // The connection survived all of it.
  ASSERT_TRUE(conn.send_all(R"({"op":"stats"})" "\n"));
  EXPECT_TRUE(conn.read_line().has_value());
}

TEST(NetLoopback, SlowReaderIsDisconnectedByBackpressure) {
  NetServerConfig net_config;
  net_config.max_write_buffer = 64 * 1024;
  LoopbackServer server(net_config);

  // Seed one completed job so result responses carry a fat report.
  {
    const auto client = server.connect();
    ASSERT_NE(client, nullptr);
    std::string error;
    const auto id = client->submit(quick_job(), &error);
    ASSERT_TRUE(id.has_value()) << error;
    ASSERT_TRUE(client->result(*id).has_value());
  }

  RawConn conn(server.address());
  // Pipeline several hundred result requests and NEVER read: the kernel
  // buffers fill, the server's outbuf crosses max_write_buffer, and the
  // server must disconnect us rather than buffer without bound.
  std::string burst;
  for (int i = 0; i < 2000; ++i) {
    burst += R"({"op":"result","id":1})" "\n";
  }
  // The send may ITSELF fail once the server drops us mid-burst — that
  // is the disconnect arriving early, not a test failure.
  (void)conn.send_all(burst);

  // Wait for the server to record the disconnect WITHOUT reading from the
  // socket: draining here would relieve the very pressure the test needs
  // a slow server (e.g. under TSan) to accumulate.
  double disconnects = 0.0;
  for (int i = 0; i < 600 && disconnects < 1.0; ++i) {
    const auto counters = server.server().metrics().counter_values();
    const auto it = counters.find("net.backpressure.disconnects");
    if (it != counters.end()) disconnects = it->second;
    if (disconnects < 1.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  EXPECT_GE(disconnects, 1.0);
  EXPECT_TRUE(conn.closed_by_peer());
}

TEST(NetLoopback, StreamOpReplaysTerminalForLateSubscribers) {
  LoopbackServer server;
  const auto client = server.connect();
  ASSERT_NE(client, nullptr);

  std::string error;
  const auto id = client->submit(quick_job(), &error);
  ASSERT_TRUE(id.has_value()) << error;
  ASSERT_TRUE(client->result(*id).has_value());

  const auto stream = client->stream(*id);
  ASSERT_NE(stream, nullptr);
  const auto replay = stream->next();
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(replay->terminal());
  ASSERT_TRUE(replay->status.has_value());
  EXPECT_FALSE(replay->status->report_json.empty());
  EXPECT_FALSE(stream->next().has_value());

  EXPECT_EQ(client->stream(99999), nullptr);
  EXPECT_TRUE(client->ok());  // The error came as a response, not a break.
}

TEST(NetLoopback, TcpLoopbackAndEphemeralPortResolution) {
  NetServerConfig net_config;
  net_config.address = ":0";
  LoopbackServer server(net_config);
  // The resolved address carries a concrete port.
  const std::string& address = server.address();
  const std::size_t colon = address.rfind(':');
  ASSERT_NE(colon, std::string::npos);
  const std::string port = address.substr(colon + 1);
  EXPECT_NE(port, "0");

  std::string error;
  const auto client =
      connect_client("tcp:127.0.0.1:" + port, &error);
  ASSERT_NE(client, nullptr) << error;
  const auto id = client->submit(quick_job(), &error);
  ASSERT_TRUE(id.has_value()) << error;
  const auto result = client->result(*id);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->terminal());
}

TEST(NetLoopback, ShutdownOpDrainsAndStopsTheServer) {
  LoopbackServer server;
  const auto client = server.connect();
  ASSERT_NE(client, nullptr);
  std::string error;
  const auto id = client->submit(quick_job(), &error);
  ASSERT_TRUE(id.has_value()) << error;

  EXPECT_TRUE(client->shutdown());
  server.join();  // run() returns because the OP stopped the loop.

  // The runtime drained before the stop: the job is terminal.
  const auto result = server.in_process().status(*id);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->terminal());
}

}  // namespace
}  // namespace approxit::net
