// EventLoop coverage, run over BOTH backends (epoll where the platform
// has it, poll everywhere): readiness dispatch, interest updates, the
// thread-safe post() wakeup, stop() semantics, and the generation guard
// that keeps a recycled fd number from receiving a stale callback within
// one readiness batch.
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/event_loop.h"

namespace approxit::net {
namespace {

std::vector<EventLoop::Backend> backends_under_test() {
  std::vector<EventLoop::Backend> backends = {EventLoop::Backend::kPoll};
  if (EventLoop::default_backend() == EventLoop::Backend::kEpoll) {
    backends.push_back(EventLoop::Backend::kEpoll);
  }
  return backends;
}

/// A nonblocking pipe pair, closed on destruction (ends may be disowned).
struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
  Pipe() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(pipe(fds), 0);
    read_fd = fds[0];
    write_fd = fds[1];
    fcntl(read_fd, F_SETFL, O_NONBLOCK);
    fcntl(write_fd, F_SETFL, O_NONBLOCK);
  }
  ~Pipe() {
    if (read_fd >= 0) close(read_fd);
    if (write_fd >= 0) close(write_fd);
  }
};

TEST(EventLoop, DispatchesReadReadiness) {
  for (const auto backend : backends_under_test()) {
    EventLoop loop(backend);
    // fd_count() includes the internal wakeup pipe; measure relatively.
    const std::size_t baseline = loop.fd_count();
    Pipe pipe;
    std::string received;
    loop.add(pipe.read_fd, /*want_read=*/true, /*want_write=*/false,
             [&](std::uint32_t mask) {
               EXPECT_NE(mask & kEventRead, 0u);
               char buffer[16];
               const ssize_t n = read(pipe.read_fd, buffer, sizeof buffer);
               ASSERT_GT(n, 0);
               received.append(buffer, static_cast<std::size_t>(n));
             });
    EXPECT_EQ(loop.fd_count(), baseline + 1);

    // Nothing ready yet: a zero-timeout pass dispatches nothing.
    loop.run_once(0);
    EXPECT_TRUE(received.empty());

    ASSERT_EQ(write(pipe.write_fd, "hi", 2), 2);
    loop.run_once(1000);
    EXPECT_EQ(received, "hi");

    loop.remove(pipe.read_fd);
    EXPECT_EQ(loop.fd_count(), baseline);
  }
}

TEST(EventLoop, WriteInterestTogglesViaModify) {
  for (const auto backend : backends_under_test()) {
    EventLoop loop(backend);
    Pipe pipe;
    int write_ready = 0;
    loop.add(pipe.write_fd, /*want_read=*/false, /*want_write=*/false,
             [&](std::uint32_t mask) {
               if (mask & kEventWrite) ++write_ready;
             });
    // No interest: an (always-writable) pipe end stays silent.
    loop.run_once(0);
    EXPECT_EQ(write_ready, 0);

    loop.modify(pipe.write_fd, /*want_read=*/false, /*want_write=*/true);
    loop.run_once(1000);
    EXPECT_EQ(write_ready, 1);

    loop.modify(pipe.write_fd, /*want_read=*/false, /*want_write=*/false);
    loop.run_once(0);
    EXPECT_EQ(write_ready, 1);
  }
}

TEST(EventLoop, PostFromAnotherThreadWakesTheLoop) {
  for (const auto backend : backends_under_test()) {
    EventLoop loop(backend);
    std::atomic<bool> ran{false};
    std::thread poster([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      loop.post([&] {
        ran = true;
        loop.stop();
      });
    });
    // run() must block until the posted task arrives, then stop.
    loop.run();
    poster.join();
    EXPECT_TRUE(ran.load());
  }
}

TEST(EventLoop, StopPreventsFurtherDispatch) {
  for (const auto backend : backends_under_test()) {
    EventLoop loop(backend);
    Pipe pipe;
    int dispatched = 0;
    loop.add(pipe.read_fd, true, false,
             [&](std::uint32_t) { ++dispatched; });
    ASSERT_EQ(write(pipe.write_fd, "x", 1), 1);
    loop.stop();
    // A stopped loop refuses to dispatch even with a ready fd.
    EXPECT_FALSE(loop.run_once(0));
    EXPECT_EQ(dispatched, 0);
  }
}

TEST(EventLoop, RecycledFdInSameBatchIsNotMisdispatched) {
  for (const auto backend : backends_under_test()) {
    EventLoop loop(backend);
    Pipe first;
    Pipe second;
    // Both read ends become ready in the same batch. Whichever callback
    // runs first removes the OTHER registration, closes its fd and pins
    // a fresh (never-readable) pipe onto the SAME fd number with dup2,
    // then re-registers it. The generation guard must drop the stale
    // readiness rather than invoke the new registration with it.
    int stale_dispatches = 0;
    int original_dispatches = 0;
    const auto arm = [&](Pipe& mine, Pipe& other) {
      loop.add(mine.read_fd, true, false, [&](std::uint32_t) {
        ++original_dispatches;
        char buffer[8];
        (void)!read(mine.read_fd, buffer, sizeof buffer);
        loop.remove(other.read_fd);
        int fds[2] = {-1, -1};
        ASSERT_EQ(pipe(fds), 0);
        ASSERT_GE(dup2(fds[0], other.read_fd), 0);
        fcntl(other.read_fd, F_SETFL, O_NONBLOCK);
        close(fds[0]);
        close(fds[1]);  // Write end closed: only EOF-readiness, later.
        loop.add(other.read_fd, true, false,
                 [&](std::uint32_t) { ++stale_dispatches; });
      });
    };
    arm(first, second);
    arm(second, first);
    ASSERT_EQ(write(first.write_fd, "a", 1), 1);
    ASSERT_EQ(write(second.write_fd, "b", 1), 1);

    loop.run_once(1000);
    // Exactly one original callback ran; the recycled registration under
    // the same fd number saw nothing from the stale batch.
    EXPECT_EQ(original_dispatches, 1);
    EXPECT_EQ(stale_dispatches, 0);
  }
}

TEST(EventLoop, ManyPostsRunInOrder) {
  for (const auto backend : backends_under_test()) {
    EventLoop loop(backend);
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      loop.post([&order, i] { order.push_back(i); });
    }
    loop.post([&] { loop.stop(); });
    loop.run();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
  }
}

}  // namespace
}  // namespace approxit::net
