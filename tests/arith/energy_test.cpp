#include "arith/energy.h"

#include <gtest/gtest.h>

#include "arith/approx_adders.h"
#include "arith/exact_adders.h"

namespace approxit::arith {
namespace {

TEST(OperationEnergy, LinearInGateCounts) {
  EnergyParams p;
  GateInventory one_fa;
  one_fa.full_adders = 1;
  GateInventory two_fa;
  two_fa.full_adders = 2;
  EXPECT_DOUBLE_EQ(operation_energy(two_fa, p),
                   2.0 * operation_energy(one_fa, p));
}

TEST(OperationEnergy, GlitchTermGrowsWithDepth) {
  EnergyParams p;
  GateInventory shallow;
  shallow.full_adders = 8;
  shallow.carry_depth = 2;
  GateInventory deep = shallow;
  deep.carry_depth = 16;
  EXPECT_GT(operation_energy(deep, p), operation_energy(shallow, p));
}

TEST(OperationEnergy, EmptyInventoryIsFree) {
  EXPECT_DOUBLE_EQ(operation_energy(GateInventory{}), 0.0);
}

TEST(AdderEnergy, QcsLevelsMonotoneInChainBits) {
  // The per-op energy ordering level1 < level2 < level3 < level4 < accurate
  // is the foundation of the paper's energy-saving claims.
  double previous = 0.0;
  for (unsigned chain : {8u, 12u, 16u, 24u, 32u}) {
    QcsConfigurableAdder adder(32, chain);
    const double e = adder_energy(adder);
    EXPECT_GT(e, previous) << "chain=" << chain;
    previous = e;
  }
}

TEST(AdderEnergy, ApproximateCheaperThanExactSameWidth) {
  RippleCarryAdder exact(32);
  LowerOrAdder loa(32, 16);
  TruncatedAdder trunc(32, 16);
  EXPECT_LT(adder_energy(loa), adder_energy(exact));
  EXPECT_LT(adder_energy(trunc), adder_energy(exact));
}

TEST(GateInventory, SumTakesMaxDepth) {
  GateInventory a;
  a.full_adders = 2;
  a.carry_depth = 5;
  GateInventory b;
  b.or2 = 3;
  b.carry_depth = 9;
  const GateInventory c = a + b;
  EXPECT_EQ(c.full_adders, 2u);
  EXPECT_EQ(c.or2, 3u);
  EXPECT_EQ(c.carry_depth, 9u);
}

TEST(GateInventory, GateEquivalents) {
  GateInventory inv;
  inv.full_adders = 1;  // 5
  inv.half_adders = 1;  // 2
  inv.mux2 = 1;         // 3
  inv.and2 = 1;         // 1
  inv.inverters = 1;    // 1
  EXPECT_EQ(inv.gate_equivalents(), 12u);
}

TEST(EnergyLedger, AccumulatesPerMode) {
  EnergyLedger ledger;
  ledger.record(ApproxMode::kLevel1, 2.0, 3);
  ledger.record(ApproxMode::kAccurate, 10.0);
  EXPECT_DOUBLE_EQ(ledger.energy(ApproxMode::kLevel1), 6.0);
  EXPECT_DOUBLE_EQ(ledger.energy(ApproxMode::kAccurate), 10.0);
  EXPECT_DOUBLE_EQ(ledger.total_energy(), 16.0);
  EXPECT_EQ(ledger.ops(ApproxMode::kLevel1), 3u);
  EXPECT_EQ(ledger.total_ops(), 4u);
}

TEST(EnergyLedger, ResetClearsEverything) {
  EnergyLedger ledger;
  ledger.record(ApproxMode::kLevel2, 1.5, 10);
  ledger.reset();
  EXPECT_DOUBLE_EQ(ledger.total_energy(), 0.0);
  EXPECT_EQ(ledger.total_ops(), 0u);
}

TEST(EnergyLedger, MergeAddsCounts) {
  EnergyLedger a, b;
  a.record(ApproxMode::kLevel1, 1.0, 2);
  b.record(ApproxMode::kLevel1, 1.0, 3);
  b.record(ApproxMode::kLevel3, 4.0, 1);
  a.merge(b);
  EXPECT_EQ(a.ops(ApproxMode::kLevel1), 5u);
  EXPECT_EQ(a.ops(ApproxMode::kLevel3), 1u);
  EXPECT_DOUBLE_EQ(a.total_energy(), 9.0);
}

TEST(EnergyLedger, SummaryMentionsModes) {
  EnergyLedger ledger;
  ledger.record(ApproxMode::kLevel4, 1.0, 7);
  const std::string s = ledger.summary();
  EXPECT_NE(s.find("level4:7"), std::string::npos);
}

}  // namespace
}  // namespace approxit::arith
