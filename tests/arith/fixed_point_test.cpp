#include "arith/fixed_point.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace approxit::arith {
namespace {

TEST(QFormat, ValidateRejectsBadFormats) {
  EXPECT_THROW((QFormat{1, 0}).validate(), std::invalid_argument);
  EXPECT_THROW((QFormat{65, 0}).validate(), std::invalid_argument);
  EXPECT_THROW((QFormat{16, 16}).validate(), std::invalid_argument);
  EXPECT_NO_THROW((QFormat{16, 15}).validate());
  EXPECT_NO_THROW((QFormat{64, 32}).validate());
}

TEST(QFormat, UlpAndRange) {
  const QFormat q{16, 8};
  EXPECT_DOUBLE_EQ(q.ulp(), 1.0 / 256.0);
  EXPECT_DOUBLE_EQ(q.max_value(), (32767.0) / 256.0);
  EXPECT_DOUBLE_EQ(q.min_value(), -128.0);
  EXPECT_EQ(q.to_string(), "Q8.8");
}

TEST(Quantize, ExactlyRepresentableRoundTrips) {
  const QFormat q{32, 16};
  for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 1024.0, -2048.75}) {
    EXPECT_DOUBLE_EQ(quantization_roundtrip(v, q), v) << v;
  }
}

TEST(Quantize, RoundsToNearest) {
  const QFormat q{16, 8};
  const double ulp = q.ulp();
  EXPECT_DOUBLE_EQ(quantization_roundtrip(0.3 * ulp, q), 0.0);
  EXPECT_DOUBLE_EQ(quantization_roundtrip(0.7 * ulp, q), ulp);
  EXPECT_DOUBLE_EQ(quantization_roundtrip(-0.7 * ulp, q), -ulp);
}

TEST(Quantize, SaturatesAtRangeEnds) {
  const QFormat q{16, 8};
  EXPECT_DOUBLE_EQ(dequantize(quantize(1e9, q), q), q.max_value());
  EXPECT_DOUBLE_EQ(dequantize(quantize(-1e9, q), q), q.min_value());
  EXPECT_DOUBLE_EQ(
      dequantize(quantize(std::numeric_limits<double>::infinity(), q), q),
      q.max_value());
}

TEST(Quantize, NanBecomesZero) {
  const QFormat q{32, 16};
  EXPECT_EQ(quantize(std::numeric_limits<double>::quiet_NaN(), q), Word{0});
}

TEST(Quantize, RoundTripErrorBoundedByHalfUlp) {
  const QFormat q{32, 16};
  util::Rng rng(44);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform(-30000.0, 30000.0);
    const double rt = quantization_roundtrip(v, q);
    EXPECT_LE(std::abs(rt - v), q.ulp() / 2.0 + 1e-15) << v;
  }
}

TEST(SignedConversion, RoundTrips) {
  for (std::int64_t v : {0LL, 1LL, -1LL, 127LL, -128LL, 100LL, -77LL}) {
    EXPECT_EQ(to_signed(from_signed(v, 8), 8), v) << v;
  }
}

TEST(SignedConversion, SignExtension) {
  EXPECT_EQ(to_signed(0xFF, 8), -1);
  EXPECT_EQ(to_signed(0x80, 8), -128);
  EXPECT_EQ(to_signed(0x7F, 8), 127);
  EXPECT_EQ(to_signed(~Word{0}, 64), -1);
}

TEST(SignedConversion, TruncatesHighBits) {
  EXPECT_EQ(from_signed(-1, 8), Word{0xFF});
  EXPECT_EQ(from_signed(256, 8), Word{0});
}

TEST(QuantSpec, WordRoundTripIsIdentityUpTo53Bits) {
  // The fused-chain residency argument (arith/workspace.h) rests on this:
  // for total_bits <= 53 every representable word survives a dequantize/
  // re-quantize pair bit-exactly, so staying in the word domain and
  // converting at every link are the same function.
  util::Rng rng(0x9e);
  for (const QFormat q : {QFormat{8, 4}, QFormat{12, 6}, QFormat{16, 8},
                          QFormat{24, 12}, QFormat{32, 16}, QFormat{48, 32},
                          QFormat{53, 26}}) {
    const QuantSpec spec(q);
    const Word mask = spec.mask();
    const Word sign = spec.sign_bit();
    std::vector<Word> words = {0,        1,        2,        mask,
                               mask - 1, sign,     sign - 1,  // max positive
                               sign | 1, sign >> 1};
    for (int i = 0; i < 500; ++i) words.push_back(rng.next_u64() & mask);
    for (const Word w : words) {
      EXPECT_EQ(spec.quantize(spec.dequantize(w)), w)
          << q.to_string() << " w=" << w;
      EXPECT_EQ(quantize(dequantize(w, q), q), w)
          << q.to_string() << " w=" << w;
    }
  }
}

TEST(QuantSpec, MatchesFreeFunctionsOnCorners) {
  for (const QFormat q :
       {QFormat{8, 4}, QFormat{16, 8}, QFormat{32, 16}, QFormat{48, 32}}) {
    const QuantSpec spec(q);
    // Corner inputs: NaN -> 0, +/-inf and out-of-range clamp to the
    // format bounds, ties round to even.
    const double corners[] = {0.0,
                              -0.0,
                              q.ulp() / 2.0,
                              -q.ulp() / 2.0,
                              q.max_value(),
                              q.min_value(),
                              q.max_value() + 1.0,
                              q.min_value() - 1.0,
                              1e300,
                              -1e300,
                              std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity(),
                              std::numeric_limits<double>::quiet_NaN()};
    for (const double v : corners) {
      EXPECT_EQ(spec.quantize(v), quantize(v, q)) << q.to_string() << " " << v;
    }
    EXPECT_EQ(spec.quantize(std::numeric_limits<double>::quiet_NaN()),
              Word{0});
    EXPECT_EQ(spec.dequantize(spec.quantize(1e300)), q.max_value());
    EXPECT_EQ(spec.dequantize(spec.quantize(-1e300)), q.min_value());
  }
}

TEST(Quantize, NegativeValuesTwosComplement) {
  const QFormat q{16, 8};
  const Word w = quantize(-1.0, q);
  // -1.0 * 256 = -256 -> 0xFF00 in 16-bit two's complement.
  EXPECT_EQ(w, Word{0xFF00});
  EXPECT_DOUBLE_EQ(dequantize(w, q), -1.0);
}

}  // namespace
}  // namespace approxit::arith
