// Differential tests for the batched QCS datapath: the closed-form word
// kernels must be bit-identical to the structural adder models, and every
// QcsAlu span operation must produce the same bits with batching on as the
// scalar route_add fold produces with batching off.
#include "arith/batch_kernels.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "arith/alu.h"
#include "arith/approx_adders.h"
#include "arith/exact_adders.h"
#include "arith/fault_injector.h"
#include "util/rng.h"

namespace approxit::arith {
namespace {

/// Checks kernel_word_add(adder.kernel_spec()) against the structural
/// adder for random operands, both carry-ins, and the subtract feed
/// (a + ~b + 1) — the exact word stream the span kernels produce.
void expect_kernel_matches(const Adder& adder, util::Rng& rng) {
  const KernelSpec spec = adder.kernel_spec();
  ASSERT_NE(spec.kind, AdderKernel::kGeneric) << adder.name();
  const unsigned width = adder.width();
  const Word mask = adder.mask();
  for (int trial = 0; trial < 200; ++trial) {
    const Word a = rng.next_u64() & mask;
    const Word b = rng.next_u64() & mask;
    for (bool cin : {false, true}) {
      EXPECT_EQ(kernel_word_add(spec, width, a, b, cin),
                adder.add(a, b, cin).sum)
          << adder.name() << " a=" << a << " b=" << b << " cin=" << cin;
    }
    EXPECT_EQ(kernel_word_add(spec, width, a, ~b & mask, true),
              adder.subtract(a, b).sum)
        << adder.name() << " subtract a=" << a << " b=" << b;
  }
}

TEST(BatchKernels, LowerOrFamilyMatchesStructural) {
  util::Rng rng(0x10a);
  for (unsigned width : {8u, 16u, 32u, 53u}) {
    // k == width is the clamp corner: the whole result is the OR region.
    for (unsigned k : {0u, 1u, 3u, width / 2, width - 1, width}) {
      expect_kernel_matches(LowerOrAdder(width, k), rng);
    }
  }
}

TEST(BatchKernels, GdaMatchesStructural) {
  util::Rng rng(0x6da);
  for (unsigned width : {8u, 16u, 32u, 53u}) {
    // The GDA clamps its OR region to width - 1.
    for (unsigned k : {0u, 1u, width / 2, width - 1, width}) {
      expect_kernel_matches(GdaAdder(width, k), rng);
    }
  }
}

TEST(BatchKernels, TruncatedMatchesStructural) {
  util::Rng rng(0x77c);
  for (unsigned width : {8u, 16u, 32u, 53u}) {
    // k == width truncates every result bit to zero.
    for (unsigned k : {0u, 1u, 3u, width / 2, width - 1, width}) {
      expect_kernel_matches(TruncatedAdder(width, k), rng);
    }
  }
}

TEST(BatchKernels, EtaIMatchesStructural) {
  util::Rng rng(0xe7a1);
  for (unsigned width : {8u, 16u, 32u, 53u}) {
    for (unsigned k : {0u, 1u, 3u, width / 2, width - 1, width}) {
      expect_kernel_matches(EtaIAdder(width, k), rng);
    }
  }
}

TEST(BatchKernels, EtaIIMatchesStructural) {
  util::Rng rng(0xe7a2);
  for (unsigned width : {8u, 16u, 32u, 53u}) {
    // segment >= width advertises kExact (a single block is an exact add).
    for (unsigned segment : {1u, 3u, width / 2, width - 1, width, width + 5}) {
      expect_kernel_matches(EtaIIAdder(width, segment), rng);
    }
  }
}

TEST(BatchKernels, GenericFamiliesAdvertiseNoKernel) {
  EXPECT_EQ(AcaAdder(32, 8).kernel_spec().kind, AdderKernel::kGeneric);
  EXPECT_EQ(GearAdder(32, 4, 4).kernel_spec().kind, AdderKernel::kGeneric);
  // Exact adders fall back to the kExact closed form via the base default.
  EXPECT_EQ(RippleCarryAdder(32).kernel_spec().kind, AdderKernel::kExact);
}

/// Runs every span operation twice — batching off (the scalar route_add
/// fold) then batching on — and requires bit-identical values, equal
/// ledger op counts, and equal (static) ledger energy.
void expect_batched_matches_scalar(QcsAlu& alu, util::Rng& rng) {
  std::vector<double> x(257), y(257);
  for (double& v : x) v = rng.uniform(-40.0, 40.0);
  for (double& v : y) v = rng.uniform(-40.0, 40.0);

  for (std::size_t m = 0; m < kNumModes; ++m) {
    alu.set_mode(mode_from_index(m));
    SCOPED_TRACE(mode_name(alu.mode()));

    struct Snapshot {
      double acc, dot;
      std::vector<double> axpy, add, sub;
      double energy;
      std::size_t ops;
    };
    const auto run = [&](bool batched) {
      alu.set_batching(batched);
      alu.reset_ledger();
      Snapshot s;
      s.acc = alu.accumulate(x);
      s.dot = alu.dot(x, y);
      s.axpy = y;
      alu.axpy(0.5, x, s.axpy);
      s.add.resize(x.size());
      alu.add_vec(x, y, s.add);
      s.sub.resize(x.size());
      alu.sub_vec(x, y, s.sub);
      s.energy = alu.ledger().total_energy();
      s.ops = alu.ledger().total_ops();
      return s;
    };

    const Snapshot scalar = run(false);
    const Snapshot batched = run(true);
    EXPECT_EQ(scalar.acc, batched.acc);
    EXPECT_EQ(scalar.dot, batched.dot);
    EXPECT_EQ(scalar.axpy, batched.axpy);
    EXPECT_EQ(scalar.add, batched.add);
    EXPECT_EQ(scalar.sub, batched.sub);
    EXPECT_EQ(scalar.ops, batched.ops);
    // The scalar path posts energy per op, the batched path once per
    // batch (energy * n); the FP association differs, so the ledgers
    // agree only to rounding.
    EXPECT_NEAR(scalar.energy, batched.energy,
                1e-9 * std::abs(scalar.energy));
  }
  alu.set_batching(true);
}

TEST(BatchedAlu, MatchesScalarDefaultBank) {
  QcsAlu alu;
  util::Rng rng(0xba7c);
  expect_batched_matches_scalar(alu, rng);
}

QcsAlu make_custom_alu(std::array<AdderPtr, kNumModes> bank) {
  return QcsAlu(QFormat{32, 16}, std::move(bank));
}

TEST(BatchedAlu, MatchesScalarTruncatedBank) {
  QcsAlu alu = make_custom_alu({std::make_shared<TruncatedAdder>(32, 13),
                                std::make_shared<TruncatedAdder>(32, 11),
                                std::make_shared<TruncatedAdder>(32, 9),
                                std::make_shared<TruncatedAdder>(32, 7),
                                std::make_shared<RippleCarryAdder>(32)});
  util::Rng rng(0xba7d);
  expect_batched_matches_scalar(alu, rng);
}

TEST(BatchedAlu, MatchesScalarEtaBanks) {
  QcsAlu eta1 = make_custom_alu({std::make_shared<EtaIAdder>(32, 13),
                                 std::make_shared<EtaIAdder>(32, 11),
                                 std::make_shared<EtaIAdder>(32, 9),
                                 std::make_shared<EtaIAdder>(32, 7),
                                 std::make_shared<RippleCarryAdder>(32)});
  util::Rng rng(0xba7e);
  expect_batched_matches_scalar(eta1, rng);

  QcsAlu eta2 = make_custom_alu({std::make_shared<EtaIIAdder>(32, 4),
                                 std::make_shared<EtaIIAdder>(32, 8),
                                 std::make_shared<EtaIIAdder>(32, 12),
                                 std::make_shared<EtaIIAdder>(32, 16),
                                 std::make_shared<RippleCarryAdder>(32)});
  expect_batched_matches_scalar(eta2, rng);
}

TEST(BatchedAlu, GenericBankFallsBackAndMatches) {
  // ACA has no closed form; the span kernels must fold through the
  // virtual add() even with batching enabled.
  QcsAlu alu = make_custom_alu({std::make_shared<AcaAdder>(32, 6),
                                std::make_shared<AcaAdder>(32, 10),
                                std::make_shared<AcaAdder>(32, 14),
                                std::make_shared<AcaAdder>(32, 18),
                                std::make_shared<RippleCarryAdder>(32)});
  util::Rng rng(0xba7f);
  expect_batched_matches_scalar(alu, rng);
}

TEST(BatchedAlu, DynamicEnergyMatchesScalar) {
  QcsAlu alu;
  alu.set_dynamic_energy(true);
  util::Rng rng(0xd1e);
  std::vector<double> x(200);
  for (double& v : x) v = rng.uniform(-20.0, 20.0);

  for (std::size_t m = 0; m < kNumModes; ++m) {
    alu.set_mode(mode_from_index(m));
    SCOPED_TRACE(mode_name(alu.mode()));
    // The toggle model is stateful (energy depends on the previous
    // operand pair); re-enabling resets it so both runs start equal.
    alu.set_dynamic_energy(true);
    alu.set_batching(false);
    alu.reset_ledger();
    const double scalar_value = alu.accumulate(x);
    const double scalar_energy = alu.ledger().total_energy();
    const std::size_t scalar_ops = alu.ledger().total_ops();

    alu.set_dynamic_energy(true);
    alu.set_batching(true);
    alu.reset_ledger();
    const double batched_value = alu.accumulate(x);
    EXPECT_EQ(scalar_value, batched_value);
    EXPECT_EQ(scalar_ops, alu.ledger().total_ops());
    // The batched path sums per-op toggle energies into one post; the
    // association differs, so allow last-ulp float drift.
    EXPECT_NEAR(scalar_energy, alu.ledger().total_energy(),
                1e-9 * std::abs(scalar_energy));
  }
}

TEST(BatchedAlu, EmptySpansAreNoOps) {
  QcsAlu alu;
  alu.set_mode(ApproxMode::kLevel1);
  EXPECT_EQ(alu.accumulate({}), 0.0);
  EXPECT_EQ(alu.dot({}, {}), 0.0);
  std::vector<double> empty;
  alu.axpy(2.0, empty, empty);
  EXPECT_EQ(alu.ledger().total_ops(), 0u);
}

TEST(BatchedAlu, SizeMismatchThrows) {
  QcsAlu alu;
  std::vector<double> a(3), b(4);
  EXPECT_THROW(alu.dot(a, b), std::invalid_argument);
  EXPECT_THROW(alu.axpy(1.0, a, b), std::invalid_argument);
  EXPECT_THROW(alu.add_vec(a, b, a), std::invalid_argument);
  EXPECT_THROW(alu.sub_vec(a, a, b), std::invalid_argument);
}

TEST(FaultyAlu, BatchingFallsBackToPerOpInjection) {
  // Same seed, batching on vs off: the decorator must intercept every
  // operation either way, so values AND the injected-fault count match.
  const FaultConfig fault = FaultConfig::uniform_approximate(0.05, 0x5eed);
  std::vector<double> x(300);
  util::Rng rng(0xfa17);
  for (double& v : x) v = rng.uniform(-10.0, 10.0);

  FaultyQcsAlu scalar_alu(fault);
  scalar_alu.set_mode(ApproxMode::kLevel2);
  scalar_alu.set_batching(false);
  const double scalar_value = scalar_alu.accumulate(x);

  FaultyQcsAlu batched_alu(fault);
  batched_alu.set_mode(ApproxMode::kLevel2);
  ASSERT_TRUE(batched_alu.batching());
  EXPECT_FALSE(batched_alu.batching_supported());
  const double batched_value = batched_alu.accumulate(x);

  EXPECT_EQ(scalar_value, batched_value);
  EXPECT_EQ(scalar_alu.fault_ledger().injected(),
            batched_alu.fault_ledger().injected());
  EXPECT_GT(batched_alu.fault_ledger().injected(), 0u);
}

TEST(CloneFresh, CopiesConfigurationZeroesLedger) {
  QcsAlu alu;
  alu.set_mode(ApproxMode::kLevel3);
  alu.set_dynamic_energy(true);
  (void)alu.add(1.0, 2.0);
  ASSERT_GT(alu.ledger().total_ops(), 0u);

  const std::unique_ptr<QcsAlu> clone = alu.clone_fresh();
  EXPECT_EQ(clone->mode(), ApproxMode::kLevel3);
  EXPECT_TRUE(clone->dynamic_energy());
  EXPECT_EQ(clone->format(), alu.format());
  EXPECT_EQ(clone->ledger().total_ops(), 0u);
  // Same bank: identical arithmetic.
  EXPECT_EQ(clone->add(0.75, -2.5), alu.add(0.75, -2.5));
}

TEST(CloneFresh, FaultyCloneReseedsTheFaultStream) {
  const FaultConfig fault = FaultConfig::uniform_approximate(0.02, 0xabc);
  FaultyQcsAlu alu(fault);
  alu.set_mode(ApproxMode::kLevel1);
  std::vector<double> x(200, 0.5);
  const double original_first_run = alu.accumulate(x);

  // The clone restarts the RNG stream from the config seed, so it
  // reproduces the original ALU's FIRST run, not its current state.
  const std::unique_ptr<QcsAlu> clone = alu.clone_fresh();
  EXPECT_FALSE(clone->batching_supported());
  EXPECT_EQ(clone->accumulate(x), original_first_run);
}

}  // namespace
}  // namespace approxit::arith
