#include "arith/multipliers.h"

#include <memory>

#include <gtest/gtest.h>

#include "arith/exact_adders.h"
#include "arith/fixed_point.h"
#include "util/rng.h"

namespace approxit::arith {
namespace {

AdderPtr exact_sum_adder(unsigned operand_width) {
  return std::make_shared<RippleCarryAdder>(2 * operand_width);
}

TEST(ArrayMultiplier, ExactWithExactAdder) {
  for (unsigned w : {4u, 8u, 16u, 32u}) {
    ArrayMultiplier mul(w, exact_sum_adder(w));
    util::Rng rng(100 + w);
    for (int i = 0; i < 500; ++i) {
      const Word a = rng.next_u64() & word_mask(w);
      const Word b = rng.next_u64() & word_mask(w);
      // Exact product fits in 2w <= 64 bits.
      const Word expected =
          (w < 32) ? (a * b) & word_mask(2 * w) : a * b;
      EXPECT_EQ(mul.multiply(a, b), expected) << "w=" << w;
    }
  }
}

TEST(BoothMultiplier, ExactWithExactAdder) {
  for (unsigned w : {4u, 8u, 16u, 32u}) {
    BoothMultiplier mul(w, exact_sum_adder(w));
    util::Rng rng(200 + w);
    for (int i = 0; i < 500; ++i) {
      const Word a = rng.next_u64() & word_mask(w);
      const Word b = rng.next_u64() & word_mask(w);
      const Word expected =
          (w < 32) ? (a * b) & word_mask(2 * w) : a * b;
      EXPECT_EQ(mul.multiply(a, b), expected)
          << "w=" << w << " a=" << a << " b=" << b;
    }
  }
}

TEST(BoothMultiplier, CornerOperands) {
  BoothMultiplier mul(8, exact_sum_adder(8));
  for (Word a : {Word{0}, Word{1}, Word{0xFF}, Word{0x80}, Word{0x7F}}) {
    for (Word b : {Word{0}, Word{1}, Word{0xFF}, Word{0x80}, Word{0x55}}) {
      EXPECT_EQ(mul.multiply(a, b), a * b) << a << "*" << b;
    }
  }
}

TEST(Multiplier, SignedMultiplyMatchesInteger) {
  ArrayMultiplier mul(8, exact_sum_adder(8));
  for (int a = -128; a < 128; a += 13) {
    for (int b = -128; b < 128; b += 17) {
      const Word wa = from_signed(a, 8);
      const Word wb = from_signed(b, 8);
      const Word product = mul.multiply_signed(wa, wb);
      EXPECT_EQ(to_signed(product, 16), a * b) << a << "*" << b;
    }
  }
}

TEST(TruncatedMultiplier, ZeroTruncationIsExact) {
  TruncatedMultiplier mul(8, 0, exact_sum_adder(8));
  util::Rng rng(300);
  for (int i = 0; i < 500; ++i) {
    const Word a = rng.next_u64() & 0xFF;
    const Word b = rng.next_u64() & 0xFF;
    EXPECT_EQ(mul.multiply(a, b), a * b);
  }
}

TEST(TruncatedMultiplier, ErrorBoundedAndNeverOvershoots) {
  const unsigned t = 6;
  TruncatedMultiplier mul(8, t, exact_sum_adder(8));
  util::Rng rng(301);
  for (int i = 0; i < 2000; ++i) {
    const Word a = rng.next_u64() & 0xFF;
    const Word b = rng.next_u64() & 0xFF;
    const Word approx = mul.multiply(a, b);
    const Word exact = a * b;
    EXPECT_LE(approx, exact);
    // Each of up to 8 partial products loses < 2^t below the cut.
    EXPECT_LT(exact - approx, 8ull << t);
  }
}

TEST(TruncatedMultiplier, RejectsOverTruncation) {
  EXPECT_THROW(TruncatedMultiplier(8, 17, exact_sum_adder(8)),
               std::invalid_argument);
}

TEST(KulkarniMultiplier, TwoByTwoTable) {
  KulkarniMultiplier mul(2);
  for (Word a = 0; a < 4; ++a) {
    for (Word b = 0; b < 4; ++b) {
      const Word expected = (a == 3 && b == 3) ? 7 : a * b;
      EXPECT_EQ(mul.multiply(a, b), expected) << a << "*" << b;
    }
  }
}

TEST(KulkarniMultiplier, ExactUnlessBothOperandsContainThrees) {
  KulkarniMultiplier mul(8);
  // Operands whose 2-bit digit pairs never line up as 3x3 multiply exactly.
  EXPECT_EQ(mul.multiply(0x12, 0x21), Word{0x12 * 0x21});
  // 0xFF * 0xFF decomposes into 3x3 blocks -> must be underestimated.
  EXPECT_LT(mul.multiply(0xFF, 0xFF), Word{0xFF * 0xFF});
}

TEST(KulkarniMultiplier, NeverOvershoots) {
  KulkarniMultiplier mul(8);
  util::Rng rng(302);
  for (int i = 0; i < 4000; ++i) {
    const Word a = rng.next_u64() & 0xFF;
    const Word b = rng.next_u64() & 0xFF;
    EXPECT_LE(mul.multiply(a, b), a * b);
  }
}

TEST(KulkarniMultiplier, RejectsNonPowerOfTwoWidth) {
  EXPECT_THROW(KulkarniMultiplier(6), std::invalid_argument);
  EXPECT_THROW(KulkarniMultiplier(12), std::invalid_argument);
}

TEST(Multiplier, RejectsBadConstruction) {
  EXPECT_THROW(ArrayMultiplier(8, nullptr), std::invalid_argument);
  EXPECT_THROW(ArrayMultiplier(8, std::make_shared<RippleCarryAdder>(8)),
               std::invalid_argument);  // must be 2x width
  EXPECT_THROW(ArrayMultiplier(33, exact_sum_adder(33)),
               std::invalid_argument);  // product would exceed 64 bits
}

TEST(Multiplier, GateInventoriesPopulated) {
  ArrayMultiplier array(8, exact_sum_adder(8));
  BoothMultiplier booth(8, exact_sum_adder(8));
  KulkarniMultiplier kulkarni(8);
  EXPECT_GT(array.gates().gate_equivalents(), 0u);
  EXPECT_GT(booth.gates().gate_equivalents(), 0u);
  EXPECT_GT(kulkarni.gates().gate_equivalents(), 0u);
  // Booth halves the partial products; with the same row adder it should not
  // need more FA rows than the array multiplier.
  EXPECT_LE(booth.gates().full_adders, array.gates().full_adders);
}

}  // namespace
}  // namespace approxit::arith
