// Tests for the fused fixed-point-resident chains (arith/workspace.h).
//
// The contract under test: a BatchWorkspace chain is bit-identical to the
// plain ArithContext call sequence it replaces — against the scalar
// (set_batching(false)) QcsAlu reference, against ExactContext, and
// against the fault-injecting decorator — and op-for-op identical in the
// energy ledger.
#include "arith/workspace.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "arith/approx_adders.h"
#include "arith/context.h"
#include "arith/exact_adders.h"
#include "arith/fault_injector.h"
#include "arith/simd_kernels.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace approxit::arith {
namespace {

std::vector<double> random_values(std::size_t n, double lo, double hi,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (double& e : v) e = rng.uniform(lo, hi);
  return v;
}

TEST(BatchWorkspace, OneShotChainsMatchUnfusedSequences) {
  // The length is odd so the fused fold exercises its scalar tail.
  const std::vector<double> x = random_values(129, -30.0, 30.0, 0xa1);
  const std::vector<double> y = random_values(129, -30.0, 30.0, 0xa2);
  const std::vector<double> terms = random_values(201, -8.0, 8.0, 0xa3);

  QcsAlu alu;
  BatchWorkspace ws(alu);
  for (std::size_t m = 0; m < kNumModes; ++m) {
    alu.set_mode(mode_from_index(m));
    SCOPED_TRACE(mode_name(alu.mode()));

    // Reference: the hand-written call sequence on the scalar path.
    alu.set_batching(false);
    alu.reset_ledger();
    const double ref_resid = alu.sub(alu.dot(x, y), 3.25);
    const double ref_grad = alu.add(alu.accumulate(terms), -7.5);
    const std::size_t ref_ops = alu.ledger().total_ops();
    const double ref_energy = alu.ledger().total_energy();

    alu.set_batching(true);
    alu.reset_ledger();
    EXPECT_TRUE(ws.fused());
    EXPECT_EQ(ws.dot_sub(x, y, 3.25), ref_resid);
    EXPECT_EQ(ws.accumulate_add(terms, -7.5), ref_grad);
    EXPECT_EQ(alu.ledger().total_ops(), ref_ops);
    EXPECT_NEAR(alu.ledger().total_energy(), ref_energy,
                1e-9 * std::abs(ref_energy));
  }
}

TEST(BatchWorkspace, MixedChainMatchesUnfusedSequence) {
  const std::vector<double> a = random_values(63, -5.0, 5.0, 0xb1);
  const std::vector<double> b = random_values(300, -5.0, 5.0, 0xb2);

  QcsAlu alu;
  BatchWorkspace ws(alu);
  for (std::size_t m = 0; m < kNumModes; ++m) {
    alu.set_mode(mode_from_index(m));
    SCOPED_TRACE(mode_name(alu.mode()));

    alu.set_batching(false);
    alu.reset_ledger();
    double ref = 2.125;  // non-zero seed: every element folds via add()
    for (const double v : a) ref = alu.add(ref, v);
    ref = alu.add(ref, 0.625);
    ref = alu.sub(ref, -4.75);
    for (const double v : b) ref = alu.add(ref, v);
    const std::size_t ref_ops = alu.ledger().total_ops();

    alu.set_batching(true);
    alu.reset_ledger();
    ws.begin(2.125);
    ws.accumulate(a);
    ws.add_term(0.625);
    ws.sub_term(-4.75);
    ws.accumulate(b);
    EXPECT_EQ(ws.finish(), ref);
    EXPECT_EQ(alu.ledger().total_ops(), ref_ops);
  }
}

TEST(BatchWorkspace, DynamicEnergyChainsMatch) {
  const std::vector<double> x = random_values(80, -10.0, 10.0, 0xc1);
  const std::vector<double> y = random_values(80, -10.0, 10.0, 0xc2);

  QcsAlu alu;
  BatchWorkspace ws(alu);
  alu.set_mode(ApproxMode::kLevel2);

  // The toggle model is stateful; re-enable before each run so both start
  // from the same state.
  alu.set_dynamic_energy(true);
  alu.set_batching(false);
  alu.reset_ledger();
  const double ref = alu.sub(alu.dot(x, y), 1.5);
  const std::size_t ref_ops = alu.ledger().total_ops();
  const double ref_energy = alu.ledger().total_energy();

  alu.set_dynamic_energy(true);
  alu.set_batching(true);
  alu.reset_ledger();
  EXPECT_EQ(ws.dot_sub(x, y, 1.5), ref);
  EXPECT_EQ(alu.ledger().total_ops(), ref_ops);
  EXPECT_NEAR(alu.ledger().total_energy(), ref_energy,
              1e-9 * std::abs(ref_energy));
}

TEST(BatchWorkspace, ExactContextFallbackMatchesPlainCalls) {
  const std::vector<double> x = random_values(40, -2.0, 2.0, 0xd1);
  const std::vector<double> y = random_values(40, -2.0, 2.0, 0xd2);

  ExactContext exact;
  BatchWorkspace ws(exact);
  EXPECT_FALSE(ws.fused());
  EXPECT_EQ(ws.dot_sub(x, y, 0.75),
            exact.sub(exact.dot(x, y), 0.75));
  EXPECT_EQ(ws.accumulate_add(x, -1.5),
            exact.add(exact.accumulate(x), -1.5));
}

TEST(BatchWorkspace, GenericBankFallsBackAndMatches) {
  // ACA advertises no closed-form kernel, so chains must not fuse; they
  // run the plain context sequence (which itself folds through the
  // virtual add()).
  QcsAlu alu(QFormat{32, 16},
             {std::make_shared<AcaAdder>(32, 6),
              std::make_shared<AcaAdder>(32, 10),
              std::make_shared<AcaAdder>(32, 14),
              std::make_shared<AcaAdder>(32, 18),
              std::make_shared<RippleCarryAdder>(32)});
  alu.set_mode(ApproxMode::kLevel1);
  BatchWorkspace ws(alu);
  EXPECT_FALSE(ws.fused());

  const std::vector<double> x = random_values(50, -4.0, 4.0, 0xe1);
  const std::vector<double> y = random_values(50, -4.0, 4.0, 0xe2);
  const double chained = ws.dot_sub(x, y, 2.0);
  EXPECT_EQ(chained, alu.sub(alu.dot(x, y), 2.0));
}

TEST(BatchWorkspace, FaultyDecoratorKeepsPerOpInjection) {
  // Same config/seed, chained vs hand-written: the decorator must see the
  // identical op stream, so values AND injected-fault counts match.
  const FaultConfig fault = FaultConfig::uniform_approximate(0.05, 0x5eed);
  const std::vector<double> x = random_values(150, -6.0, 6.0, 0xf1);
  const std::vector<double> y = random_values(150, -6.0, 6.0, 0xf2);

  FaultyQcsAlu plain(fault);
  plain.set_mode(ApproxMode::kLevel2);
  const double ref_resid = plain.sub(plain.dot(x, y), 0.5);
  const double ref_grad = plain.add(plain.accumulate(x), 9.0);

  FaultyQcsAlu chained(fault);
  chained.set_mode(ApproxMode::kLevel2);
  BatchWorkspace ws(chained);
  EXPECT_FALSE(ws.fused());
  EXPECT_EQ(ws.dot_sub(x, y, 0.5), ref_resid);
  EXPECT_EQ(ws.accumulate_add(x, 9.0), ref_grad);
  EXPECT_EQ(chained.fault_ledger().injected(), plain.fault_ledger().injected());
  EXPECT_GT(chained.fault_ledger().injected(), 0u);
}

TEST(BatchWorkspace, ModeSwitchBetweenChainsIsSafe) {
  QcsAlu alu;
  BatchWorkspace ws(alu);
  const std::vector<double> x = random_values(30, -3.0, 3.0, 0x101);

  alu.set_mode(ApproxMode::kLevel1);
  const double l1 = ws.accumulate_add(x, 1.0);
  alu.set_mode(ApproxMode::kAccurate);
  const double acc = ws.accumulate_add(x, 1.0);

  alu.set_batching(false);
  alu.set_mode(ApproxMode::kLevel1);
  EXPECT_EQ(l1, alu.add(alu.accumulate(x), 1.0));
  alu.set_mode(ApproxMode::kAccurate);
  EXPECT_EQ(acc, alu.add(alu.accumulate(x), 1.0));
}

TEST(BatchWorkspace, DotRequiresFreshZeroSeededChain) {
  QcsAlu alu;
  BatchWorkspace ws(alu);
  const std::vector<double> x = {1.0, 2.0};

  ws.begin(1.0);  // non-zero seed
  EXPECT_THROW(ws.dot(x, x), std::logic_error);

  ws.begin(0.0);
  ws.add_term(1.0);  // no longer fresh
  EXPECT_THROW(ws.dot(x, x), std::logic_error);

  ws.begin(0.0);
  EXPECT_NO_THROW(ws.dot(x, x));
  const std::vector<double> longer = {1.0, 2.0, 3.0};
  ws.begin(0.0);
  EXPECT_THROW(ws.dot(x, longer), std::invalid_argument);
}

TEST(BatchWorkspace, BeginWithoutBindThrows) {
  BatchWorkspace ws;
  EXPECT_THROW(ws.begin(), std::logic_error);
  EXPECT_EQ(ws.context(), nullptr);
}

TEST(BatchWorkspace, FusedMetricsAndTierGauge) {
  obs::MetricsRegistry registry;
  QcsAlu alu;
  alu.set_mode(ApproxMode::kLevel1);
  alu.set_metrics(&registry);
  EXPECT_EQ(registry.gauge("alu.simd_tier").value(),
            static_cast<double>(simd::active_tier()));

  BatchWorkspace ws(alu);
  const std::vector<double> x = random_values(64, -2.0, 2.0, 0x111);
  (void)ws.dot_sub(x, x, 0.25);  // 64 fold ops + 1 apply op
  EXPECT_EQ(registry.counter("alu.fused.chains").value(), 1.0);
  EXPECT_EQ(registry.counter("alu.fused.ops").value(), 65.0);

  (void)ws.accumulate_add(x, 3.0);
  EXPECT_EQ(registry.counter("alu.fused.chains").value(), 2.0);
  EXPECT_EQ(registry.counter("alu.fused.ops").value(), 130.0);

  // Detaching stops fused posting without breaking chains.
  alu.set_metrics(nullptr);
  (void)ws.dot_sub(x, x, 0.25);
  EXPECT_EQ(registry.counter("alu.fused.chains").value(), 2.0);
}

/// The grouped-run shape the AR iteration builds: dot-sub rows, tailed
/// and untailed accumulations, and an empty chain in the middle.
std::vector<ChainSpec> mixed_chains(const std::vector<double>& x,
                                    const std::vector<double>& y,
                                    const std::vector<double>& terms) {
  std::vector<ChainSpec> chains;
  ChainSpec dotsub;
  dotsub.kind = ChainSpec::Kind::kDotSub;
  dotsub.x = x;
  dotsub.y = y;
  dotsub.scalar = 3.25;
  chains.push_back(dotsub);

  ChainSpec tailed;
  tailed.kind = ChainSpec::Kind::kAccumulate;
  tailed.x = terms;
  tailed.scalar = -7.5;
  tailed.has_scalar = true;
  chains.push_back(tailed);

  ChainSpec empty_tailed;
  empty_tailed.kind = ChainSpec::Kind::kAccumulate;
  empty_tailed.scalar = 1.625;
  empty_tailed.has_scalar = true;
  chains.push_back(empty_tailed);

  ChainSpec empty_plain;
  empty_plain.kind = ChainSpec::Kind::kAccumulate;
  chains.push_back(empty_plain);

  ChainSpec untailed;
  untailed.kind = ChainSpec::Kind::kAccumulate;
  untailed.x = x;
  chains.push_back(untailed);
  return chains;
}

TEST(BatchWorkspace, GroupedChainsMatchOneShotHelpers) {
  // 300 dot elements: the grouped kDotSub fold must chunk its ledger
  // records exactly like dot() (per-256 chunk), or energy sums drift.
  const std::vector<double> x = random_values(300, -6.0, 6.0, 0x121);
  const std::vector<double> y = random_values(300, -6.0, 6.0, 0x122);
  const std::vector<double> terms = random_values(129, -4.0, 4.0, 0x123);

  QcsAlu alu;
  BatchWorkspace ws(alu);
  const std::vector<ChainSpec> chains = mixed_chains(x, y, terms);
  for (std::size_t m = 0; m < kNumModes; ++m) {
    alu.set_mode(mode_from_index(m));
    SCOPED_TRACE(mode_name(alu.mode()));

    alu.reset_ledger();
    std::vector<double> ref(chains.size(), 0.0);
    ref[0] = ws.dot_sub(x, y, 3.25);
    ref[1] = ws.accumulate_add(terms, -7.5);
    ref[2] = 1.625;  // Empty chains perform no ops.
    ref[3] = 0.0;
    ws.begin(0.0);
    ws.accumulate(x);
    ref[4] = ws.finish();
    const std::size_t ref_ops = alu.ledger().total_ops();
    const double ref_energy = alu.ledger().total_energy();

    alu.reset_ledger();
    std::vector<double> got(chains.size(), -1.0);
    ws.run_chains(chains, got.data());
    EXPECT_EQ(got, ref);
    EXPECT_EQ(alu.ledger().total_ops(), ref_ops);
    EXPECT_EQ(alu.ledger().total_energy(), ref_energy);
  }
}

TEST(BatchWorkspace, GroupedChainsDynamicEnergyMatch) {
  const std::vector<double> x = random_values(90, -8.0, 8.0, 0x131);
  const std::vector<double> y = random_values(90, -8.0, 8.0, 0x132);
  const std::vector<double> terms = random_values(40, -3.0, 3.0, 0x133);

  QcsAlu alu;
  BatchWorkspace ws(alu);
  alu.set_mode(ApproxMode::kLevel2);
  const std::vector<ChainSpec> chains = mixed_chains(x, y, terms);

  alu.set_dynamic_energy(true);
  alu.reset_ledger();
  std::vector<double> ref(chains.size(), 0.0);
  ref[0] = ws.dot_sub(x, y, 3.25);
  ref[1] = ws.accumulate_add(terms, -7.5);
  ref[2] = 1.625;
  ref[3] = 0.0;
  ws.begin(0.0);
  ws.accumulate(x);
  ref[4] = ws.finish();
  const std::size_t ref_ops = alu.ledger().total_ops();
  const double ref_energy = alu.ledger().total_energy();

  alu.set_dynamic_energy(true);
  alu.reset_ledger();
  std::vector<double> got(chains.size(), -1.0);
  ws.run_chains(chains, got.data());
  EXPECT_EQ(got, ref);
  EXPECT_EQ(alu.ledger().total_ops(), ref_ops);
  EXPECT_NEAR(alu.ledger().total_energy(), ref_energy,
              1e-9 * std::abs(ref_energy));
}

TEST(BatchWorkspace, GroupedChainsFallbackMatchesPlainCalls) {
  const std::vector<double> x = random_values(50, -2.0, 2.0, 0x141);
  const std::vector<double> y = random_values(50, -2.0, 2.0, 0x142);
  const std::vector<double> terms = random_values(20, -1.0, 1.0, 0x143);

  ExactContext exact;
  BatchWorkspace ws(exact);
  EXPECT_FALSE(ws.fused());
  const std::vector<ChainSpec> chains = mixed_chains(x, y, terms);
  std::vector<double> got(chains.size(), -1.0);
  ws.run_chains(chains, got.data());
  EXPECT_EQ(got[0], exact.sub(exact.dot(x, y), 3.25));
  EXPECT_EQ(got[1], exact.add(exact.accumulate(terms), -7.5));
  EXPECT_EQ(got[2], 1.625);
  EXPECT_EQ(got[3], 0.0);
  EXPECT_EQ(got[4], exact.accumulate(x));
}

TEST(BatchWorkspace, GroupedChainsZeroChainsIsANoOp) {
  QcsAlu alu;
  BatchWorkspace ws(alu);
  ws.run_chains({}, nullptr);
  EXPECT_EQ(alu.ledger().total_ops(), 0u);
}

}  // namespace
}  // namespace approxit::arith
