#include "arith/adder.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arith/exact_adders.h"
#include "util/rng.h"

namespace approxit::arith {
namespace {

using AdderFactory = std::function<std::unique_ptr<Adder>(unsigned width)>;

struct ExactAdderCase {
  std::string label;
  AdderFactory make;
};

class ExactAdderTest
    : public ::testing::TestWithParam<std::tuple<ExactAdderCase, unsigned>> {
 protected:
  std::unique_ptr<Adder> make() const {
    const auto& [c, width] = GetParam();
    return c.make(width);
  }
  unsigned width() const { return std::get<1>(GetParam()); }
};

TEST_P(ExactAdderTest, ReportsExact) { EXPECT_TRUE(make()->is_exact()); }

TEST_P(ExactAdderTest, MatchesReferenceOnRandomOperands) {
  const auto adder = make();
  util::Rng rng(0xA11CE + width());
  for (int i = 0; i < 2000; ++i) {
    const Word a = rng.next_u64();
    const Word b = rng.next_u64();
    const bool cin = (rng.next_u64() & 1) != 0;
    const AddResult expected = exact_add(width(), a, b, cin);
    const AddResult actual = adder->add(a, b, cin);
    ASSERT_EQ(actual, expected)
        << adder->name() << " a=" << (a & adder->mask())
        << " b=" << (b & adder->mask()) << " cin=" << cin;
  }
}

TEST_P(ExactAdderTest, MatchesReferenceOnCornerOperands) {
  const auto adder = make();
  const Word mask = adder->mask();
  const std::vector<Word> corners = {0,        1,        mask,
                                     mask - 1, mask / 2, mask / 2 + 1};
  for (Word a : corners) {
    for (Word b : corners) {
      for (int cin = 0; cin < 2; ++cin) {
        const AddResult expected = exact_add(width(), a, b, cin != 0);
        const AddResult actual = adder->add(a, b, cin != 0);
        ASSERT_EQ(actual, expected) << adder->name() << " a=" << a
                                    << " b=" << b << " cin=" << cin;
      }
    }
  }
}

TEST_P(ExactAdderTest, SubtractIsTwosComplement) {
  const auto adder = make();
  util::Rng rng(0xBEEF + width());
  for (int i = 0; i < 500; ++i) {
    const Word a = rng.next_u64() & adder->mask();
    const Word b = rng.next_u64() & adder->mask();
    const Word expected = (a - b) & adder->mask();
    EXPECT_EQ(adder->subtract(a, b).sum, expected);
  }
}

TEST_P(ExactAdderTest, GateInventoryNonEmpty) {
  const auto adder = make();
  EXPECT_GT(adder->gates().gate_equivalents(), 0u);
  EXPECT_GT(adder->gates().carry_depth, 0u);
}

const ExactAdderCase kExactCases[] = {
    {"ripple",
     [](unsigned w) { return std::make_unique<RippleCarryAdder>(w); }},
    {"cla",
     [](unsigned w) { return std::make_unique<CarryLookaheadAdder>(w); }},
    {"csel", [](unsigned w) { return std::make_unique<CarrySelectAdder>(w); }},
    {"koggestone",
     [](unsigned w) { return std::make_unique<KoggeStoneAdder>(w); }},
};

INSTANTIATE_TEST_SUITE_P(
    Architectures, ExactAdderTest,
    ::testing::Combine(::testing::ValuesIn(kExactCases),
                       ::testing::Values(1u, 3u, 8u, 16u, 32u, 48u, 64u)),
    [](const auto& info) {
      return std::get<0>(info.param).label + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ExactAddReference, SixtyFourBitCarryOut) {
  const Word max64 = ~Word{0};
  EXPECT_EQ(exact_add(64, max64, 1, false), (AddResult{0, true}));
  EXPECT_EQ(exact_add(64, max64, 0, true), (AddResult{0, true}));
  EXPECT_EQ(exact_add(64, max64, max64, true), (AddResult{max64, true}));
  EXPECT_EQ(exact_add(64, 5, 7, false), (AddResult{12, false}));
}

TEST(ExactAddReference, MasksHighBits) {
  // Operand bits above the width must be ignored.
  EXPECT_EQ(exact_add(8, 0x1FF, 0x100, false), (AddResult{0xFF, false}));
}

TEST(AdderBase, RejectsInvalidWidth) {
  EXPECT_THROW(RippleCarryAdder(0), std::invalid_argument);
  EXPECT_THROW(RippleCarryAdder(65), std::invalid_argument);
}

TEST(AdderBase, WordMask) {
  EXPECT_EQ(word_mask(1), Word{1});
  EXPECT_EQ(word_mask(8), Word{0xFF});
  EXPECT_EQ(word_mask(64), ~Word{0});
}

}  // namespace
}  // namespace approxit::arith
