#include "arith/error_metrics.h"

#include <gtest/gtest.h>

#include "arith/approx_adders.h"
#include "arith/exact_adders.h"

namespace approxit::arith {
namespace {

TEST(CharacterizeAdder, ExactAdderHasZeroError) {
  RippleCarryAdder adder(16);
  const ErrorStats stats = characterize_adder(adder, 5000, 1);
  EXPECT_DOUBLE_EQ(stats.error_rate, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_error, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_error_distance, 0.0);
  EXPECT_DOUBLE_EQ(stats.worst_case_error, 0.0);
  EXPECT_EQ(stats.samples, 5000u);
}

TEST(CharacterizeAdder, DeterministicForSeed) {
  LowerOrAdder adder(16, 8);
  const ErrorStats a = characterize_adder(adder, 2000, 42);
  const ErrorStats b = characterize_adder(adder, 2000, 42);
  EXPECT_DOUBLE_EQ(a.error_rate, b.error_rate);
  EXPECT_DOUBLE_EQ(a.mean_error_distance, b.mean_error_distance);
  EXPECT_DOUBLE_EQ(a.worst_case_error, b.worst_case_error);
}

TEST(CharacterizeAdder, ExhaustiveSmallWidthLoa) {
  // LOA(4,2): exhaustive ground truth over 16*16*2 cases.
  LowerOrAdder adder(4, 2);
  const ErrorStats stats = characterize_adder_exhaustive(adder);
  EXPECT_EQ(stats.samples, 16u * 16u * 2u);
  EXPECT_GT(stats.error_rate, 0.0);
  EXPECT_LT(stats.error_rate, 1.0);
  // OR-based lower part both over- and under-estimates; WCE is bounded by
  // the lower-part range plus one lost carry.
  EXPECT_LE(stats.worst_case_error, 8.0);
}

TEST(CharacterizeAdder, ExhaustiveMatchesMonteCarloTrend) {
  EtaIIAdder adder(8, 2);
  const ErrorStats exhaustive = characterize_adder_exhaustive(adder);
  const ErrorStats sampled = characterize_adder(adder, 50000, 7);
  EXPECT_NEAR(sampled.error_rate, exhaustive.error_rate, 0.02);
  EXPECT_NEAR(sampled.mean_error_distance, exhaustive.mean_error_distance,
              exhaustive.mean_error_distance * 0.15 + 0.5);
}

TEST(CharacterizeAdder, ExhaustiveRejectsWideAdders) {
  RippleCarryAdder adder(16);
  EXPECT_THROW(characterize_adder_exhaustive(adder), std::invalid_argument);
}

TEST(CharacterizeAdder, DistributionsChangeStats) {
  // Small-magnitude operands exercise short carry chains, so windowed-carry
  // adders look much better under them than under uniform operands.
  QcsConfigurableAdder adder(32, 8);
  const ErrorStats uniform =
      characterize_adder(adder, 20000, 5, OperandDist::kUniform);
  const ErrorStats small =
      characterize_adder(adder, 20000, 5, OperandDist::kSmallMagnitude);
  EXPECT_LT(small.error_rate, uniform.error_rate);
}

TEST(CharacterizeAdder, MoreAccurateLevelsHaveLowerER) {
  double previous_er = 1.1;
  for (unsigned chain : {8u, 12u, 16u, 24u}) {
    QcsConfigurableAdder adder(32, chain);
    const ErrorStats stats = characterize_adder(adder, 30000, 11);
    EXPECT_LT(stats.error_rate, previous_er) << "chain=" << chain;
    previous_er = stats.error_rate;
  }
}

TEST(CharacterizeMultiplier, ExactIsErrorFree) {
  ArrayMultiplier mul(8, std::make_shared<RippleCarryAdder>(16));
  const ErrorStats stats = characterize_multiplier(mul, 3000, 3);
  EXPECT_DOUBLE_EQ(stats.error_rate, 0.0);
}

TEST(CharacterizeMultiplier, KulkarniUnderestimates) {
  KulkarniMultiplier mul(8);
  const ErrorStats stats = characterize_multiplier(mul, 10000, 9);
  EXPECT_GT(stats.error_rate, 0.0);
  // Kulkarni blocks only ever drop the 3x3 MSB -> mean error is negative.
  EXPECT_LT(stats.mean_error, 0.0);
}

TEST(ErrorStats, ToStringContainsMetrics) {
  LowerOrAdder adder(8, 4);
  const ErrorStats stats = characterize_adder(adder, 1000, 2);
  const std::string s = stats.to_string();
  EXPECT_NE(s.find("ER="), std::string::npos);
  EXPECT_NE(s.find("WCE="), std::string::npos);
  EXPECT_NE(s.find("n=1000"), std::string::npos);
}

}  // namespace
}  // namespace approxit::arith
