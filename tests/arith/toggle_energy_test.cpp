#include <vector>

#include <gtest/gtest.h>

#include "arith/alu.h"
#include "arith/approx_adders.h"
#include "arith/energy.h"
#include "arith/exact_adders.h"
#include "util/rng.h"

namespace approxit::arith {
namespace {

// --- longest_carry_chain -----------------------------------------------------

/// Brute-force reference: simulate the ripple chain and track how far each
/// carry travels.
unsigned brute_force_chain(Word a, Word b, unsigned width, bool cin) {
  unsigned longest = 0;
  unsigned run = cin ? 1 : 0;
  for (unsigned i = 0; i < width; ++i) {
    const bool ai = (a >> i) & 1;
    const bool bi = (b >> i) & 1;
    if (run > 0 && (ai ^ bi)) {
      ++run;
    } else if (ai && bi) {
      run = 1;
    } else {
      run = 0;
    }
    longest = std::max(longest, run);
  }
  return longest;
}

TEST(LongestCarryChain, KnownPatterns) {
  // 0b0111 + 0b0001: carry generated at bit 0 propagates through bits 1-2
  // and is absorbed at bit 3 — chain length 3 (generate + 2 propagates).
  EXPECT_EQ(longest_carry_chain(0b0111, 0b0001, 8), 3u);
  // No generate anywhere.
  EXPECT_EQ(longest_carry_chain(0b0101, 0b1010, 8), 0u);
  // Generate at bit 0, no propagation above.
  EXPECT_EQ(longest_carry_chain(0b0001, 0b0001, 8), 1u);
  // Carry-in rippling through an all-propagate word (virtual entry stage
  // plus 8 propagate stages).
  EXPECT_EQ(longest_carry_chain(0x0F, 0xF0, 8, true), 9u);
  EXPECT_EQ(longest_carry_chain(0x0F, 0xF0, 8, false), 0u);
}

TEST(LongestCarryChain, MatchesBruteForceRandom) {
  util::Rng rng(404);
  for (int i = 0; i < 5000; ++i) {
    const Word a = rng.next_u64();
    const Word b = rng.next_u64();
    const bool cin = (rng.next_u64() & 1) != 0;
    for (unsigned width : {8u, 16u, 32u}) {
      ASSERT_EQ(longest_carry_chain(a, b, width, cin),
                brute_force_chain(a & word_mask(width), b & word_mask(width),
                                  width, cin));
    }
  }
}

TEST(LongestCarryChain, WorstCaseIsFullWidth) {
  // 0xFFFF + 1: carry from bit 0 ripples across the whole word.
  EXPECT_EQ(longest_carry_chain(0xFFFF, 0x0001, 16), 16u);
}

// --- ToggleEnergyModel --------------------------------------------------------

TEST(ToggleEnergyModel, FirstOperationChargesFullSwitching) {
  RippleCarryAdder adder(16);
  ToggleEnergyModel model(adder.gates(), 16);
  const double first = model.operation_energy(0x1234, 0x0F0F);
  // Repeating the same operands afterwards costs only the activity floor.
  const double repeat = model.operation_energy(0x1234, 0x0F0F);
  EXPECT_GT(first, repeat);
  EXPECT_GT(repeat, 0.0);
}

TEST(ToggleEnergyModel, AlternatingInputsCostMoreThanStableInputs) {
  RippleCarryAdder adder(32);
  ToggleEnergyModel stable(adder.gates(), 32);
  ToggleEnergyModel alternating(adder.gates(), 32);

  double stable_total = 0.0;
  double alternating_total = 0.0;
  for (int i = 0; i < 100; ++i) {
    stable_total += stable.operation_energy(0x00000001, 0x00000002);
    const Word a = (i % 2 == 0) ? 0x55555555 : 0xAAAAAAAA;
    alternating_total += alternating.operation_energy(a, ~a & 0xFFFFFFFF);
  }
  EXPECT_GT(alternating_total, 2.0 * stable_total);
}

TEST(ToggleEnergyModel, LongCarryChainsCostMore) {
  RippleCarryAdder adder(32);
  ToggleEnergyModel model(adder.gates(), 32);
  model.operation_energy(0, 0);  // establish previous state
  // Same toggle count, different chain lengths: 0xFFFF+1 ripples 16 deep,
  // while scattered generates resolve immediately.
  ToggleEnergyModel chain_model(adder.gates(), 32);
  chain_model.operation_energy(0, 0);
  const double long_chain = chain_model.operation_energy(0x0000FFFF, 0x1);
  ToggleEnergyModel flat_model(adder.gates(), 32);
  flat_model.operation_energy(0, 0);
  const double short_chain = flat_model.operation_energy(0x00005555, 0x1);
  // Equal-ish toggles but the long-propagate pattern glitches deeper.
  EXPECT_GT(long_chain, short_chain);
}

TEST(ToggleEnergyModel, ChainCappedByStructuralDepth) {
  // A GDA with a short exact region cannot glitch past its carry depth.
  GdaAdder adder(32, 24);  // 8-bit exact upper chain
  ToggleEnergyModel model(adder.gates(), 32);
  model.operation_energy(0, 0);
  const double e = model.operation_energy(0xFFFFFFFF, 0x1);
  // Upper bound: gate energy at full activity with depth-8 glitch.
  EnergyParams p;
  const double bound =
      model.static_energy() * 10.0;  // loose sanity bound
  EXPECT_LT(e, bound);
  (void)p;
}

TEST(ToggleEnergyModel, ResetForgetsHistory) {
  RippleCarryAdder adder(16);
  ToggleEnergyModel model(adder.gates(), 16);
  model.operation_energy(0xAAAA, 0x5555);
  const double repeat = model.operation_energy(0xAAAA, 0x5555);
  model.reset();
  const double after_reset = model.operation_energy(0xAAAA, 0x5555);
  EXPECT_GT(after_reset, repeat);
}

// --- QcsAlu integration -------------------------------------------------------

TEST(QcsAluDynamicEnergy, DefaultsToStaticModel) {
  QcsAlu alu;
  EXPECT_FALSE(alu.dynamic_energy());
  alu.set_mode(ApproxMode::kLevel2);
  alu.add(1.0, 2.0);
  EXPECT_DOUBLE_EQ(alu.ledger().total_energy(),
                   alu.energy_per_add(ApproxMode::kLevel2));
}

TEST(QcsAluDynamicEnergy, DynamicAccountingVariesWithData) {
  QcsAlu alu;
  alu.set_dynamic_energy(true);
  EXPECT_TRUE(alu.dynamic_energy());
  alu.set_mode(ApproxMode::kAccurate);

  alu.add(1.0, 1.0);
  const double first = alu.ledger().total_energy();
  alu.add(1.0, 1.0);  // identical operands: cheap
  const double second = alu.ledger().total_energy() - first;
  alu.add(-30000.0, 29999.0);  // massive toggle + long carry
  const double third = alu.ledger().total_energy() - first - second;
  EXPECT_LT(second, first);
  EXPECT_GT(third, second);
}

TEST(QcsAluDynamicEnergy, RunTotalsBracketStaticModel) {
  // Over a random workload the dynamic model should land within a sane
  // factor of the static average (same gate energies underneath).
  util::Rng rng(777);
  std::vector<double> values(2000);
  for (double& v : values) v = rng.uniform(-10000.0, 10000.0);

  QcsAlu static_alu;
  static_alu.set_mode(ApproxMode::kLevel3);
  QcsAlu dynamic_alu;
  dynamic_alu.set_dynamic_energy(true);
  dynamic_alu.set_mode(ApproxMode::kLevel3);
  double acc_s = 0.0, acc_d = 0.0;
  for (double v : values) {
    acc_s = static_alu.add(acc_s, v);
    acc_d = dynamic_alu.add(acc_d, v);
  }
  const double ratio = dynamic_alu.ledger().total_energy() /
                       static_alu.ledger().total_energy();
  EXPECT_GT(ratio, 0.1);
  EXPECT_LT(ratio, 3.0);
}

}  // namespace
}  // namespace approxit::arith
