#include "arith/approx_adders.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "arith/error_metrics.h"
#include "arith/exact_adders.h"
#include "util/rng.h"

namespace approxit::arith {
namespace {

// --- Degenerate configurations must be exact -------------------------------

TEST(LowerOrAdder, ZeroApproxBitsIsExact) {
  LowerOrAdder adder(16, 0);
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Word a = rng.next_u64(), b = rng.next_u64();
    EXPECT_EQ(adder.add(a, b, false), exact_add(16, a, b, false));
  }
}

TEST(TruncatedAdder, ZeroTruncationIsExact) {
  TruncatedAdder adder(16, 0);
  util::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const Word a = rng.next_u64(), b = rng.next_u64();
    const bool cin = (rng.next_u64() & 1) != 0;
    EXPECT_EQ(adder.add(a, b, cin), exact_add(16, a, b, cin));
  }
}

TEST(EtaIIAdder, FullSegmentIsExact) {
  EtaIIAdder adder(16, 16);
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Word a = rng.next_u64(), b = rng.next_u64();
    EXPECT_EQ(adder.add(a, b, false), exact_add(16, a, b, false));
  }
}

TEST(AcaAdder, FullWindowIsExact) {
  AcaAdder adder(16, 16);
  util::Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const Word a = rng.next_u64(), b = rng.next_u64();
    const bool cin = (rng.next_u64() & 1) != 0;
    EXPECT_EQ(adder.add(a, b, cin), exact_add(16, a, b, cin));
  }
}

TEST(QcsConfigurableAdder, FullChainIsExactAndReportsIt) {
  QcsConfigurableAdder adder(24, 24);
  EXPECT_TRUE(adder.is_exact());
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Word a = rng.next_u64(), b = rng.next_u64();
    const bool cin = (rng.next_u64() & 1) != 0;
    EXPECT_EQ(adder.add(a, b, cin), exact_add(24, a, b, cin));
  }
  EXPECT_FALSE(QcsConfigurableAdder(24, 8).is_exact());
}

// --- Structural error properties -------------------------------------------

TEST(LowerOrAdder, UpperBitsErrOnlyViaBridgeCarry) {
  // When neither operand has its (k-1)-th bit set, the bridge carry is 0 and
  // the exact upper part can only differ from the true sum by the missing
  // lower-part carry. The upper sum must then be <= the exact upper sum.
  LowerOrAdder adder(16, 8);
  util::Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const Word a = rng.next_u64() & adder.mask() & ~Word{0x80};
    const Word b = rng.next_u64() & adder.mask() & ~Word{0x80};
    const Word approx_upper = adder.add(a, b, false).sum >> 8;
    const Word exact_upper = exact_add(16, a, b, false).sum >> 8;
    EXPECT_LE(approx_upper, exact_upper);
  }
}

TEST(LowerOrAdder, LowerBitsAreBitwiseOr) {
  LowerOrAdder adder(16, 8);
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const Word a = rng.next_u64() & adder.mask();
    const Word b = rng.next_u64() & adder.mask();
    const Word low = adder.add(a, b, false).sum & 0xFF;
    EXPECT_EQ(low, (a | b) & 0xFF);
  }
}

TEST(TruncatedAdder, LowBitsAlwaysZero) {
  TruncatedAdder adder(16, 6);
  util::Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    const Word a = rng.next_u64(), b = rng.next_u64();
    EXPECT_EQ(adder.add(a, b, false).sum & word_mask(6), Word{0});
  }
}

TEST(TruncatedAdder, ErrorBoundedByTruncatedRange) {
  TruncatedAdder adder(16, 6);
  util::Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const Word a = rng.next_u64() & adder.mask();
    const Word b = rng.next_u64() & adder.mask();
    const double exact =
        static_cast<double>((a + b) & word_mask(17));
    const AddResult r = adder.add(a, b, false);
    const double approx = static_cast<double>(r.sum) +
                          (r.carry_out ? 65536.0 : 0.0);
    // Truncation discards the two low-6-bit addends: error < 2 * 2^6.
    EXPECT_LE(std::abs(exact - approx), 2.0 * 64.0);
  }
}

TEST(EtaIAdder, SaturatesBelowFirstGeneratePair) {
  EtaIAdder adder(16, 8);
  // a = 0b10000000, b = 0b10000000 in the low byte: both bit-7 set -> from
  // bit 7 downward everything saturates to 1.
  const AddResult r = adder.add(0x80, 0x80, false);
  EXPECT_EQ(r.sum & 0xFF, Word{0xFF});
}

TEST(EtaIAdder, XorBehaviourWithoutGeneratePairs) {
  EtaIAdder adder(16, 8);
  // No position with both bits set in the low byte -> low result is a ^ b
  // (which equals the exact carry-free sum).
  const Word a = 0b01010101, b = 0b00101010;
  const AddResult r = adder.add(a, b, false);
  EXPECT_EQ(r.sum & 0xFF, (a ^ b) & 0xFF);
}

TEST(EtaIIAdder, SpeculationIgnoresIncomingCarry) {
  // Segment width 4 over 8 bits. Pick operands where segment 0 generates a
  // carry only because of the incoming carry chain — ETA-II's speculation
  // (carry-in 0) must miss it.
  EtaIIAdder adder(8, 4);
  // a = 0x0F, b = 0x01: segment0 0xF+0x1 = 0x10 -> generates carry with
  // cin=0, so speculation catches this one (sanity check first):
  EXPECT_EQ(adder.add(0x0F, 0x01, false).sum, exact_add(8, 0x0F, 0x01, false).sum);
}

TEST(EtaIIAdder, ErrorsAreMultiplesOfSegmentBoundary) {
  EtaIIAdder adder(16, 4);
  util::Rng rng(10);
  for (int i = 0; i < 3000; ++i) {
    const Word a = rng.next_u64() & adder.mask();
    const Word b = rng.next_u64() & adder.mask();
    const AddResult r = adder.add(a, b, false);
    const AddResult e = exact_add(16, a, b, false);
    const auto approx = static_cast<long long>(r.sum) +
                        (r.carry_out ? (1LL << 16) : 0);
    const auto exact = static_cast<long long>(e.sum) +
                       (e.carry_out ? (1LL << 16) : 0);
    const long long err = exact - approx;
    // A missed carry at a segment boundary (bits 4, 8, 12) contributes
    // 2^4, 2^8 or 2^12; errors are sums of such terms, hence divisible by 16.
    EXPECT_EQ(err % 16, 0) << "a=" << a << " b=" << b;
    EXPECT_GE(err, 0) << "ETA-II can only LOSE carries";
  }
}

TEST(GearAdder, EquivalentToAcaWhenRIsOne) {
  GearAdder gear(16, 1, 4);
  AcaAdder aca(16, 4);
  util::Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    const Word a = rng.next_u64(), b = rng.next_u64();
    EXPECT_EQ(gear.add(a, b, false).sum, aca.add(a, b, false).sum);
  }
}

TEST(GearAdder, EquivalentToEtaIIWhenREqualsP) {
  GearAdder gear(16, 4, 4);
  EtaIIAdder etaii(16, 4);
  util::Rng rng(12);
  for (int i = 0; i < 3000; ++i) {
    const Word a = rng.next_u64(), b = rng.next_u64();
    EXPECT_EQ(gear.add(a, b, false).sum, etaii.add(a, b, false).sum);
  }
}

TEST(QcsConfigurableAdder, AccuracyImprovesWithChainBits) {
  // Mean error distance must be non-increasing in the configured chain
  // length — the property ApproxIt's accuracy levels rely on.
  double previous_med = std::numeric_limits<double>::infinity();
  for (unsigned chain : {4u, 8u, 16u, 32u}) {
    QcsConfigurableAdder adder(32, chain);
    const ErrorStats stats = characterize_adder(adder, 20000, 99);
    EXPECT_LT(stats.mean_error_distance, previous_med)
        << "chain=" << chain;
    previous_med = stats.mean_error_distance;
  }
}

TEST(QcsConfigurableAdder, ErrorsOnlyLoseCarries) {
  QcsConfigurableAdder adder(16, 6);
  util::Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    const Word a = rng.next_u64() & adder.mask();
    const Word b = rng.next_u64() & adder.mask();
    const AddResult r = adder.add(a, b, false);
    const AddResult e = exact_add(16, a, b, false);
    const auto approx = static_cast<long long>(r.sum) +
                        (r.carry_out ? (1LL << 16) : 0);
    const auto exact = static_cast<long long>(e.sum) +
                       (e.carry_out ? (1LL << 16) : 0);
    EXPECT_GE(exact, approx);
  }
}

TEST(GdaAdder, ZeroApproxBitsIsExactAndReportsIt) {
  GdaAdder adder(32, 0);
  EXPECT_TRUE(adder.is_exact());
  util::Rng rng(60);
  for (int i = 0; i < 1000; ++i) {
    const Word a = rng.next_u64(), b = rng.next_u64();
    const bool cin = (rng.next_u64() & 1) != 0;
    EXPECT_EQ(adder.add(a, b, cin), exact_add(32, a, b, cin));
  }
  EXPECT_FALSE(GdaAdder(32, 8).is_exact());
}

TEST(GdaAdder, ErrorBoundedForAllConfigurations) {
  // The GDA error bound |err| < 2^(k+1) must hold for EVERY operand pair —
  // including signed cancellation patterns — because ApproxIt's update-error
  // criterion relies on the per-mode error being bounded.
  for (unsigned k : {4u, 8u, 12u}) {
    GdaAdder adder(16, k);
    util::Rng rng(61 + k);
    const double bound = std::ldexp(2.0, static_cast<int>(k));
    for (int i = 0; i < 5000; ++i) {
      const Word a = rng.next_u64() & adder.mask();
      const Word b = rng.next_u64() & adder.mask();
      const AddResult r = adder.add(a, b, false);
      const AddResult e = exact_add(16, a, b, false);
      const double approx = static_cast<double>(r.sum) +
                            (r.carry_out ? 65536.0 : 0.0);
      const double exact = static_cast<double>(e.sum) +
                           (e.carry_out ? 65536.0 : 0.0);
      ASSERT_LE(std::abs(exact - approx), bound) << "k=" << k;
    }
  }
}

TEST(GdaAdder, AccuracyMonotoneInApproxBits) {
  double previous_med = -1.0;
  for (unsigned k : {0u, 4u, 8u, 12u, 16u, 20u}) {
    GdaAdder adder(32, k);
    const ErrorStats stats = characterize_adder(adder, 20000, 77);
    EXPECT_GT(stats.mean_error_distance, previous_med) << "k=" << k;
    previous_med = stats.mean_error_distance;
  }
}

TEST(GdaAdder, ClampsApproxBitsBelowWidth) {
  GdaAdder adder(16, 99);
  EXPECT_EQ(adder.approx_bits(), 15u);
}

TEST(ApproxAdders, InvalidConstructionThrows) {
  EXPECT_THROW(EtaIIAdder(16, 0), std::invalid_argument);
  EXPECT_THROW(AcaAdder(16, 0), std::invalid_argument);
  EXPECT_THROW(GearAdder(16, 0, 4), std::invalid_argument);
  EXPECT_THROW(QcsConfigurableAdder(16, 0), std::invalid_argument);
}

TEST(ApproxAdders, NamesEncodeParameters) {
  EXPECT_EQ(LowerOrAdder(16, 8).name(), "loa16k8");
  EXPECT_EQ(TruncatedAdder(16, 4).name(), "trunc16k4");
  EXPECT_EQ(EtaIIAdder(32, 8).name(), "etaii32s8");
  EXPECT_EQ(AcaAdder(32, 6).name(), "aca32w6");
  EXPECT_EQ(GearAdder(16, 2, 4).name(), "gear16r2p4");
  EXPECT_EQ(QcsConfigurableAdder(32, 12).name(), "qcs32c12");
}

// Parameterized sweep: every approximate adder must be no worse than the
// always-wrong bound and must degrade gracefully (ER < 1) on uniform input.
class ApproxFamilySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ApproxFamilySweep, ErrorStatisticsWellFormed) {
  const unsigned k = GetParam();
  const LowerOrAdder loa(16, k);
  const TruncatedAdder trunc(16, k);
  const EtaIAdder etai(16, k);
  const GdaAdder gda(16, k);
  for (const Adder* adder :
       {static_cast<const Adder*>(&loa), static_cast<const Adder*>(&trunc),
        static_cast<const Adder*>(&etai), static_cast<const Adder*>(&gda)}) {
    const ErrorStats stats = characterize_adder(*adder, 4000, 7 + k);
    EXPECT_LE(stats.error_rate, 1.0) << adder->name();
    EXPECT_GE(stats.error_rate, 0.0) << adder->name();
    EXPECT_GE(stats.worst_case_error, stats.mean_error_distance)
        << adder->name();
    // Lower-part designs bound the error by the approximate region's range
    // (one lost/spurious carry of 2^k plus k garbage bits < 2 * 2^k; the
    // truncated design also drops both low addends, still < 2 * 2^k).
    EXPECT_LE(stats.worst_case_error, 2.0 * std::ldexp(1.0, static_cast<int>(k)))
        << adder->name();
  }
}

INSTANTIATE_TEST_SUITE_P(LowBitCounts, ApproxFamilySweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 12u),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace approxit::arith
