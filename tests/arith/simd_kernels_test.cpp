// Differential sweep for the SIMD span backends (simd_kernels.h).
//
// Every tier the host can execute (portable always, AVX2 when detected)
// must be bit-identical to the structural adder models and to the scalar
// QuantSpec conversions: widths 8..53, all five closed-form families,
// random AND adversarial operands (carry bridges at the k cut, all-ones
// lower parts), both carry-ins, subtraction feeds, and span folds. The
// portable tier is also the reference the CI APPROXIT_NO_SIMD=1 job pins.
#include "arith/simd_kernels.h"

#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "arith/approx_adders.h"
#include "arith/batch_kernels.h"
#include "arith/exact_adders.h"
#include "util/rng.h"

namespace approxit::arith {
namespace {

using simd::Tier;

/// Runs `body` once per executable tier (portable, plus the detected tier
/// when it is higher), restoring the default dispatch afterwards.
void for_each_tier(const std::function<void()>& body) {
  std::vector<Tier> tiers = {Tier::kPortable};
  if (simd::detected_tier() != Tier::kPortable) {
    tiers.push_back(simd::detected_tier());
  }
  for (const Tier tier : tiers) {
    simd::set_tier_override(tier);
    SCOPED_TRACE(simd::tier_name(tier));
    body();
  }
  simd::set_tier_override(std::nullopt);
}

/// Adversarial operand pool for a family parameterized at cut `k`: clamp
/// corners, the carry-bridge bit at k-1, all-ones lower parts (maximum OR
/// and maximum carry propagation into the cut), and random fill.
std::vector<Word> operand_pool(unsigned width, unsigned k, util::Rng& rng) {
  const Word mask = word_mask(width);
  std::vector<Word> pool = {0, 1, mask, mask - 1, Word{1} << (width - 1)};
  const unsigned kc = std::min(k, width);
  if (kc > 0) {
    const Word low = word_mask(kc);
    pool.push_back(low);                  // all-ones lower part
    pool.push_back(Word{1} << (kc - 1));  // the bridge bit alone
    pool.push_back(mask & ~low);          // all-ones upper, zero lower
    pool.push_back(mask ^ (Word{1} << (kc - 1)));
    if (kc < width) pool.push_back(low | (Word{1} << kc));
  }
  for (int i = 0; i < 6; ++i) pool.push_back(rng.next_u64() & mask);
  return pool;
}

/// Checks the elementwise spans and the fold against the structural adder
/// under the currently active tier.
void expect_spans_match_structural(const Adder& adder, util::Rng& rng) {
  const KernelSpec spec = adder.kernel_spec();
  ASSERT_NE(spec.kind, AdderKernel::kGeneric) << adder.name();
  const unsigned width = adder.width();
  const std::vector<Word> pool = operand_pool(width, spec.param, rng);

  // Cross product of the pool against itself; the length is deliberately
  // not a multiple of 4 so both the vector body and the scalar tail run.
  std::vector<Word> a, b;
  for (const Word va : pool) {
    for (const Word vb : pool) {
      a.push_back(va);
      b.push_back(vb);
    }
  }
  a.push_back(rng.next_u64() & adder.mask());
  b.push_back(rng.next_u64() & adder.mask());
  const std::size_t n = a.size();
  ASSERT_NE(n % 4, 0u);

  std::vector<Word> out(n);
  for (const bool cin : {false, true}) {
    simd::kernel_add_span(spec, width, a.data(), b.data(), cin, n,
                          out.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], adder.add(a[i], b[i], cin).sum)
          << adder.name() << " a=" << a[i] << " b=" << b[i]
          << " cin=" << cin;
    }
  }
  simd::kernel_sub_span(spec, width, a.data(), b.data(), n, out.data());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], adder.subtract(a[i], b[i]).sum)
        << adder.name() << " subtract a=" << a[i] << " b=" << b[i];
  }

  // Folds: prefix lengths that exercise the empty, scalar-tail and
  // vector-body cases, under seeds covering both bridge phases (p_0 set
  // and clear at the cut).
  const std::vector<Word> seeds = {0, adder.mask(), pool[4],
                                   spec.param > 0 && spec.param <= width
                                       ? Word{1} << (spec.param - 1)
                                       : Word{1}};
  for (const Word seed : seeds) {
    Word ref = seed & adder.mask();
    std::size_t folded = 0;
    for (const std::size_t len : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}, std::size_t{5},
                                  std::size_t{17}, n}) {
      for (; folded < len && folded < n; ++folded) {
        ref = adder.add(ref, a[folded], false).sum;
      }
      ASSERT_EQ(simd::fold_words(spec, width, seed, a.data(),
                                 std::min(len, n)),
                ref)
          << adder.name() << " fold len=" << len << " seed=" << seed;
    }
  }
}

TEST(SimdKernels, AllFamiliesAllWidthsMatchStructural) {
  util::Rng rng(0x51d0);
  for_each_tier([&] {
    for (unsigned width = 8; width <= 53; ++width) {
      for (const unsigned k : {width / 2, width - 1}) {
        expect_spans_match_structural(LowerOrAdder(width, k), rng);
        expect_spans_match_structural(TruncatedAdder(width, k), rng);
        expect_spans_match_structural(EtaIAdder(width, k), rng);
      }
      expect_spans_match_structural(EtaIIAdder(width, width / 3 + 1), rng);
      expect_spans_match_structural(RippleCarryAdder(width), rng);
    }
  });
}

TEST(SimdKernels, ParameterEdgesMatchStructural) {
  util::Rng rng(0x51d1);
  for_each_tier([&] {
    for (const unsigned width : {8u, 16u, 32u, 48u, 53u}) {
      // k == 0 collapses to exact; k == width consumes the whole word
      // (full OR region / zero result); GDA clamps to width - 1.
      for (const unsigned k : {0u, 1u, width - 1, width}) {
        expect_spans_match_structural(LowerOrAdder(width, k), rng);
        expect_spans_match_structural(TruncatedAdder(width, k), rng);
        expect_spans_match_structural(EtaIAdder(width, k), rng);
        expect_spans_match_structural(GdaAdder(width, k), rng);
      }
      for (const unsigned segment : {1u, width - 1, width, width + 5}) {
        expect_spans_match_structural(EtaIIAdder(width, segment), rng);
      }
    }
  });
}

TEST(SimdKernels, QuantizeSpanMatchesScalarCorners) {
  util::Rng rng(0x9ca1);
  for (const QFormat format :
       {QFormat{8, 4}, QFormat{16, 8}, QFormat{32, 16}, QFormat{48, 32},
        QFormat{53, 26}, QFormat{64, 32}}) {
    const QuantSpec spec(format);
    SCOPED_TRACE(format.to_string());
    std::vector<double> in = {
        0.0,
        -0.0,
        format.ulp(),
        -format.ulp(),
        0.5 * format.ulp(),  // round-to-even tie
        1.5 * format.ulp(),
        -0.5 * format.ulp(),
        0.3 * format.ulp(),
        format.max_value(),
        format.max_value() + format.ulp(),  // saturates high
        format.min_value(),
        format.min_value() - format.ulp(),  // saturates low
        1e300,
        -1e300,
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::denorm_min(),
    };
    for (int i = 0; i < 101; ++i) {
      in.push_back(rng.uniform(2.0 * format.min_value(),
                               2.0 * format.max_value()));
    }
    ASSERT_NE(in.size() % 4, 0u);

    std::vector<Word> out(in.size());
    for_each_tier([&] {
      simd::quantize_span(spec, in.data(), in.size(), out.data());
      for (std::size_t i = 0; i < in.size(); ++i) {
        ASSERT_EQ(out[i], spec.quantize(in[i])) << "in=" << in[i];
      }
    });
  }
}

TEST(SimdKernels, DequantizeSpanMatchesScalarCorners) {
  util::Rng rng(0x9ca2);
  for (const QFormat format :
       {QFormat{8, 4}, QFormat{16, 8}, QFormat{32, 16}, QFormat{48, 32},
        QFormat{53, 26}, QFormat{64, 32}}) {
    const QuantSpec spec(format);
    SCOPED_TRACE(format.to_string());
    std::vector<Word> in = {0,
                            1,
                            spec.mask(),
                            spec.mask() - 1,
                            spec.sign_bit(),
                            spec.sign_bit() - 1,
                            spec.sign_bit() | 1,
                            ~Word{0}};  // garbage above total_bits: masked
    for (int i = 0; i < 97; ++i) in.push_back(rng.next_u64());
    ASSERT_NE(in.size() % 4, 0u);

    std::vector<double> out(in.size());
    for_each_tier([&] {
      simd::dequantize_span(spec, in.data(), in.size(), out.data());
      for (std::size_t i = 0; i < in.size(); ++i) {
        ASSERT_EQ(out[i], spec.dequantize(in[i])) << "in=" << in[i];
      }
    });
  }
}

TEST(SimdKernels, GenericKernelThrows) {
  const KernelSpec generic{AdderKernel::kGeneric, 0};
  const Word a[4] = {1, 2, 3, 4};
  Word out[4];
  EXPECT_THROW(simd::kernel_add_span(generic, 32, a, a, false, 4, out),
               std::logic_error);
  EXPECT_THROW(simd::kernel_sub_span(generic, 32, a, a, 4, out),
               std::logic_error);
  EXPECT_THROW(simd::fold_words(generic, 32, 0, a, 4), std::logic_error);
}

TEST(SimdDispatch, OverrideClampsToDetectedTier) {
  // Requesting a tier the host lacks must demote, never promote.
  simd::set_tier_override(Tier::kAvx2);
  EXPECT_LE(static_cast<int>(simd::active_tier()),
            static_cast<int>(simd::detected_tier()));
  simd::set_tier_override(Tier::kPortable);
  EXPECT_EQ(simd::active_tier(), Tier::kPortable);
  simd::set_tier_override(std::nullopt);
  EXPECT_EQ(simd::active_tier(), simd::detected_tier());
}

TEST(SimdDispatch, TierNamesAreStable) {
  EXPECT_STREQ(simd::tier_name(Tier::kPortable), "portable");
  EXPECT_STREQ(simd::tier_name(Tier::kAvx2), "avx2");
}

}  // namespace
}  // namespace approxit::arith
