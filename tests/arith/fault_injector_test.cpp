// FaultyQcsAlu: zero-rate pass-through identity, per-kind injection
// behaviour, droop persistence, per-mode rates, ledger accounting and
// stream determinism.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "arith/fault_injector.h"
#include "arith/fixed_point.h"

namespace approxit::arith {
namespace {

std::vector<double> drive(ArithContext& ctx, int ops, double scale = 1.0) {
  std::vector<double> results;
  results.reserve(ops);
  double acc = 0.0;
  for (int i = 0; i < ops; ++i) {
    acc = ctx.add(acc, scale * (0.25 + 0.125 * (i % 7)));
    results.push_back(acc);
  }
  return results;
}

TEST(FaultConfig, ValidatesRatesAndWeights) {
  FaultConfig bad_rate;
  bad_rate.rate_per_op[0] = 1.5;
  EXPECT_THROW(bad_rate.validate(), std::invalid_argument);

  FaultConfig negative_weight;
  negative_weight.burst_weight = -1.0;
  EXPECT_THROW(negative_weight.validate(), std::invalid_argument);

  FaultConfig no_kind = FaultConfig::uniform_approximate(0.5);
  no_kind.bit_flip_weight = 0.0;
  EXPECT_THROW(no_kind.validate(), std::invalid_argument);

  FaultConfig stuck_outside;
  stuck_outside.stuck_at_bit = 32;  // default format is Q32.16
  EXPECT_THROW(FaultyQcsAlu{stuck_outside}, std::invalid_argument);

  EXPECT_NO_THROW(FaultConfig{}.validate());
  EXPECT_NO_THROW(FaultConfig::voltage_droop(0.01).validate());
}

TEST(FaultyQcsAlu, ZeroRateIsBitIdenticalPassThrough) {
  QcsAlu clean;
  FaultyQcsAlu faulty;  // default FaultConfig: all rates zero
  for (ApproxMode mode : kAllModes) {
    clean.set_mode(mode);
    faulty.set_mode(mode);
    const std::vector<double> expected = drive(clean, 200);
    const std::vector<double> actual = drive(faulty, 200);
    EXPECT_EQ(expected, actual) << mode_name(mode);
  }
  EXPECT_EQ(faulty.fault_ledger().injected(), 0u);
  EXPECT_EQ(faulty.fault_ledger().total_ops, 5u * 200u);
  // Energy accounting is inherited untouched.
  EXPECT_EQ(clean.ledger().total_energy(), faulty.ledger().total_energy());
}

TEST(FaultyQcsAlu, RateOneInjectsEveryOperation) {
  FaultConfig config = FaultConfig::uniform_approximate(1.0);
  FaultyQcsAlu alu(config);
  alu.set_mode(ApproxMode::kLevel1);
  drive(alu, 100);
  const FaultLedger& ledger = alu.fault_ledger();
  EXPECT_EQ(ledger.injected(), 100u);
  EXPECT_EQ(ledger.injected_in(ApproxMode::kLevel1), 100u);
  EXPECT_EQ(ledger.injected_of(FaultKind::kBitFlip), 100u);
  std::size_t position_hits = 0;
  for (std::size_t count : ledger.bit_position_counts) position_hits += count;
  EXPECT_EQ(position_hits, 100u);  // one flipped bit per single-bit fault
}

TEST(FaultyQcsAlu, AccurateModeStaysFaultFree) {
  FaultConfig config = FaultConfig::uniform_approximate(1.0);
  FaultyQcsAlu alu(config);
  QcsAlu clean;
  alu.set_mode(ApproxMode::kAccurate);
  clean.set_mode(ApproxMode::kAccurate);
  EXPECT_EQ(drive(alu, 50), drive(clean, 50));
  EXPECT_EQ(alu.fault_ledger().injected(), 0u);
}

TEST(FaultyQcsAlu, StuckAtForcesConfiguredBit) {
  FaultConfig config = FaultConfig::uniform_approximate(1.0);
  config.bit_flip_weight = 0.0;
  config.stuck_at_weight = 1.0;
  config.stuck_at_bit = 3;
  config.stuck_at_value = true;
  FaultyQcsAlu alu(config);
  alu.set_mode(ApproxMode::kLevel4);
  for (int i = 0; i < 32; ++i) {
    const double result = alu.add(0.125 * i, 0.0625);
    const Word word = quantize(result, alu.format());
    EXPECT_EQ((word >> 3) & 1u, 1u) << "op " << i;
  }
  EXPECT_EQ(alu.fault_ledger().injected_of(FaultKind::kStuckAt), 32u);
}

TEST(FaultyQcsAlu, BurstDroopPersistsAcrossOperations) {
  // One burst in level1; the droop then corrupts the next two operations
  // even though their mode (accurate) has a zero fault rate.
  FaultConfig config;
  config.rate_per_op[mode_index(ApproxMode::kLevel1)] = 1.0;
  config.bit_flip_weight = 0.0;
  config.burst_weight = 1.0;
  config.droop_persistence = 2;
  FaultyQcsAlu alu(config);

  alu.set_mode(ApproxMode::kLevel1);
  (void)alu.add(1.0, 1.0);  // burst fires, droop begins
  EXPECT_EQ(alu.fault_ledger().injected(), 1u);

  alu.set_mode(ApproxMode::kAccurate);
  (void)alu.add(1.0, 1.0);
  (void)alu.add(1.0, 1.0);
  EXPECT_EQ(alu.fault_ledger().injected(), 3u);  // droop ops faulted
  EXPECT_EQ(alu.fault_ledger().injected_of(FaultKind::kBurst), 3u);

  const double clean = alu.add(1.0, 1.0);  // droop recovered
  EXPECT_EQ(alu.fault_ledger().injected(), 3u);
  EXPECT_DOUBLE_EQ(clean, 2.0);
}

TEST(FaultyQcsAlu, PerModeRatesAreHonoredStatistically) {
  FaultConfig config = FaultConfig::uniform_approximate(0.1, /*seed=*/7);
  FaultyQcsAlu alu(config);
  alu.set_mode(ApproxMode::kLevel2);
  drive(alu, 20000, 1e-3);
  const std::size_t injected = alu.fault_ledger().injected();
  EXPECT_GT(injected, 1600u);  // ~2000 expected; generous 4-sigma bounds
  EXPECT_LT(injected, 2400u);
}

TEST(FaultyQcsAlu, ResetFaultsReproducesIdenticalStream) {
  FaultConfig config = FaultConfig::voltage_droop(0.2, /*seed=*/11);
  FaultyQcsAlu alu(config);
  alu.set_mode(ApproxMode::kLevel1);
  const std::vector<double> first = drive(alu, 500);
  const std::size_t injected_first = alu.fault_ledger().injected();
  alu.reset_faults();
  alu.set_mode(ApproxMode::kLevel1);
  const std::vector<double> second = drive(alu, 500);
  EXPECT_EQ(first, second);
  EXPECT_EQ(alu.fault_ledger().injected(), injected_first);
  EXPECT_GT(injected_first, 0u);
}

TEST(FaultyQcsAlu, AccumulateAndDotRouteThroughInjector) {
  // accumulate()/dot() fold through the virtual add(), so every partial
  // sum is a fault site.
  FaultConfig config = FaultConfig::uniform_approximate(1.0);
  FaultyQcsAlu alu(config);
  alu.set_mode(ApproxMode::kLevel3);
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  (void)alu.accumulate(values);
  EXPECT_EQ(alu.fault_ledger().injected(), values.size());
  (void)alu.dot(values, values);
  EXPECT_EQ(alu.fault_ledger().injected(), 2 * values.size());
}

TEST(FaultLedger, SummaryMentionsCountsAndKinds) {
  FaultConfig config = FaultConfig::uniform_approximate(1.0);
  FaultyQcsAlu alu(config);
  alu.set_mode(ApproxMode::kLevel1);
  drive(alu, 10);
  const std::string summary = alu.fault_ledger().summary();
  EXPECT_NE(summary.find("10/10 ops"), std::string::npos);
  EXPECT_NE(summary.find("bit_flip:10"), std::string::npos);
  EXPECT_NE(summary.find("level1:10"), std::string::npos);
}

}  // namespace
}  // namespace approxit::arith
