// Validates the analytic/DP worst-case-error results against exhaustive
// search over all operand pairs at small widths.
#include "arith/wce_analysis.h"

#include <gtest/gtest.h>

#include "arith/approx_adders.h"

namespace approxit::arith {
namespace {

TEST(WceAnalysis, LoaMatchesExhaustive) {
  for (unsigned width : {6u, 8u, 10u}) {
    for (unsigned k : {1u, 2u, 4u, 6u}) {
      const LowerOrAdder adder(width, k);
      EXPECT_EQ(loa_worst_case_error(width, k),
                exhaustive_worst_case_error(adder))
          << "width=" << width << " k=" << k;
    }
  }
}

TEST(WceAnalysis, GdaMatchesExhaustive) {
  for (unsigned width : {6u, 8u, 10u}) {
    for (unsigned k : {1u, 3u, 5u}) {
      const GdaAdder adder(width, k);
      EXPECT_EQ(gda_worst_case_error(width, k),
                exhaustive_worst_case_error(adder))
          << "width=" << width << " k=" << k;
    }
  }
}

TEST(WceAnalysis, TruncMatchesExhaustive) {
  for (unsigned width : {6u, 8u, 10u}) {
    for (unsigned k : {1u, 2u, 4u, 6u}) {
      const TruncatedAdder adder(width, k);
      EXPECT_EQ(trunc_worst_case_error(width, k),
                exhaustive_worst_case_error(adder))
          << "width=" << width << " k=" << k;
    }
  }
}

TEST(WceAnalysis, EtaiMatchesExhaustive) {
  for (unsigned width : {6u, 8u, 10u}) {
    for (unsigned k : {1u, 2u, 4u, 6u}) {
      const EtaIAdder adder(width, k);
      EXPECT_EQ(etai_worst_case_error(width, k),
                exhaustive_worst_case_error(adder))
          << "width=" << width << " k=" << k;
    }
  }
}

TEST(WceAnalysis, EtaiiDpMatchesExhaustive) {
  for (unsigned width : {6u, 8u, 9u, 10u}) {
    for (unsigned segment : {2u, 3u, 4u}) {
      if (segment >= width) continue;
      const EtaIIAdder adder(width, segment);
      EXPECT_EQ(etaii_worst_case_error(width, segment),
                exhaustive_worst_case_error(adder))
          << "width=" << width << " segment=" << segment;
    }
  }
}

TEST(WceAnalysis, WindowedDpMatchesExhaustiveAca) {
  for (unsigned width : {6u, 8u, 10u}) {
    for (unsigned window : {2u, 3u, 4u, 6u}) {
      if (window >= width) continue;
      const AcaAdder adder(width, window);
      EXPECT_EQ(windowed_worst_case_error(width, window),
                exhaustive_worst_case_error(adder))
          << "width=" << width << " window=" << window;
    }
  }
}

TEST(WceAnalysis, WindowedDpMatchesExhaustiveQcs) {
  for (unsigned width : {8u, 10u}) {
    for (unsigned window : {3u, 5u}) {
      const QcsConfigurableAdder adder(width, window);
      EXPECT_EQ(windowed_worst_case_error(width, window),
                exhaustive_worst_case_error(adder))
          << "width=" << width << " window=" << window;
    }
  }
}

TEST(WceAnalysis, ExactConfigurationsHaveZeroWce) {
  EXPECT_EQ(loa_worst_case_error(16, 0), 0u);
  EXPECT_EQ(trunc_worst_case_error(16, 0), 0u);
  EXPECT_EQ(etai_worst_case_error(16, 0), 0u);
  EXPECT_EQ(etaii_worst_case_error(16, 16), 0u);
  EXPECT_EQ(windowed_worst_case_error(16, 16), 0u);
}

TEST(WceAnalysis, ScalesToFullWidthInstantly) {
  // The analytic/DP results cover widths exhaustive search cannot.
  EXPECT_EQ(gda_worst_case_error(32, 13), std::uint64_t{1} << 12);
  EXPECT_EQ(etai_worst_case_error(32, 13), std::uint64_t{1} << 13);
  EXPECT_EQ(trunc_worst_case_error(32, 13), (std::uint64_t{1} << 14) - 1);
  EXPECT_GT(etaii_worst_case_error(48, 8), 0u);
  EXPECT_GT(windowed_worst_case_error(48, 8), 0u);
}

TEST(WceAnalysis, WceMonotoneInApproximationDegree) {
  for (unsigned k = 1; k < 10; ++k) {
    EXPECT_LE(gda_worst_case_error(32, k), gda_worst_case_error(32, k + 1));
    EXPECT_LE(trunc_worst_case_error(32, k),
              trunc_worst_case_error(32, k + 1));
  }
  // Larger windows/segments mean fewer missed carries.
  EXPECT_GE(windowed_worst_case_error(32, 4),
            windowed_worst_case_error(32, 8));
  EXPECT_GE(etaii_worst_case_error(32, 4), etaii_worst_case_error(32, 8));
}

TEST(WceAnalysis, Validation) {
  EXPECT_THROW(etaii_worst_case_error(16, 0), std::invalid_argument);
  EXPECT_THROW(windowed_worst_case_error(16, 0), std::invalid_argument);
  EXPECT_THROW(windowed_worst_case_error(32, 11), std::invalid_argument);
  const LowerOrAdder wide(16, 8);
  EXPECT_THROW(exhaustive_worst_case_error(wide), std::invalid_argument);
}

}  // namespace
}  // namespace approxit::arith
