#include "arith/alu.h"

#include <array>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "arith/approx_adders.h"
#include "arith/exact_adders.h"
#include "util/rng.h"

namespace approxit::arith {
namespace {

TEST(QcsConfig, DefaultValidates) { EXPECT_NO_THROW(QcsConfig{}.validate()); }

TEST(QcsConfig, RejectsNonDecreasingApproxBits) {
  QcsConfig config;
  config.level_approx_bits = {20, 20, 12, 8};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.level_approx_bits = {12, 16, 8, 4};
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(QcsConfig, RejectsOutOfRangeApproxBits) {
  QcsConfig config;
  config.level_approx_bits = {32, 16, 12, 8};  // >= total_bits
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.level_approx_bits = {20, 16, 12, 0};  // level4 must approximate
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(QcsAlu, AccurateModeAddsExactly) {
  QcsAlu alu;
  alu.set_mode(ApproxMode::kAccurate);
  util::Rng rng(50);
  for (int i = 0; i < 500; ++i) {
    const double a = std::floor(rng.uniform(-1000.0, 1000.0));
    const double b = std::floor(rng.uniform(-1000.0, 1000.0));
    // Integers are exactly representable in Q16.16.
    EXPECT_DOUBLE_EQ(alu.add(a, b), a + b);
    EXPECT_DOUBLE_EQ(alu.sub(a, b), a - b);
  }
}

TEST(QcsAlu, DefaultModeIsAccurate) {
  QcsAlu alu;
  EXPECT_EQ(alu.mode(), ApproxMode::kAccurate);
}

TEST(QcsAlu, ApproximateModeIntroducesBoundedError) {
  QcsAlu alu;
  alu.set_mode(ApproxMode::kLevel1);
  util::Rng rng(51);
  bool any_error = false;
  for (int i = 0; i < 3000; ++i) {
    const double a = rng.uniform(-10000.0, 10000.0);
    const double b = rng.uniform(-10000.0, 10000.0);
    const double approx = alu.add(a, b);
    if (std::abs(approx - (a + b)) > alu.format().ulp()) {
      any_error = true;
    }
  }
  EXPECT_TRUE(any_error) << "level1 should err on wide operands";
}

TEST(QcsAlu, HigherLevelsReduceObservedError) {
  util::Rng rng(52);
  std::vector<std::pair<double, double>> operands;
  for (int i = 0; i < 5000; ++i) {
    operands.emplace_back(rng.uniform(-20000.0, 20000.0),
                          rng.uniform(-20000.0, 20000.0));
  }
  double previous_mean_abs = std::numeric_limits<double>::infinity();
  for (ApproxMode mode : {ApproxMode::kLevel1, ApproxMode::kLevel2,
                          ApproxMode::kLevel3, ApproxMode::kLevel4}) {
    QcsAlu alu;
    alu.set_mode(mode);
    double sum_abs = 0.0;
    for (const auto& [a, b] : operands) {
      sum_abs += std::abs(alu.add(a, b) - (a + b));
    }
    const double mean_abs = sum_abs / static_cast<double>(operands.size());
    EXPECT_LT(mean_abs, previous_mean_abs) << mode_name(mode);
    previous_mean_abs = mean_abs;
  }
}

TEST(QcsAlu, LedgerCountsEveryOperation) {
  QcsAlu alu;
  alu.set_mode(ApproxMode::kLevel2);
  alu.add(1.0, 2.0);
  alu.sub(1.0, 2.0);
  const std::vector<double> values = {1.0, 2.0, 3.0};
  alu.accumulate(values);
  EXPECT_EQ(alu.ledger().ops(ApproxMode::kLevel2), 5u);
  EXPECT_EQ(alu.ledger().total_ops(), 5u);
  alu.set_mode(ApproxMode::kAccurate);
  alu.add(0.0, 0.0);
  EXPECT_EQ(alu.ledger().ops(ApproxMode::kAccurate), 1u);
}

TEST(QcsAlu, EnergyMonotoneAcrossModes) {
  QcsAlu alu;
  double previous = 0.0;
  for (ApproxMode mode : kAllModes) {
    const double e = alu.energy_per_add(mode);
    EXPECT_GT(e, previous) << mode_name(mode);
    previous = e;
  }
}

TEST(QcsAlu, LedgerEnergyMatchesPerOpEnergy) {
  QcsAlu alu;
  alu.set_mode(ApproxMode::kLevel3);
  for (int i = 0; i < 10; ++i) alu.add(1.0, 1.0);
  EXPECT_DOUBLE_EQ(alu.ledger().total_energy(),
                   10.0 * alu.energy_per_add(ApproxMode::kLevel3));
}

TEST(QcsAlu, ResetLedgerPreservesMode) {
  QcsAlu alu;
  alu.set_mode(ApproxMode::kLevel1);
  alu.add(1.0, 1.0);
  alu.reset_ledger();
  EXPECT_EQ(alu.ledger().total_ops(), 0u);
  EXPECT_EQ(alu.mode(), ApproxMode::kLevel1);
}

TEST(QcsAlu, AccumulateEmptyIsZero) {
  QcsAlu alu;
  EXPECT_DOUBLE_EQ(alu.accumulate({}), 0.0);
}

TEST(QcsAlu, DotMatchesExactInAccurateMode) {
  QcsAlu alu;
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {4.0, -5.0, 6.0};
  EXPECT_NEAR(alu.dot(x, y), 12.0, 3 * alu.format().ulp());
}

TEST(QcsAlu, DotSizeMismatchThrows) {
  QcsAlu alu;
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_THROW(alu.dot(x, y), std::invalid_argument);
}

TEST(QcsAlu, CustomBankValidation) {
  const QFormat format{16, 8};
  std::array<AdderPtr, kNumModes> bank = {
      std::make_shared<LowerOrAdder>(16, 12),
      std::make_shared<LowerOrAdder>(16, 8),
      std::make_shared<LowerOrAdder>(16, 4),
      std::make_shared<LowerOrAdder>(16, 2),
      std::make_shared<RippleCarryAdder>(16),
  };
  EXPECT_NO_THROW(QcsAlu(format, bank));

  auto bad_width = bank;
  bad_width[0] = std::make_shared<LowerOrAdder>(32, 12);
  EXPECT_THROW(QcsAlu(format, bad_width), std::invalid_argument);

  auto inexact_accurate = bank;
  inexact_accurate[4] = std::make_shared<LowerOrAdder>(16, 4);
  EXPECT_THROW(QcsAlu(format, inexact_accurate), std::invalid_argument);

  auto null_slot = bank;
  null_slot[2] = nullptr;
  EXPECT_THROW(QcsAlu(format, null_slot), std::invalid_argument);
}

TEST(QcsAlu, CustomBankRoutesThroughChosenAdders) {
  const QFormat format{16, 0};  // integer datapath for easy inspection
  std::array<AdderPtr, kNumModes> bank = {
      std::make_shared<TruncatedAdder>(16, 8),
      std::make_shared<TruncatedAdder>(16, 6),
      std::make_shared<TruncatedAdder>(16, 4),
      std::make_shared<TruncatedAdder>(16, 2),
      std::make_shared<RippleCarryAdder>(16),
  };
  QcsAlu alu(format, bank);
  alu.set_mode(ApproxMode::kLevel1);
  // The low 8 bits are cut: their carry is lost and their sum bits are zero.
  EXPECT_DOUBLE_EQ(alu.add(255.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(alu.add(127.0, 1.0), 0.0);   // entirely below the cut
  EXPECT_DOUBLE_EQ(alu.add(256.0, 256.0), 512.0);  // entirely above the cut
}

TEST(QcsAlu, DescribeListsAllModes) {
  QcsAlu alu;
  const std::string desc = alu.describe();
  for (ApproxMode mode : kAllModes) {
    EXPECT_NE(desc.find(mode_name(mode)), std::string::npos)
        << mode_name(mode);
  }
}

}  // namespace
}  // namespace approxit::arith
