// Cross-family property sweep: every approximate adder configuration must
// (1) never exceed its analytic worst-case error, (2) have internally
// consistent Monte Carlo statistics, and (3) behave deterministically.
// Instantiated over a registry of (family, width, degree) configurations.
#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "arith/approx_adders.h"
#include "arith/energy.h"
#include "arith/error_metrics.h"
#include "arith/wce_analysis.h"
#include "util/rng.h"

namespace approxit::arith {
namespace {

struct FamilyCase {
  std::string label;
  std::function<std::unique_ptr<Adder>()> make;
  /// Lazily evaluated analytic WCE (the windowed DP is nontrivial and the
  /// test registry is constructed on every test-binary launch); returns 0
  /// when no analytic result is available (fall back to the trivial cap).
  std::function<std::uint64_t()> analytic_wce;
};

FamilyCase gda(unsigned w, unsigned k) {
  return {"gda_w" + std::to_string(w) + "_k" + std::to_string(k),
          [w, k] { return std::make_unique<GdaAdder>(w, k); },
          [w, k] { return gda_worst_case_error(w, k); }};
}
FamilyCase loa(unsigned w, unsigned k) {
  return {"loa_w" + std::to_string(w) + "_k" + std::to_string(k),
          [w, k] { return std::make_unique<LowerOrAdder>(w, k); },
          [w, k] { return loa_worst_case_error(w, k); }};
}
FamilyCase trunc(unsigned w, unsigned k) {
  return {"trunc_w" + std::to_string(w) + "_k" + std::to_string(k),
          [w, k] { return std::make_unique<TruncatedAdder>(w, k); },
          [w, k] { return trunc_worst_case_error(w, k); }};
}
FamilyCase etai(unsigned w, unsigned k) {
  return {"etai_w" + std::to_string(w) + "_k" + std::to_string(k),
          [w, k] { return std::make_unique<EtaIAdder>(w, k); },
          [w, k] { return etai_worst_case_error(w, k); }};
}
FamilyCase etaii(unsigned w, unsigned s) {
  return {"etaii_w" + std::to_string(w) + "_s" + std::to_string(s),
          [w, s] { return std::make_unique<EtaIIAdder>(w, s); },
          [w, s] { return etaii_worst_case_error(w, s); }};
}
FamilyCase windowed(unsigned w, unsigned v) {
  return {"windowed_w" + std::to_string(w) + "_v" + std::to_string(v),
          [w, v] { return std::make_unique<QcsConfigurableAdder>(w, v); },
          [w, v]() -> std::uint64_t {
            return v <= 10 ? windowed_worst_case_error(w, v) : 0;
          }};
}

std::vector<FamilyCase> registry() {
  return {
      gda(16, 4),      gda(16, 10),     gda(32, 7),     gda(32, 13),
      loa(16, 6),      loa(32, 12),     trunc(16, 5),   trunc(32, 10),
      etai(16, 6),     etai(32, 10),    etaii(16, 4),   etaii(32, 8),
      windowed(16, 6), windowed(32, 8), windowed(32, 20),
  };
}

class FamilyPropertyTest : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(FamilyPropertyTest, NeverExceedsAnalyticWce) {
  const FamilyCase& c = GetParam();
  const auto adder = c.make();
  util::Rng rng(0xFA111);
  const std::uint64_t wce = c.analytic_wce();
  const double cap =
      wce > 0 ? static_cast<double>(wce)
              : std::ldexp(1.0, static_cast<int>(adder->width()) + 1);
  for (int i = 0; i < 20000; ++i) {
    const Word a = rng.next_u64() & adder->mask();
    const Word b = rng.next_u64() & adder->mask();
    const bool cin = (rng.next_u64() & 1) != 0;
    const AddResult approx = adder->add(a, b, cin);
    const AddResult exact = exact_add(adder->width(), a, b, cin);
    const double approx_total =
        static_cast<double>(approx.sum) +
        (approx.carry_out
             ? std::ldexp(1.0, static_cast<int>(adder->width()))
             : 0.0);
    const double exact_total =
        static_cast<double>(exact.sum) +
        (exact.carry_out ? std::ldexp(1.0, static_cast<int>(adder->width()))
                         : 0.0);
    ASSERT_LE(std::abs(approx_total - exact_total), cap)
        << c.label << " a=" << a << " b=" << b << " cin=" << cin;
  }
}

TEST_P(FamilyPropertyTest, StatisticsInternallyConsistent) {
  const FamilyCase& c = GetParam();
  const auto adder = c.make();
  const ErrorStats stats = characterize_adder(*adder, 20000, 0x57A75);
  EXPECT_GE(stats.error_rate, 0.0);
  EXPECT_LE(stats.error_rate, 1.0);
  EXPECT_LE(std::abs(stats.mean_error), stats.mean_error_distance + 1e-12);
  EXPECT_LE(stats.mean_error_distance, stats.worst_case_error + 1e-12);
  if (const std::uint64_t wce = c.analytic_wce(); wce > 0) {
    EXPECT_LE(stats.worst_case_error, static_cast<double>(wce) + 1e-9)
        << c.label;
  }
  // Errors imply a positive MED; no errors imply zero MED.
  if (stats.error_rate == 0.0) {
    EXPECT_DOUBLE_EQ(stats.mean_error_distance, 0.0);
  } else {
    EXPECT_GT(stats.mean_error_distance, 0.0);
  }
}

TEST_P(FamilyPropertyTest, DeterministicAndStateless) {
  const FamilyCase& c = GetParam();
  const auto adder = c.make();
  util::Rng rng(0xD3);
  for (int i = 0; i < 200; ++i) {
    const Word a = rng.next_u64() & adder->mask();
    const Word b = rng.next_u64() & adder->mask();
    const AddResult first = adder->add(a, b, false);
    // Interleave unrelated operations; results must not change.
    (void)adder->add(~a & adder->mask(), b, true);
    EXPECT_EQ(adder->add(a, b, false), first) << c.label;
  }
}

TEST_P(FamilyPropertyTest, EnergyAndGatesPositive) {
  const FamilyCase& c = GetParam();
  const auto adder = c.make();
  EXPECT_GT(adder_energy(*adder), 0.0) << c.label;
  EXPECT_GT(adder->gates().gate_equivalents(), 0u) << c.label;
  EXPECT_FALSE(adder->name().empty());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyPropertyTest,
                         ::testing::ValuesIn(registry()),
                         [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace approxit::arith
