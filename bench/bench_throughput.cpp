// Throughput bench: the repo's perf-trajectory anchor. Measures
//   (1) adds/sec through QcsAlu::accumulate per approximation mode and
//       per datapath tier: scalar fold, word-parallel kernels on the
//       portable backend, and the runtime-dispatched SIMD backend;
//   (2) fused-chain throughput: the dot→sub and accumulate→add shapes via
//       plain chained context calls vs the word-resident BatchWorkspace;
//   (3) end-to-end wall time of the GMM and AutoRegression sessions with
//       batching off vs on;
//   (4) the GMM configuration sweep, serial vs thread-pool parallel.
// Every speed comparison also checks that the fast path reproduces the
// slow path bit-for-bit — a perf number from a wrong answer is worthless.
// Emits bench_artifacts/BENCH_throughput.json for CI archiving (the
// release job gates on its bit_identical flags and the GMM speedup), so
// regressions show up as artifact diffs across commits.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/autoregression.h"
#include "apps/gmm.h"
#include "arith/simd_kernels.h"
#include "arith/workspace.h"
#include "bench/common.h"
#include "core/static_strategy.h"
#include "core/sweep.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;
using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct ModeThroughput {
  std::string mode;
  double scalar_adds_per_sec = 0.0;
  double portable_adds_per_sec = 0.0;  ///< word kernels, portable tier
  double simd_adds_per_sec = 0.0;      ///< word kernels, dispatched tier
  double batched_adds_per_sec = 0.0;   ///< == simd tier (baseline key)
  bool bit_identical = false;
};

/// Times accumulate() over `values` for `reps` repetitions and returns
/// adds per second. `sink` defeats dead-code elimination.
double adds_per_sec(arith::QcsAlu& alu, const std::vector<double>& values,
                    std::size_t reps, double& sink) {
  const auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    sink += alu.accumulate(values);
  }
  const double ms = elapsed_ms(start);
  const double adds = static_cast<double>(reps * values.size());
  return ms > 0.0 ? adds / (ms / 1e3) : 0.0;
}

ModeThroughput measure_mode(arith::ApproxMode mode,
                            const std::vector<double>& values) {
  arith::QcsAlu alu;
  alu.set_mode(mode);
  ModeThroughput out;
  out.mode = std::string(arith::mode_name(mode));

  // Identity first: every tier must reproduce the scalar fold bit-for-bit
  // (and the ledger must count the same ops) before any path's speed
  // means anything.
  alu.set_batching(false);
  const double scalar_value = alu.accumulate(values);
  const std::size_t scalar_ops = alu.ledger().total_ops();
  alu.reset_ledger();
  alu.set_batching(true);
  arith::simd::set_tier_override(arith::simd::Tier::kPortable);
  const double portable_value = alu.accumulate(values);
  const std::size_t portable_ops = alu.ledger().total_ops();
  alu.reset_ledger();
  arith::simd::set_tier_override(std::nullopt);
  const double simd_value = alu.accumulate(values);
  out.bit_identical = scalar_value == portable_value &&
                      scalar_value == simd_value &&
                      scalar_ops == portable_ops &&
                      alu.ledger().total_ops() == scalar_ops;
  alu.reset_ledger();

  double sink = 0.0;
  alu.set_batching(false);
  out.scalar_adds_per_sec = adds_per_sec(alu, values, 24, sink);
  alu.reset_ledger();
  alu.set_batching(true);
  arith::simd::set_tier_override(arith::simd::Tier::kPortable);
  out.portable_adds_per_sec = adds_per_sec(alu, values, 384, sink);
  alu.reset_ledger();
  arith::simd::set_tier_override(std::nullopt);
  out.simd_adds_per_sec = adds_per_sec(alu, values, 384, sink);
  out.batched_adds_per_sec = out.simd_adds_per_sec;
  if (sink == 0.125) std::printf(" ");  // keep `sink` observable
  return out;
}

struct FusedTiming {
  std::string mode;
  double unfused_chains_per_sec = 0.0;  ///< chained context calls
  double fused_chains_per_sec = 0.0;    ///< word-resident BatchWorkspace
  bool bit_identical = false;
};

/// Times the two application chain shapes — residual (dot then subtract)
/// and gradient reduction (accumulate then add) — as plain chained
/// context calls vs one fused word-resident chain.
FusedTiming measure_fused(arith::ApproxMode mode,
                          const std::vector<double>& x,
                          const std::vector<double>& y) {
  arith::QcsAlu alu;
  alu.set_mode(mode);
  arith::BatchWorkspace ws(alu);
  FusedTiming out;
  out.mode = std::string(arith::mode_name(mode));

  const double unfused_resid = alu.sub(alu.dot(x, y), 1.25);
  const double unfused_grad = alu.add(alu.accumulate(x), -3.5);
  out.bit_identical = ws.dot_sub(x, y, 1.25) == unfused_resid &&
                      ws.accumulate_add(x, -3.5) == unfused_grad;

  constexpr std::size_t kReps = 1 << 16;
  double sink = 0.0;
  auto start = Clock::now();
  for (std::size_t r = 0; r < kReps; ++r) {
    sink += alu.sub(alu.dot(x, y), 1.25);
    sink += alu.add(alu.accumulate(x), -3.5);
  }
  const double unfused_ms = elapsed_ms(start);
  start = Clock::now();
  for (std::size_t r = 0; r < kReps; ++r) {
    sink += ws.dot_sub(x, y, 1.25);
    sink += ws.accumulate_add(x, -3.5);
  }
  const double fused_ms = elapsed_ms(start);
  const double chains = static_cast<double>(2 * kReps);
  out.unfused_chains_per_sec =
      unfused_ms > 0.0 ? chains / (unfused_ms / 1e3) : 0.0;
  out.fused_chains_per_sec = fused_ms > 0.0 ? chains / (fused_ms / 1e3) : 0.0;
  if (sink == 0.125) std::printf(" ");
  return out;
}

struct EndToEnd {
  std::string app;
  double scalar_ms = 0.0;
  double batched_ms = 0.0;
  bool identical = false;
};

/// Times one level2 static session end-to-end with batching off vs on and
/// checks the two runs leave the method in the same final state.
template <typename MakeMethod>
EndToEnd measure_app(const char* app, MakeMethod&& make_method,
                     const arith::QcsConfig& qcs) {
  arith::QcsAlu alu(qcs);
  auto char_method = make_method();
  const core::ModeCharacterization characterization =
      core::characterize(*char_method, alu);

  EndToEnd out;
  out.app = app;
  std::vector<double> final_states[2];
  for (int pass = 0; pass < 2; ++pass) {
    const bool batched = pass == 1;
    alu.set_batching(batched);
    auto method = make_method();
    core::StaticStrategy strategy(arith::ApproxMode::kLevel2);
    const auto start = Clock::now();
    (void)bench::run_once(*method, strategy, alu, characterization);
    (batched ? out.batched_ms : out.scalar_ms) = elapsed_ms(start);
    final_states[pass] = method->state();
  }
  out.identical = final_states[0] == final_states[1];
  alu.set_batching(true);
  return out;
}

struct SweepTiming {
  std::size_t threads = 1;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool identical = false;
};

SweepTiming measure_sweep() {
  const workloads::GmmDataset ds =
      workloads::make_gmm_dataset(workloads::GmmDatasetId::k3cluster);
  const core::MethodFactory factory = [&ds] {
    return std::make_unique<apps::GmmEm>(ds);
  };
  const core::QemEvaluator qem = [](opt::IterativeMethod& truth,
                                    opt::IterativeMethod& candidate) {
    auto& truth_gmm = dynamic_cast<apps::GmmEm&>(truth);
    auto& cand_gmm = dynamic_cast<apps::GmmEm&>(candidate);
    return static_cast<double>(apps::hamming_distance(
        truth_gmm.assignments(), cand_gmm.assignments()));
  };

  SweepTiming out;
  // Default the parallel arm to the hardware thread count (at least 2 so
  // the pool is actually exercised on single-core CI runners); the JSON
  // records the count actually used.
  out.threads = std::max<std::size_t>(2, util::default_thread_count());
  core::SweepOptions options;

  arith::QcsAlu serial_alu;
  options.threads = 1;
  auto start = Clock::now();
  const core::SweepResult serial =
      core::run_configuration_sweep(factory, serial_alu, qem, options);
  out.serial_ms = elapsed_ms(start);

  arith::QcsAlu parallel_alu;
  options.threads = out.threads;
  start = Clock::now();
  const core::SweepResult parallel =
      core::run_configuration_sweep(factory, parallel_alu, qem, options);
  out.parallel_ms = elapsed_ms(start);

  out.identical = serial.points.size() == parallel.points.size();
  for (std::size_t i = 0; out.identical && i < serial.points.size(); ++i) {
    const core::ParetoPoint& a = serial.points[i];
    const core::ParetoPoint& b = parallel.points[i];
    out.identical = a.label == b.label && a.energy == b.energy &&
                    a.quality_error == b.quality_error &&
                    a.iterations == b.iterations &&
                    a.converged == b.converged;
  }
  return out;
}

int run() {
  std::printf("=== bench_throughput: batched datapath + parallel sweep ===\n\n");

  // Mixed-sign, mixed-magnitude operands exercising the full carry
  // behavior of the approximate adders; fixed seed for reproducibility.
  util::Rng rng(0xbeefcafe);
  std::vector<double> values(1 << 14);
  for (double& v : values) v = rng.uniform(-4.0, 4.0);

  const char* detected_tier =
      arith::simd::tier_name(arith::simd::detected_tier());
  const char* active_tier = arith::simd::tier_name(arith::simd::active_tier());
  std::printf("SIMD dispatch: detected=%s active=%s\n\n", detected_tier,
              active_tier);

  util::Table mode_table("accumulate() throughput (adds/sec) by tier");
  mode_table.set_header(
      {"Mode", "Scalar", "Word", "SIMD", "Speedup", "Bit-identical"});
  mode_table.set_align(0, util::Align::kLeft);
  std::vector<ModeThroughput> modes;
  for (arith::ApproxMode mode : arith::kAllModes) {
    modes.push_back(measure_mode(mode, values));
    const ModeThroughput& m = modes.back();
    mode_table.add_row(
        {m.mode, util::format_sig(m.scalar_adds_per_sec, 3),
         util::format_sig(m.portable_adds_per_sec, 3),
         util::format_sig(m.simd_adds_per_sec, 3),
         util::format_sig(m.simd_adds_per_sec / m.scalar_adds_per_sec, 3),
         m.bit_identical ? "yes" : "NO"});
  }
  std::cout << mode_table << "\n";

  util::Table fused_table("Fused chain throughput (chains/sec)");
  fused_table.set_header(
      {"Mode", "Chained calls", "Fused", "Speedup", "Bit-identical"});
  fused_table.set_align(0, util::Align::kLeft);
  std::vector<FusedTiming> fused;
  {
    // Short spans matching the application chain shapes (the AR residual
    // is a dot over ~10 lags): here the per-link conversions the fusion
    // removes are a large fraction of the chain.
    std::vector<double> fx(16), fy(16);
    for (double& v : fx) v = rng.uniform(-4.0, 4.0);
    for (double& v : fy) v = rng.uniform(-4.0, 4.0);
    for (arith::ApproxMode mode : arith::kAllModes) {
      fused.push_back(measure_fused(mode, fx, fy));
      const FusedTiming& f = fused.back();
      fused_table.add_row(
          {f.mode, util::format_sig(f.unfused_chains_per_sec, 3),
           util::format_sig(f.fused_chains_per_sec, 3),
           util::format_sig(
               f.fused_chains_per_sec / f.unfused_chains_per_sec, 3),
           f.bit_identical ? "yes" : "NO"});
    }
  }
  std::cout << fused_table << "\n";

  util::Table app_table("End-to-end session wall time (level2 static)");
  app_table.set_header(
      {"App", "Scalar ms", "Batched ms", "Speedup", "Identical"});
  app_table.set_align(0, util::Align::kLeft);
  std::vector<EndToEnd> apps_timing;
  {
    const workloads::GmmDataset ds =
        workloads::make_gmm_dataset(workloads::GmmDatasetId::k3cluster);
    apps_timing.push_back(measure_app(
        "gmm_3cluster", [&ds] { return std::make_unique<apps::GmmEm>(ds); },
        arith::QcsConfig{}));
  }
  {
    const auto ds =
        workloads::make_series_dataset(workloads::SeriesId::kHangSeng);
    apps_timing.push_back(measure_app(
        "ar_hangseng",
        [&ds] { return std::make_unique<apps::AutoRegression>(ds); },
        apps::ar_qcs_config()));
  }
  for (const EndToEnd& a : apps_timing) {
    app_table.add_row({a.app, util::format_sig(a.scalar_ms, 4),
                       util::format_sig(a.batched_ms, 4),
                       util::format_sig(a.scalar_ms / a.batched_ms, 3),
                       a.identical ? "yes" : "NO"});
  }
  std::cout << app_table << "\n";

  const SweepTiming sweep = measure_sweep();
  util::Table sweep_table("GMM configuration sweep wall time");
  sweep_table.set_header(
      {"Threads", "Serial ms", "Parallel ms", "Speedup", "Identical"});
  sweep_table.add_row(
      {std::to_string(sweep.threads), util::format_sig(sweep.serial_ms, 4),
       util::format_sig(sweep.parallel_ms, 4),
       util::format_sig(sweep.serial_ms / sweep.parallel_ms, 3),
       sweep.identical ? "yes" : "NO"});
  std::cout << sweep_table << "\n";

  std::ostringstream json;
  json << "{\n  \"bench\": \"throughput\",\n  \"simd\": {\"detected_tier\": \""
       << detected_tier << "\", \"active_tier\": \"" << active_tier
       << "\", \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << "},\n  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeThroughput& m = modes[i];
    json << "    {\"mode\": \"" << m.mode << "\", \"scalar_adds_per_sec\": "
         << m.scalar_adds_per_sec << ", \"portable_adds_per_sec\": "
         << m.portable_adds_per_sec << ", \"simd_adds_per_sec\": "
         << m.simd_adds_per_sec << ", \"batched_adds_per_sec\": "
         << m.batched_adds_per_sec << ", \"speedup\": "
         << m.batched_adds_per_sec / m.scalar_adds_per_sec
         << ", \"bit_identical\": " << (m.bit_identical ? "true" : "false")
         << "}" << (i + 1 < modes.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"fused_chains\": [\n";
  for (std::size_t i = 0; i < fused.size(); ++i) {
    const FusedTiming& f = fused[i];
    json << "    {\"mode\": \"" << f.mode
         << "\", \"unfused_chains_per_sec\": " << f.unfused_chains_per_sec
         << ", \"fused_chains_per_sec\": " << f.fused_chains_per_sec
         << ", \"speedup\": "
         << f.fused_chains_per_sec / f.unfused_chains_per_sec
         << ", \"bit_identical\": " << (f.bit_identical ? "true" : "false")
         << "}" << (i + 1 < fused.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"end_to_end\": [\n";
  for (std::size_t i = 0; i < apps_timing.size(); ++i) {
    const EndToEnd& a = apps_timing[i];
    json << "    {\"app\": \"" << a.app << "\", \"scalar_ms\": "
         << a.scalar_ms << ", \"batched_ms\": " << a.batched_ms
         << ", \"speedup\": " << a.scalar_ms / a.batched_ms
         << ", \"identical\": " << (a.identical ? "true" : "false") << "}"
         << (i + 1 < apps_timing.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"sweep\": {\"workload\": \"gmm_3cluster\", \"threads\": "
       << sweep.threads << ", \"serial_ms\": " << sweep.serial_ms
       << ", \"parallel_ms\": " << sweep.parallel_ms << ", \"speedup\": "
       << sweep.serial_ms / sweep.parallel_ms << ", \"identical\": "
       << (sweep.identical ? "true" : "false") << "}\n}\n";

  const std::string path = bench::artifact_path("BENCH_throughput.json");
  std::ofstream out(path);
  out << json.str();
  std::printf("Wrote %s\n", path.c_str());

  bool ok = sweep.identical;
  for (const ModeThroughput& m : modes) ok = ok && m.bit_identical;
  for (const FusedTiming& f : fused) ok = ok && f.bit_identical;
  for (const EndToEnd& a : apps_timing) ok = ok && a.identical;
  if (!ok) {
    std::printf("FAIL: fast path diverged from reference path\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return run(); }
