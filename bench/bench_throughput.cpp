// Throughput bench: the repo's perf-trajectory anchor. Measures
//   (1) adds/sec through QcsAlu::accumulate, scalar fold vs batched
//       word-parallel kernels, per approximation mode;
//   (2) end-to-end wall time of the GMM and AutoRegression sessions with
//       batching off vs on;
//   (3) the GMM configuration sweep, serial vs thread-pool parallel.
// Every speed comparison also checks that the fast path reproduces the
// slow path bit-for-bit — a perf number from a wrong answer is worthless.
// Emits bench_artifacts/BENCH_throughput.json for CI archiving, so
// regressions show up as artifact diffs across commits.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/autoregression.h"
#include "apps/gmm.h"
#include "bench/common.h"
#include "core/static_strategy.h"
#include "core/sweep.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;
using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct ModeThroughput {
  std::string mode;
  double scalar_adds_per_sec = 0.0;
  double batched_adds_per_sec = 0.0;
  bool bit_identical = false;
};

/// Times accumulate() over `values` for `reps` repetitions and returns
/// adds per second. `sink` defeats dead-code elimination.
double adds_per_sec(arith::QcsAlu& alu, const std::vector<double>& values,
                    std::size_t reps, double& sink) {
  const auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    sink += alu.accumulate(values);
  }
  const double ms = elapsed_ms(start);
  const double adds = static_cast<double>(reps * values.size());
  return ms > 0.0 ? adds / (ms / 1e3) : 0.0;
}

ModeThroughput measure_mode(arith::ApproxMode mode,
                            const std::vector<double>& values) {
  arith::QcsAlu alu;
  alu.set_mode(mode);
  ModeThroughput out;
  out.mode = std::string(arith::mode_name(mode));

  // Identity first: the batched fold must reproduce the scalar fold
  // bit-for-bit (and the ledger must count the same ops) before either
  // path's speed means anything.
  alu.set_batching(false);
  const double scalar_value = alu.accumulate(values);
  const std::size_t scalar_ops = alu.ledger().total_ops();
  alu.reset_ledger();
  alu.set_batching(true);
  const double batched_value = alu.accumulate(values);
  out.bit_identical = scalar_value == batched_value &&
                      alu.ledger().total_ops() == scalar_ops;
  alu.reset_ledger();

  double sink = 0.0;
  alu.set_batching(false);
  out.scalar_adds_per_sec = adds_per_sec(alu, values, 24, sink);
  alu.reset_ledger();
  alu.set_batching(true);
  out.batched_adds_per_sec = adds_per_sec(alu, values, 384, sink);
  if (sink == 0.125) std::printf(" ");  // keep `sink` observable
  return out;
}

struct EndToEnd {
  std::string app;
  double scalar_ms = 0.0;
  double batched_ms = 0.0;
  bool identical = false;
};

/// Times one level2 static session end-to-end with batching off vs on and
/// checks the two runs leave the method in the same final state.
template <typename MakeMethod>
EndToEnd measure_app(const char* app, MakeMethod&& make_method,
                     const arith::QcsConfig& qcs) {
  arith::QcsAlu alu(qcs);
  auto char_method = make_method();
  const core::ModeCharacterization characterization =
      core::characterize(*char_method, alu);

  EndToEnd out;
  out.app = app;
  std::vector<double> final_states[2];
  for (int pass = 0; pass < 2; ++pass) {
    const bool batched = pass == 1;
    alu.set_batching(batched);
    auto method = make_method();
    core::StaticStrategy strategy(arith::ApproxMode::kLevel2);
    const auto start = Clock::now();
    (void)bench::run_once(*method, strategy, alu, characterization);
    (batched ? out.batched_ms : out.scalar_ms) = elapsed_ms(start);
    final_states[pass] = method->state();
  }
  out.identical = final_states[0] == final_states[1];
  alu.set_batching(true);
  return out;
}

struct SweepTiming {
  std::size_t threads = 1;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool identical = false;
};

SweepTiming measure_sweep() {
  const workloads::GmmDataset ds =
      workloads::make_gmm_dataset(workloads::GmmDatasetId::k3cluster);
  const core::MethodFactory factory = [&ds] {
    return std::make_unique<apps::GmmEm>(ds);
  };
  const core::QemEvaluator qem = [](opt::IterativeMethod& truth,
                                    opt::IterativeMethod& candidate) {
    auto& truth_gmm = dynamic_cast<apps::GmmEm&>(truth);
    auto& cand_gmm = dynamic_cast<apps::GmmEm&>(candidate);
    return static_cast<double>(apps::hamming_distance(
        truth_gmm.assignments(), cand_gmm.assignments()));
  };

  SweepTiming out;
  out.threads = util::default_thread_count();
  core::SweepOptions options;

  arith::QcsAlu serial_alu;
  options.threads = 1;
  auto start = Clock::now();
  const core::SweepResult serial =
      core::run_configuration_sweep(factory, serial_alu, qem, options);
  out.serial_ms = elapsed_ms(start);

  arith::QcsAlu parallel_alu;
  options.threads = out.threads;
  start = Clock::now();
  const core::SweepResult parallel =
      core::run_configuration_sweep(factory, parallel_alu, qem, options);
  out.parallel_ms = elapsed_ms(start);

  out.identical = serial.points.size() == parallel.points.size();
  for (std::size_t i = 0; out.identical && i < serial.points.size(); ++i) {
    const core::ParetoPoint& a = serial.points[i];
    const core::ParetoPoint& b = parallel.points[i];
    out.identical = a.label == b.label && a.energy == b.energy &&
                    a.quality_error == b.quality_error &&
                    a.iterations == b.iterations &&
                    a.converged == b.converged;
  }
  return out;
}

int run() {
  std::printf("=== bench_throughput: batched datapath + parallel sweep ===\n\n");

  // Mixed-sign, mixed-magnitude operands exercising the full carry
  // behavior of the approximate adders; fixed seed for reproducibility.
  util::Rng rng(0xbeefcafe);
  std::vector<double> values(1 << 14);
  for (double& v : values) v = rng.uniform(-4.0, 4.0);

  util::Table mode_table("accumulate() throughput (adds/sec)");
  mode_table.set_header(
      {"Mode", "Scalar", "Batched", "Speedup", "Bit-identical"});
  mode_table.set_align(0, util::Align::kLeft);
  std::vector<ModeThroughput> modes;
  for (arith::ApproxMode mode : arith::kAllModes) {
    modes.push_back(measure_mode(mode, values));
    const ModeThroughput& m = modes.back();
    mode_table.add_row(
        {m.mode, util::format_sig(m.scalar_adds_per_sec, 3),
         util::format_sig(m.batched_adds_per_sec, 3),
         util::format_sig(m.batched_adds_per_sec / m.scalar_adds_per_sec, 3),
         m.bit_identical ? "yes" : "NO"});
  }
  std::cout << mode_table << "\n";

  util::Table app_table("End-to-end session wall time (level2 static)");
  app_table.set_header(
      {"App", "Scalar ms", "Batched ms", "Speedup", "Identical"});
  app_table.set_align(0, util::Align::kLeft);
  std::vector<EndToEnd> apps_timing;
  {
    const workloads::GmmDataset ds =
        workloads::make_gmm_dataset(workloads::GmmDatasetId::k3cluster);
    apps_timing.push_back(measure_app(
        "gmm_3cluster", [&ds] { return std::make_unique<apps::GmmEm>(ds); },
        arith::QcsConfig{}));
  }
  {
    const auto ds =
        workloads::make_series_dataset(workloads::SeriesId::kHangSeng);
    apps_timing.push_back(measure_app(
        "ar_hangseng",
        [&ds] { return std::make_unique<apps::AutoRegression>(ds); },
        apps::ar_qcs_config()));
  }
  for (const EndToEnd& a : apps_timing) {
    app_table.add_row({a.app, util::format_sig(a.scalar_ms, 4),
                       util::format_sig(a.batched_ms, 4),
                       util::format_sig(a.scalar_ms / a.batched_ms, 3),
                       a.identical ? "yes" : "NO"});
  }
  std::cout << app_table << "\n";

  const SweepTiming sweep = measure_sweep();
  util::Table sweep_table("GMM configuration sweep wall time");
  sweep_table.set_header(
      {"Threads", "Serial ms", "Parallel ms", "Speedup", "Identical"});
  sweep_table.add_row(
      {std::to_string(sweep.threads), util::format_sig(sweep.serial_ms, 4),
       util::format_sig(sweep.parallel_ms, 4),
       util::format_sig(sweep.serial_ms / sweep.parallel_ms, 3),
       sweep.identical ? "yes" : "NO"});
  std::cout << sweep_table << "\n";

  std::ostringstream json;
  json << "{\n  \"bench\": \"throughput\",\n  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeThroughput& m = modes[i];
    json << "    {\"mode\": \"" << m.mode << "\", \"scalar_adds_per_sec\": "
         << m.scalar_adds_per_sec << ", \"batched_adds_per_sec\": "
         << m.batched_adds_per_sec << ", \"speedup\": "
         << m.batched_adds_per_sec / m.scalar_adds_per_sec
         << ", \"bit_identical\": " << (m.bit_identical ? "true" : "false")
         << "}" << (i + 1 < modes.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"end_to_end\": [\n";
  for (std::size_t i = 0; i < apps_timing.size(); ++i) {
    const EndToEnd& a = apps_timing[i];
    json << "    {\"app\": \"" << a.app << "\", \"scalar_ms\": "
         << a.scalar_ms << ", \"batched_ms\": " << a.batched_ms
         << ", \"speedup\": " << a.scalar_ms / a.batched_ms
         << ", \"identical\": " << (a.identical ? "true" : "false") << "}"
         << (i + 1 < apps_timing.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"sweep\": {\"workload\": \"gmm_3cluster\", \"threads\": "
       << sweep.threads << ", \"serial_ms\": " << sweep.serial_ms
       << ", \"parallel_ms\": " << sweep.parallel_ms << ", \"speedup\": "
       << sweep.serial_ms / sweep.parallel_ms << ", \"identical\": "
       << (sweep.identical ? "true" : "false") << "}\n}\n";

  const std::string path = bench::artifact_path("BENCH_throughput.json");
  std::ofstream out(path);
  out << json.str();
  std::printf("Wrote %s\n", path.c_str());

  bool ok = sweep.identical;
  for (const ModeThroughput& m : modes) ok = ok && m.bit_identical;
  for (const EndToEnd& a : apps_timing) ok = ok && a.identical;
  if (!ok) {
    std::printf("FAIL: fast path diverged from reference path\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return run(); }
