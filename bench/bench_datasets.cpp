// Regenerates Tables 1 & 2: the benchmark-suite description and the
// realized dataset/parameter table (sample counts, MAX_ITER, convergence
// thresholds, resilient-kernel designation).
#include <cstdio>
#include <iostream>

#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;

void print_table1() {
  util::Table table("Table 1: Benchmark Description");
  table.set_header({"Benchmark", "Representative Fields",
                    "Quality Evaluation Metric"});
  table.set_align(1, util::Align::kLeft);
  table.set_align(2, util::Align::kLeft);
  table.add_row({"Gaussian Mixture Models",
                 "Nonlinear Clustering and Classification",
                 "Hamming Distance"});
  table.add_row({"AutoRegression", "Time Series, Regression Problems",
                 "Least Square Error with l2 Norm"});
  std::cout << table << "\n";
}

void print_table2() {
  util::Table table("Table 2: Dataset and Parameter Description (realized)");
  table.set_header({"Dataset", "Application", "Samples", "Source", "MAX_ITER",
                    "Convergence", "Adder Impact"});
  table.set_align(1, util::Align::kLeft);
  table.set_align(3, util::Align::kLeft);
  table.set_align(6, util::Align::kLeft);
  for (workloads::GmmDatasetId id : workloads::all_gmm_datasets()) {
    const workloads::GmmDataset ds = workloads::make_gmm_dataset(id);
    table.add_row({ds.name, "Gaussian Mixture Model",
                   std::to_string(ds.size()) + "*" + std::to_string(ds.dim),
                   "synthetic (seeded)", std::to_string(ds.max_iter),
                   util::format_sig(ds.convergence_tol, 2), "Mean Value"});
  }
  for (workloads::SeriesId id : workloads::all_series_datasets()) {
    const workloads::TimeSeriesDataset ds = workloads::make_series_dataset(id);
    table.add_row({ds.name, "AutoRegression",
                   std::to_string(ds.values.size()) + "*" +
                       std::to_string(ds.ar_order),
                   "synthetic (seeded)", std::to_string(ds.max_iter),
                   util::format_sig(ds.convergence_tol, 2),
                   "80% Confidence Space"});
  }
  std::cout << table << "\n";
  std::cout << "Note: the paper's Matlab/Yahoo! datasets are unavailable "
               "offline; seeded synthetic surrogates\nwith identical sizes "
               "and parameters are used (see DESIGN.md, Substitutions).\n\n";
}

}  // namespace

int main() {
  std::printf("=== bench_datasets: Tables 1 & 2 ===\n\n");
  print_table1();
  print_table2();
  return 0;
}
