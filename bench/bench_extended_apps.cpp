// Extension bench: the framework on two further RMS-class applications —
// PageRank (graph mining by power iteration) and logistic-regression
// training (classification by gradient descent). Shows that the quality
// guarantee and savings transfer beyond the paper's two benchmarks.
#include <cstdio>
#include <iostream>

#include "apps/pagerank.h"
#include "bench/common.h"
#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "opt/gradient_descent.h"
#include "opt/logistic.h"
#include "util/table.h"
#include "workloads/graphs.h"

namespace {

using namespace approxit;

void pagerank_section(util::Table& table) {
  const workloads::WebGraph graph = workloads::make_web_graph(3000, 5, 2014);
  arith::QcsAlu alu(apps::pagerank_qcs_config());

  apps::PageRank char_method(graph);
  const core::ModeCharacterization characterization =
      core::characterize(char_method, alu);

  apps::PageRank truth_method(graph);
  const core::RunReport truth =
      bench::run_truth(truth_method, alu, characterization);
  const std::vector<double> truth_ranks(truth_method.ranks().begin(),
                                        truth_method.ranks().end());
  const auto truth_top = truth_method.top_pages(20);

  auto add_row = [&](const char* label, apps::PageRank& method,
                     const core::RunReport& report) {
    table.add_row(
        {std::string("pagerank / ") + label, bench::iteration_cell(report),
         util::format_sig(apps::rank_l1_distance(truth_ranks, method.ranks()),
                          3),
         std::to_string(apps::top_k_overlap(truth_top,
                                            method.top_pages(20))) + "/20",
         util::format_sig(bench::relative_energy(report, truth), 3)});
  };

  {
    apps::PageRank method(graph);
    core::StaticStrategy strategy(arith::ApproxMode::kLevel1);
    const core::RunReport report =
        bench::run_once(method, strategy, alu, characterization);
    add_row("level1", method, report);
  }
  {
    apps::PageRank method(graph);
    core::IncrementalStrategy strategy;
    const core::RunReport report =
        bench::run_once(method, strategy, alu, characterization);
    add_row("incremental", method, report);
  }
  {
    apps::PageRank method(graph);
    core::AdaptiveAngleStrategy strategy;
    const core::RunReport report =
        bench::run_once(method, strategy, alu, characterization);
    add_row("adaptive", method, report);
  }
}

void logistic_section(util::Table& table) {
  const workloads::ClassificationDataset ds =
      workloads::make_classification(4000, 8, 3.0, 77, 0.05);
  la::Matrix x(ds.size(), ds.dim);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t d = 0; d < ds.dim; ++d) {
      x(i, d) = ds.features[i * ds.dim + d];
    }
  }
  opt::LogisticProblem problem(std::move(x), ds.labels, 1e-3);
  const opt::GdConfig config{.step_size = 1.0,
                             .momentum = 0.0,
                             .max_iter = 3000,
                             .tolerance = 1e-12};
  // Gradient terms are O(1e-4): a deep-fraction datapath with a matched
  // ladder (offline Q-format selection, as for the AR application).
  arith::QcsConfig qcs;
  qcs.format = arith::QFormat{32, 24};
  qcs.level_approx_bits = {9, 7, 5, 3};
  arith::QcsAlu alu(qcs);

  opt::GradientDescentSolver char_solver(
      problem, std::vector<double>(problem.dimension(), 0.0), config);
  const core::ModeCharacterization characterization =
      core::characterize(char_solver, alu);

  opt::GradientDescentSolver truth_solver(
      problem, std::vector<double>(problem.dimension(), 0.0), config);
  const core::RunReport truth =
      bench::run_truth(truth_solver, alu, characterization);
  const double truth_accuracy = problem.accuracy(truth_solver.x());

  auto add_row = [&](const char* label,
                     const opt::GradientDescentSolver& solver,
                     const core::RunReport& report) {
    const double accuracy = problem.accuracy(solver.x());
    table.add_row(
        {std::string("logistic / ") + label, bench::iteration_cell(report),
         util::format_sig(std::abs(accuracy - truth_accuracy), 3),
         util::format_percent(accuracy, 1),
         util::format_sig(bench::relative_energy(report, truth), 3)});
  };

  {
    opt::GradientDescentSolver solver(
        problem, std::vector<double>(problem.dimension(), 0.0), config);
    core::StaticStrategy strategy(arith::ApproxMode::kLevel1);
    const core::RunReport report =
        bench::run_once(solver, strategy, alu, characterization);
    add_row("level1", solver, report);
  }
  {
    opt::GradientDescentSolver solver(
        problem, std::vector<double>(problem.dimension(), 0.0), config);
    core::IncrementalStrategy strategy;
    const core::RunReport report =
        bench::run_once(solver, strategy, alu, characterization);
    add_row("incremental", solver, report);
  }
  {
    opt::GradientDescentSolver solver(
        problem, std::vector<double>(problem.dimension(), 0.0), config);
    core::AdaptiveAngleStrategy strategy;
    const core::RunReport report =
        bench::run_once(solver, strategy, alu, characterization);
    add_row("adaptive", solver, report);
  }
}

int run() {
  std::printf("=== bench_extended_apps: PageRank + logistic regression ===\n\n");
  util::Table table("Framework generality: further RMS applications");
  table.set_header({"App / run", "Iterations", "QEM", "Quality detail",
                    "Energy vs Truth"});
  table.set_align(0, util::Align::kLeft);
  pagerank_section(table);
  table.add_separator();
  logistic_section(table);
  std::cout << table;
  std::printf(
      "\nPageRank QEM = rank-vector L1 distance vs Truth (quality detail: "
      "top-20 overlap);\nlogistic QEM = |accuracy - Truth accuracy| "
      "(quality detail: absolute accuracy).\n\nNote the PageRank rows: the "
      "quality guarantee transfers (full top-20 agreement,\nnegligible rank "
      "distance) but energy is NOT saved — power iteration contracts at a\n"
      "fixed linear rate, so iterations spent at a mode's error floor make "
      "no progress and\nthe accurate tail must still run its full length. "
      "Approximation pays on methods whose\nearly iterations do "
      "transferable work (EM, least squares), not on pure linear-rate\n"
      "fixed-point iterations driven to tight tolerances.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
