// Pareto bench: the full quality-energy tradeoff space of every
// configuration (single modes, strategies, oracle bound) on the GMM
// datasets — the two-dimensional view behind Tables 3(a)/3(b) and Figure 4.
// Emits gmm_pareto_<dataset>.csv for plotting.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "apps/gmm.h"
#include "bench/common.h"
#include "core/pareto.h"
#include "core/sweep.h"
#include "util/parallel.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;

int run() {
  std::printf("=== bench_pareto: quality-energy frontiers (GMM) ===\n\n");

  for (workloads::GmmDatasetId id : workloads::all_gmm_datasets()) {
    const workloads::GmmDataset ds = workloads::make_gmm_dataset(id);
    arith::QcsAlu alu;

    core::SweepOptions options;
    options.include_oracle = true;
    // Arms run concurrently on per-arm ALU clones; the points come back in
    // the fixed arm order, identical to the serial sweep.
    options.threads = util::default_thread_count();

    const core::SweepResult sweep = core::run_configuration_sweep(
        [&ds]() { return std::make_unique<apps::GmmEm>(ds); }, alu,
        [](opt::IterativeMethod& truth, opt::IterativeMethod& candidate) {
          auto& truth_gmm = dynamic_cast<apps::GmmEm&>(truth);
          auto& cand_gmm = dynamic_cast<apps::GmmEm&>(candidate);
          return static_cast<double>(apps::hamming_distance(
              truth_gmm.assignments(), cand_gmm.assignments()));
        },
        options);

    util::Table table("Quality-energy points: " + ds.name);
    table.set_header({"Configuration", "Energy", "QEM", "Iterations",
                      "Converged", "On frontier"});
    table.set_align(0, util::Align::kLeft);
    const auto frontier = core::pareto_frontier(sweep.points);
    auto on_frontier = [&frontier](const core::ParetoPoint& p) {
      for (const core::ParetoPoint& f : frontier) {
        if (f.label == p.label) return true;
      }
      return false;
    };
    for (const core::ParetoPoint& p : sweep.points) {
      table.add_row({p.label, util::format_sig(p.energy, 3),
                     util::format_sig(p.quality_error, 4),
                     std::to_string(p.iterations),
                     p.converged ? "yes" : "MAX_ITER",
                     on_frontier(p) ? "*" : ""});
    }
    std::cout << table << "\n";

    const std::string path =
        bench::artifact_path("gmm_pareto_" + ds.name + ".csv");
    std::ofstream out(path);
    out << core::pareto_csv(sweep.points);
    std::printf("Wrote %s\n\n", path.c_str());
  }

  std::printf(
      "The frontier (*) is what a system designer picks from: the "
      "reconfiguration strategies\nsit at (or adjacent to) the zero-error "
      "end of it, well below Truth's energy; the oracle\nrow is the "
      "mode-selection headroom on the exact trajectory.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
