// Serving-runtime benchmark: throughput, queue latency, cold-vs-warm
// profile-cache amortization, and thread-count determinism of
// svc::ServiceRuntime.
//
// Phases:
//   1. COLD  — fresh on-disk cache directory: every workload characterizes
//      once (6 unique profiles for 12 jobs — two strategies share a key).
//   2. WARM  — a NEW runtime over the same directory (simulated restart):
//      every job must be a cache hit, reports byte-identical to cold, and
//      total characterization compute >= 5x smaller.
//   3. DETERMINISM — the same job set at threads 1/4/8 (memory-only
//      cache): per-job RunReport JSON and the merged metrics registry must
//      be identical across thread counts.
//   4. THROUGHPUT — a warm-cache burst; jobs/sec plus queue/run latency
//      percentiles from the jobs' own timings.
//   5. NET BURST — the socket front end under load: 64 concurrent
//      loopback connections streaming jobs through ONE event loop and ONE
//      runtime; client-observed submit->terminal wall time per connection
//      (percentiles + mean/min/max), jobs/sec, and a byte-identity gate
//      (every terminal report must equal the in-process read). This is
//      the single-runtime baseline the sharded burst is gated against.
//   6. SHARD DETERMINISM — the same job set through a ShardRouter with
//      1/2/4 shards (memory-only cache): the merged stats document must
//      be byte-identical across shard counts.
//   7. SHARDED NET BURST — 512 connections against a 4-shard router with
//      cross-job micro-batching on (warm shared cache): per-connection
//      submit->terminal wall times, queue-vs-run latency split from the
//      terminal payloads, batching occupancy (batch_jobs/batch_groups),
//      a byte-identity gate (every wire report must equal the solo
//      in-process reference), and a throughput gate (>= 3x the phase-5
//      single-runtime jobs/sec).
//
// Emits bench_artifacts/BENCH_service.json; exits non-zero when any
// identity, cache, occupancy or throughput assertion fails.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "svc/client.h"
#include "svc/runtime.h"
#include "svc/shard.h"
#include "util/table.h"

namespace {

using approxit::bench::artifact_path;
using approxit::obs::MetricsRegistry;
using approxit::svc::JobSnapshot;
using approxit::svc::JobSpec;
using approxit::svc::ServiceConfig;
using approxit::svc::ServiceRuntime;
using approxit::svc::ServiceStats;
namespace util = approxit::util;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The benchmark job mix: every paper workload under both reconfiguration
/// strategies (the two strategies SHARE a characterization key, so 12 jobs
/// need only 6 profiles).
std::vector<JobSpec> job_mix() {
  std::vector<JobSpec> jobs;
  const char* gmm_datasets[] = {"3cluster", "3d3cluster", "4cluster"};
  const char* ar_datasets[] = {"hangseng", "nasdaq", "sp500"};
  const char* strategies[] = {"incremental", "adaptive"};
  for (const char* strategy : strategies) {
    for (const char* dataset : gmm_datasets) {
      JobSpec spec;
      spec.app = "gmm";
      spec.dataset = dataset;
      spec.strategy = strategy;
      jobs.push_back(spec);
    }
    for (const char* dataset : ar_datasets) {
      JobSpec spec;
      spec.app = "ar";
      spec.dataset = dataset;
      spec.strategy = strategy;
      jobs.push_back(spec);
    }
  }
  return jobs;
}

struct PhaseResult {
  std::vector<JobSnapshot> jobs;   ///< In submission order.
  double wall_ms = 0.0;
  double characterization_ms = 0.0;  ///< Sum of per-job compute time.
  std::size_t cache_hits = 0;
  ServiceStats stats;
  std::string metrics_json;  ///< collect_metrics() (deterministic part).
};

/// Runs the given jobs through a fresh runtime and snapshots everything.
PhaseResult run_phase(const ServiceConfig& config,
                      const std::vector<JobSpec>& jobs) {
  PhaseResult result;
  ServiceRuntime runtime(config);
  const double start = now_ms();
  std::vector<std::uint64_t> ids;
  ids.reserve(jobs.size());
  for (const JobSpec& spec : jobs) {
    std::string error;
    const auto id = runtime.submit(spec, &error);
    if (!id) {
      std::fprintf(stderr, "submit failed: %s\n", error.c_str());
      continue;
    }
    ids.push_back(*id);
  }
  for (const std::uint64_t id : ids) {
    result.jobs.push_back(*runtime.result(id));
  }
  result.wall_ms = now_ms() - start;
  for (const JobSnapshot& job : result.jobs) {
    result.characterization_ms += job.characterization_ms;
    if (job.cache_hit) ++result.cache_hits;
  }
  result.stats = runtime.stats();
  MetricsRegistry merged;
  runtime.collect_metrics(merged);
  result.metrics_json = merged.to_json();
  return result;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

/// Per-connection submit->terminal wall-time aggregates (satellite to the
/// percentiles: bench_diff compares these across runs too).
struct WallAggregate {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

WallAggregate wall_aggregate(const std::vector<double>& values) {
  WallAggregate agg;
  if (values.empty()) return agg;
  agg.min = values.front();
  agg.max = values.front();
  for (const double v : values) {
    agg.mean += v;
    agg.min = std::min(agg.min, v);
    agg.max = std::max(agg.max, v);
  }
  agg.mean /= static_cast<double>(values.size());
  return agg;
}

}  // namespace

int main() {
  bool ok = true;
  const std::vector<JobSpec> jobs = job_mix();

  // --- Phase 1+2: cold vs warm over a fresh on-disk cache ---------------
  const std::string cache_dir = artifact_path("profiles_bench");
  std::filesystem::remove_all(cache_dir);
  ServiceConfig disk_config;
  disk_config.threads = 4;
  disk_config.cache.directory = cache_dir;

  const PhaseResult cold = run_phase(disk_config, jobs);
  const PhaseResult warm = run_phase(disk_config, jobs);

  bool warm_all_hits = warm.cache_hits == warm.jobs.size();
  bool warm_identical = warm.jobs.size() == cold.jobs.size();
  for (std::size_t i = 0; warm_identical && i < warm.jobs.size(); ++i) {
    warm_identical = warm.jobs[i].report_json == cold.jobs[i].report_json;
  }
  // The warm runtime computes nothing, so the floor only guards the
  // division; the real gate is the >= 5x reduction.
  const double warm_char_ms = std::max(warm.characterization_ms, 1e-3);
  const double char_speedup = cold.characterization_ms / warm_char_ms;
  const bool amortized = cold.characterization_ms >=
                         5.0 * warm.characterization_ms;
  ok = ok && warm_all_hits && warm_identical && amortized;

  util::Table cache_table("Profile cache: cold vs warm restart");
  cache_table.set_header({"Phase", "Jobs", "Wall ms", "Char ms", "Hits",
                          "Disk hits", "Stores"});
  cache_table.add_row(
      {"cold", std::to_string(cold.jobs.size()),
       util::format_sig(cold.wall_ms, 4),
       util::format_sig(cold.characterization_ms, 4),
       std::to_string(cold.stats.cache.hits),
       std::to_string(cold.stats.cache.disk_hits),
       std::to_string(cold.stats.cache.stores)});
  cache_table.add_row(
      {"warm", std::to_string(warm.jobs.size()),
       util::format_sig(warm.wall_ms, 4),
       util::format_sig(warm.characterization_ms, 4),
       std::to_string(warm.stats.cache.hits),
       std::to_string(warm.stats.cache.disk_hits),
       std::to_string(warm.stats.cache.stores)});
  std::cout << cache_table << "\n";
  std::printf("warm: all_hits=%s byte_identical=%s char_speedup=%.1fx\n\n",
              warm_all_hits ? "yes" : "NO", warm_identical ? "yes" : "NO",
              char_speedup);

  // --- Phase 3: determinism across worker counts ------------------------
  const std::size_t thread_counts[] = {1, 4, 8};
  std::vector<PhaseResult> det_runs;
  for (const std::size_t threads : thread_counts) {
    ServiceConfig config;
    config.threads = threads;
    config.cache.directory.clear();  // Memory-only: no cross-run coupling.
    det_runs.push_back(run_phase(config, jobs));
  }
  bool deterministic = true;
  for (std::size_t r = 1; r < det_runs.size(); ++r) {
    deterministic =
        deterministic &&
        det_runs[r].metrics_json == det_runs[0].metrics_json &&
        det_runs[r].jobs.size() == det_runs[0].jobs.size();
    for (std::size_t i = 0; deterministic && i < det_runs[r].jobs.size();
         ++i) {
      deterministic =
          det_runs[r].jobs[i].report_json == det_runs[0].jobs[i].report_json;
    }
  }
  ok = ok && deterministic;

  util::Table det_table("Thread-count determinism (12 jobs, shared cache)");
  det_table.set_header({"Threads", "Wall ms", "Cache hits", "Identical"});
  for (std::size_t r = 0; r < det_runs.size(); ++r) {
    det_table.add_row({std::to_string(thread_counts[r]),
                       util::format_sig(det_runs[r].wall_ms, 4),
                       std::to_string(det_runs[r].stats.cache.hits),
                       deterministic ? "yes" : "NO"});
  }
  std::cout << det_table << "\n";

  // --- Phase 4: warm-cache throughput burst -----------------------------
  const std::size_t kBurstRepeats = 4;
  std::vector<JobSpec> burst;
  for (std::size_t r = 0; r < kBurstRepeats; ++r) {
    burst.insert(burst.end(), jobs.begin(), jobs.end());
  }
  ServiceConfig burst_config;
  burst_config.threads = 4;
  burst_config.queue_capacity = burst.size();
  burst_config.cache.directory = cache_dir;  // Warm from phase 1.
  const PhaseResult throughput = run_phase(burst_config, burst);

  std::vector<double> queue_ms;
  std::vector<double> run_ms;
  for (const JobSnapshot& job : throughput.jobs) {
    queue_ms.push_back(job.queue_ms);
    run_ms.push_back(job.run_ms);
  }
  const double jobs_per_sec =
      throughput.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(throughput.jobs.size()) /
                throughput.wall_ms
          : 0.0;

  util::Table tp_table("Warm-cache burst throughput");
  tp_table.set_header({"Jobs", "Threads", "Wall ms", "Jobs/s", "Queue p50 ms",
                       "Queue p99 ms", "Run p50 ms", "Run p99 ms"});
  tp_table.add_row(
      {std::to_string(throughput.jobs.size()), "4",
       util::format_sig(throughput.wall_ms, 4),
       util::format_sig(jobs_per_sec, 4),
       util::format_sig(percentile(queue_ms, 0.50), 4),
       util::format_sig(percentile(queue_ms, 0.99), 4),
       util::format_sig(percentile(run_ms, 0.50), 4),
       util::format_sig(percentile(run_ms, 0.99), 4)});
  std::cout << tp_table << "\n";

  // --- Phase 5: socket loopback burst -----------------------------------
  // Every connection is a REAL socket client of one NetServer (one epoll
  // loop, one runtime, warm cache): submit with a stream subscription,
  // drain the lifecycle to the terminal event, then check the report
  // against an in-process read of the same job.
  const std::size_t kNetConnections = 64;
  ServiceConfig net_service;
  net_service.threads = 4;
  net_service.queue_capacity = kNetConnections + 8;
  net_service.cache.directory = cache_dir;  // Warm from phase 1.
  approxit::svc::InProcessClient net_client(std::move(net_service));
  approxit::net::NetServerConfig net_config;
  net_config.address =
      "unix:/tmp/approxit_bench_" + std::to_string(getpid()) + ".sock";
  approxit::net::NetServer net_server(net_client, net_config);
  std::string net_error;
  const bool net_started = net_server.start(&net_error);
  if (!net_started) {
    std::fprintf(stderr, "net burst: %s\n", net_error.c_str());
  }
  std::thread net_loop;
  if (net_started) net_loop = std::thread([&] { net_server.run(); });

  std::vector<double> net_latency_ms(kNetConnections, 0.0);
  std::vector<char> net_identical(kNetConnections, 0);
  std::atomic<std::size_t> net_failures{0};
  double net_wall_ms = 0.0;
  if (net_started) {
    const double start = now_ms();
    std::vector<std::thread> workers;
    workers.reserve(kNetConnections);
    for (std::size_t i = 0; i < kNetConnections; ++i) {
      workers.emplace_back([&, i] {
        std::string error;
        const auto client = approxit::net::connect_client(
            net_server.listen_address(), &error);
        if (client == nullptr) {
          net_failures.fetch_add(1);
          return;
        }
        const double t0 = now_ms();
        const auto stream =
            client->submit_stream(jobs[i % jobs.size()], &error);
        if (stream == nullptr) {
          net_failures.fetch_add(1);
          return;
        }
        std::optional<approxit::svc::StreamEvent> terminal;
        while (const auto event = stream->next()) terminal = *event;
        net_latency_ms[i] = now_ms() - t0;
        if (!terminal || !terminal->terminal() || !terminal->status) {
          net_failures.fetch_add(1);
          return;
        }
        const auto direct = net_client.result(stream->id());
        net_identical[i] =
            direct && !direct->report_json.empty() &&
            direct->report_json == terminal->status->report_json;
      });
    }
    for (auto& worker : workers) worker.join();
    net_wall_ms = now_ms() - start;
    net_server.stop();
    net_loop.join();
  }

  const bool net_all_identical =
      net_started && net_failures.load() == 0 &&
      std::all_of(net_identical.begin(), net_identical.end(),
                  [](char identical) { return identical != 0; });
  const double net_jobs_per_sec =
      net_wall_ms > 0.0
          ? 1000.0 * static_cast<double>(kNetConnections) / net_wall_ms
          : 0.0;
  std::vector<double> net_latencies(net_latency_ms.begin(),
                                    net_latency_ms.end());
  ok = ok && net_all_identical;

  const WallAggregate net_wall_agg = wall_aggregate(net_latencies);

  util::Table net_table("Socket loopback burst (one event loop)");
  net_table.set_header({"Conns", "Wall ms", "Jobs/s", "Lat p50 ms",
                        "Lat p99 ms", "Lat max ms", "Identical"});
  net_table.add_row({std::to_string(kNetConnections),
                     util::format_sig(net_wall_ms, 4),
                     util::format_sig(net_jobs_per_sec, 4),
                     util::format_sig(percentile(net_latencies, 0.50), 4),
                     util::format_sig(percentile(net_latencies, 0.99), 4),
                     util::format_sig(net_wall_agg.max, 4),
                     net_all_identical ? "yes" : "NO"});
  std::cout << net_table << "\n";

  // --- Phase 6: merged-stats determinism across shard counts ------------
  // The same job set through routers of 1/2/4 shards (memory-only cache):
  // route keys colocate same-spec jobs, the merge orders parts by
  // (route_key, local id), so the stats document is topology-invariant.
  const std::size_t shard_counts[] = {1, 2, 4};
  std::vector<std::string> shard_metrics;
  std::vector<double> shard_walls;
  for (const std::size_t shards : shard_counts) {
    approxit::svc::ShardRouterConfig router_config;
    router_config.shards = shards;
    router_config.shard.threads = 2;
    router_config.shard.cache.directory.clear();
    approxit::svc::ShardRouter router(std::move(router_config));
    const double start = now_ms();
    std::vector<std::uint64_t> ids;
    for (const JobSpec& spec : jobs) {
      std::string error;
      const auto id = router.submit(spec, &error);
      if (id) ids.push_back(*id);
    }
    for (const std::uint64_t id : ids) router.result(id);
    router.wait_idle();
    shard_walls.push_back(now_ms() - start);
    const auto stats = router.stats();
    shard_metrics.push_back(stats ? stats->metrics_json : "");
  }
  bool shard_identical = !shard_metrics.empty();
  for (const std::string& metrics : shard_metrics) {
    shard_identical =
        shard_identical && !metrics.empty() && metrics == shard_metrics[0];
  }
  ok = ok && shard_identical;

  util::Table shard_table("Shard-count determinism (merged stats)");
  shard_table.set_header({"Shards", "Wall ms", "Identical"});
  for (std::size_t r = 0; r < shard_metrics.size(); ++r) {
    shard_table.add_row({std::to_string(shard_counts[r]),
                         util::format_sig(shard_walls[r], 4),
                         shard_identical ? "yes" : "NO"});
  }
  std::cout << shard_table << "\n";

  // --- Phase 7: sharded + batched 512-connection net burst --------------
  // The tentpole gate: 512 loopback connections against a 4-shard router
  // with micro-batching on. Every terminal wire report must be
  // byte-identical to the solo in-process reference (det_runs[0], the
  // threads=1 differential), occupancy must show real coalescing, and
  // jobs/sec must beat the phase-5 single-runtime baseline >= 3x.
  const std::size_t kShardConnections = 512;
  const std::size_t kShardCount = 4;
  approxit::svc::ShardRouterConfig burst_router_config;
  burst_router_config.shards = kShardCount;
  burst_router_config.shard.threads = 2;
  burst_router_config.shard.queue_capacity = kShardConnections + 32;
  burst_router_config.shard.cache.directory = cache_dir;  // Warm tier.
  burst_router_config.shard.batch.enabled = true;
  burst_router_config.shard.batch.max_batch = 16;
  burst_router_config.shard.batch.window_ms = 2.0;
  approxit::svc::ShardRouter shard_router(std::move(burst_router_config));
  approxit::net::NetServerConfig shard_net_config;
  shard_net_config.address = "unix:/tmp/approxit_bench_shard_" +
                             std::to_string(getpid()) + ".sock";
  approxit::net::NetServer shard_server(shard_router, shard_net_config);
  std::string shard_error;
  const bool shard_started = shard_server.start(&shard_error);
  if (!shard_started) {
    std::fprintf(stderr, "sharded burst: %s\n", shard_error.c_str());
  }
  std::thread shard_loop;
  if (shard_started) shard_loop = std::thread([&] { shard_server.run(); });

  std::vector<double> shard_latency_ms(kShardConnections, 0.0);
  std::vector<double> shard_queue_ms(kShardConnections, 0.0);
  std::vector<double> shard_run_ms(kShardConnections, 0.0);
  std::vector<char> shard_report_ok(kShardConnections, 0);
  std::atomic<std::size_t> shard_failures{0};
  double shard_wall_ms = 0.0;
  if (shard_started) {
    const double start = now_ms();
    std::vector<std::thread> workers;
    workers.reserve(kShardConnections);
    for (std::size_t i = 0; i < kShardConnections; ++i) {
      workers.emplace_back([&, i] {
        std::string error;
        const auto client = approxit::net::connect_client(
            shard_server.listen_address(), &error);
        if (client == nullptr) {
          shard_failures.fetch_add(1);
          return;
        }
        const double t0 = now_ms();
        const auto stream =
            client->submit_stream(jobs[i % jobs.size()], &error);
        if (stream == nullptr) {
          shard_failures.fetch_add(1);
          return;
        }
        std::optional<approxit::svc::StreamEvent> terminal;
        while (const auto event = stream->next()) terminal = *event;
        shard_latency_ms[i] = now_ms() - t0;
        if (!terminal || !terminal->terminal() || !terminal->status) {
          shard_failures.fetch_add(1);
          return;
        }
        shard_queue_ms[i] = terminal->status->queue_ms;
        shard_run_ms[i] = terminal->status->run_ms;
        // Solo differential: the threads=1 unbatched in-process run of
        // the same spec (det_runs[0] preserves job_mix order).
        shard_report_ok[i] =
            !terminal->status->report_json.empty() &&
            terminal->status->report_json ==
                det_runs[0].jobs[i % jobs.size()].report_json;
      });
    }
    for (auto& worker : workers) worker.join();
    shard_wall_ms = now_ms() - start;
    shard_server.stop();
    shard_loop.join();
  }

  const bool shard_all_identical =
      shard_started && shard_failures.load() == 0 &&
      std::all_of(shard_report_ok.begin(), shard_report_ok.end(),
                  [](char identical) { return identical != 0; });
  const double shard_jobs_per_sec =
      shard_wall_ms > 0.0
          ? 1000.0 * static_cast<double>(kShardConnections) / shard_wall_ms
          : 0.0;
  const ServiceStats shard_stats = shard_router.service_stats();
  const double occupancy =
      shard_stats.batch_groups > 0
          ? static_cast<double>(shard_stats.batch_jobs) /
                static_cast<double>(shard_stats.batch_groups)
          : 0.0;
  const double speedup_vs_single =
      net_jobs_per_sec > 0.0 ? shard_jobs_per_sec / net_jobs_per_sec : 0.0;
  const bool occupancy_gate = occupancy > 1.0;
  const bool throughput_gate = speedup_vs_single >= 3.0;
  const WallAggregate shard_wall_agg = wall_aggregate(shard_latency_ms);
  ok = ok && shard_all_identical && occupancy_gate && throughput_gate;

  util::Table shard_net_table("Sharded + batched loopback burst");
  shard_net_table.set_header({"Conns", "Shards", "Wall ms", "Jobs/s",
                              "Lat p50 ms", "Lat p99 ms", "Occupancy",
                              "Speedup", "Identical"});
  shard_net_table.add_row(
      {std::to_string(kShardConnections), std::to_string(kShardCount),
       util::format_sig(shard_wall_ms, 4),
       util::format_sig(shard_jobs_per_sec, 4),
       util::format_sig(percentile(shard_latency_ms, 0.50), 4),
       util::format_sig(percentile(shard_latency_ms, 0.99), 4),
       util::format_sig(occupancy, 3),
       util::format_sig(speedup_vs_single, 3),
       shard_all_identical ? "yes" : "NO"});
  std::cout << shard_net_table << "\n";
  std::printf(
      "sharded burst: queue p50=%.2fms p99=%.2fms run p50=%.2fms "
      "p99=%.2fms groups=%zu jobs=%zu\n\n",
      percentile(shard_queue_ms, 0.50), percentile(shard_queue_ms, 0.99),
      percentile(shard_run_ms, 0.50), percentile(shard_run_ms, 0.99),
      shard_stats.batch_groups, shard_stats.batch_jobs);

  // --- Artifact ---------------------------------------------------------
  std::ostringstream json;
  json << "{\n  \"bench\": \"service\",\n"
       << "  \"cold\": {\"jobs\": " << cold.jobs.size()
       << ", \"wall_ms\": " << cold.wall_ms
       << ", \"characterization_ms\": " << cold.characterization_ms
       << ", \"cache_hits\": " << cold.stats.cache.hits
       << ", \"cache_misses\": " << cold.stats.cache.misses
       << ", \"stores\": " << cold.stats.cache.stores << "},\n"
       << "  \"warm\": {\"jobs\": " << warm.jobs.size()
       << ", \"wall_ms\": " << warm.wall_ms
       << ", \"characterization_ms\": " << warm.characterization_ms
       << ", \"cache_hits\": " << warm.stats.cache.hits
       << ", \"disk_hits\": " << warm.stats.cache.disk_hits
       << ", \"all_hits\": " << (warm_all_hits ? "true" : "false")
       << ", \"byte_identical_reports\": "
       << (warm_identical ? "true" : "false") << "},\n"
       << "  \"characterization_speedup\": " << char_speedup << ",\n"
       << "  \"determinism\": {\"thread_counts\": [1, 4, 8], \"identical\": "
       << (deterministic ? "true" : "false") << "},\n"
       << "  \"throughput\": {\"jobs\": " << throughput.jobs.size()
       << ", \"threads\": 4, \"wall_ms\": " << throughput.wall_ms
       << ", \"jobs_per_sec\": " << jobs_per_sec
       << ", \"queue_ms_p50\": " << percentile(queue_ms, 0.50)
       << ", \"queue_ms_p90\": " << percentile(queue_ms, 0.90)
       << ", \"queue_ms_p99\": " << percentile(queue_ms, 0.99)
       << ", \"run_ms_p50\": " << percentile(run_ms, 0.50)
       << ", \"run_ms_p99\": " << percentile(run_ms, 0.99) << "},\n"
       << "  \"net_burst\": {\"connections\": " << kNetConnections
       << ", \"wall_ms\": " << net_wall_ms
       << ", \"jobs_per_sec\": " << net_jobs_per_sec
       << ", \"latency_ms_p50\": " << percentile(net_latencies, 0.50)
       << ", \"latency_ms_p90\": " << percentile(net_latencies, 0.90)
       << ", \"latency_ms_p99\": " << percentile(net_latencies, 0.99)
       << ", \"latency_ms_mean\": " << net_wall_agg.mean
       << ", \"latency_ms_min\": " << net_wall_agg.min
       << ", \"latency_ms_max\": " << net_wall_agg.max
       << ", \"byte_identical_reports\": "
       << (net_all_identical ? "true" : "false") << "},\n"
       << "  \"shard_determinism\": {\"shard_counts\": [1, 2, 4], "
       << "\"identical\": " << (shard_identical ? "true" : "false") << "},\n"
       << "  \"sharded_net_burst\": {\"connections\": " << kShardConnections
       << ", \"shards\": " << kShardCount
       << ", \"wall_ms\": " << shard_wall_ms
       << ", \"jobs_per_sec\": " << shard_jobs_per_sec
       << ", \"latency_ms_p50\": " << percentile(shard_latency_ms, 0.50)
       << ", \"latency_ms_p90\": " << percentile(shard_latency_ms, 0.90)
       << ", \"latency_ms_p99\": " << percentile(shard_latency_ms, 0.99)
       << ", \"latency_ms_mean\": " << shard_wall_agg.mean
       << ", \"latency_ms_min\": " << shard_wall_agg.min
       << ", \"latency_ms_max\": " << shard_wall_agg.max
       << ", \"queue_ms_p50\": " << percentile(shard_queue_ms, 0.50)
       << ", \"queue_ms_p90\": " << percentile(shard_queue_ms, 0.90)
       << ", \"queue_ms_p99\": " << percentile(shard_queue_ms, 0.99)
       << ", \"run_ms_p50\": " << percentile(shard_run_ms, 0.50)
       << ", \"run_ms_p90\": " << percentile(shard_run_ms, 0.90)
       << ", \"run_ms_p99\": " << percentile(shard_run_ms, 0.99)
       << ", \"batch_groups\": " << shard_stats.batch_groups
       << ", \"batch_jobs\": " << shard_stats.batch_jobs
       << ", \"occupancy\": " << occupancy
       << ", \"speedup_vs_single_runtime\": " << speedup_vs_single
       << ", \"byte_identical_reports\": "
       << (shard_all_identical ? "true" : "false") << "}\n}\n";

  const std::string path = artifact_path("BENCH_service.json");
  std::ofstream out(path);
  out << json.str();
  std::printf("Wrote %s\n", path.c_str());

  if (!ok) {
    std::printf(
        "FAIL: warm_all_hits=%d warm_identical=%d amortized=%d "
        "deterministic=%d net_identical=%d shard_identical=%d "
        "sharded_net_identical=%d occupancy_gate=%d throughput_gate=%d\n",
        warm_all_hits ? 1 : 0, warm_identical ? 1 : 0, amortized ? 1 : 0,
        deterministic ? 1 : 0, net_all_identical ? 1 : 0,
        shard_identical ? 1 : 0, shard_all_identical ? 1 : 0,
        occupancy_gate ? 1 : 0, throughput_gate ? 1 : 0);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
