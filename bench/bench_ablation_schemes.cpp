// Ablation: the incremental strategy with individual schemes disabled,
// on the GMM 3cluster workload. Shows what each scheme contributes to the
// quality guarantee (DESIGN.md, experiment index).
#include <cstdio>
#include <iostream>

#include "apps/gmm.h"
#include "bench/common.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;

int run() {
  std::printf("=== bench_ablation_schemes: incremental-scheme ablation ===\n\n");

  struct Variant {
    const char* label;
    core::IncrementalOptions options;
  };
  const Variant variants[] = {
      {"all schemes (paper)", {}},
      {"no gradient scheme",
       {.gradient_scheme = false, .quality_scheme = true,
        .function_scheme = true}},
      {"no quality scheme",
       {.gradient_scheme = true, .quality_scheme = false,
        .function_scheme = true}},
      {"no function scheme",
       {.gradient_scheme = true, .quality_scheme = true,
        .function_scheme = false}},
      {"gradient only",
       {.gradient_scheme = true, .quality_scheme = false,
        .function_scheme = false}},
      {"no schemes at all",
       {.gradient_scheme = false, .quality_scheme = false,
        .function_scheme = false}},
  };

  util::Table table("Incremental strategy scheme ablation (GMM)");
  table.set_header({"Dataset", "Variant", "Iterations", "G/Q/F fires",
                    "Rollbacks", "QEM", "Energy", "Converged"});
  table.set_align(1, util::Align::kLeft);

  for (workloads::GmmDatasetId id :
       {workloads::GmmDatasetId::k3cluster, workloads::GmmDatasetId::k4cluster}) {
    const workloads::GmmDataset ds = workloads::make_gmm_dataset(id);
    arith::QcsAlu alu;

    apps::GmmEm char_method(ds);
    const core::ModeCharacterization characterization =
        core::characterize(char_method, alu);

    apps::GmmEm truth_method(ds);
    const core::RunReport truth =
        bench::run_truth(truth_method, alu, characterization);
    const std::vector<int> truth_assign = truth_method.assignments();

    for (const Variant& variant : variants) {
      apps::GmmEm method(ds);
      core::IncrementalStrategy strategy(variant.options);
      const core::RunReport report =
          bench::run_once(method, strategy, alu, characterization);
      table.add_row(
          {ds.name, variant.label, std::to_string(report.iterations),
           std::to_string(strategy.gradient_triggers()) + "/" +
               std::to_string(strategy.quality_triggers()) + "/" +
               std::to_string(strategy.function_triggers()),
           std::to_string(report.rollbacks),
           std::to_string(
               apps::hamming_distance(truth_assign, method.assignments())),
           util::format_sig(bench::relative_energy(report, truth), 3),
           report.converged ? "yes" : "MAX_ITER"});
    }
    table.add_separator();
  }

  std::cout << table;
  std::printf(
      "\nWith every scheme disabled the strategy degenerates to a level1 "
      "single-mode run\n(false stop); the quality scheme drives the "
      "escalation, the function scheme recovers\nfrom objective increases, "
      "the gradient scheme catches corrupted directions.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
