// Regenerates the Section 3.1 offline-characterization evidence:
//  (1) low-level adder metrics (ER/ME/MED/MRED/WCE) for every QCS accuracy
//      level and several published approximate-adder families;
//  (2) the iteration-level quality errors (Definition 1) of the same QCS
//      levels on both applications — demonstrating the paper's point that
//      low-level metrics alone cannot predict application quality.
#include <cstdio>
#include <iostream>
#include <memory>

#include "apps/autoregression.h"
#include "apps/gmm.h"
#include "arith/approx_adders.h"
#include "arith/energy.h"
#include "arith/error_metrics.h"
#include "core/characterization.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;
using arith::ApproxMode;

constexpr std::size_t kSamples = 50000;
constexpr std::uint64_t kSeed = 2014;

void add_adder_row(util::Table& table, const arith::Adder& adder) {
  const arith::ErrorStats stats =
      arith::characterize_adder(adder, kSamples, kSeed);
  table.add_row({adder.name(), util::format_sig(stats.error_rate, 3),
                 util::format_sig(stats.mean_error, 3),
                 util::format_sig(stats.mean_error_distance, 3),
                 util::format_sig(stats.mean_relative_error, 3),
                 util::format_sig(stats.worst_case_error, 3),
                 util::format_sig(arith::adder_energy(adder), 4)});
}

void print_low_level_metrics() {
  util::Table table(
      "Low-level adder metrics (32-bit, uniform operands, 50k samples)");
  table.set_header({"Adder", "ER", "ME", "MED", "MRED", "WCE", "Energy/op"});

  const arith::QcsConfig config;  // the GMM QCS
  for (unsigned k : config.level_approx_bits) {
    add_adder_row(table, arith::GdaAdder(32, k));
  }
  add_adder_row(table, arith::GdaAdder(32, 0));  // accurate configuration
  table.add_separator();
  add_adder_row(table, arith::LowerOrAdder(32, 12));
  add_adder_row(table, arith::EtaIAdder(32, 12));
  add_adder_row(table, arith::EtaIIAdder(32, 8));
  add_adder_row(table, arith::AcaAdder(32, 12));
  add_adder_row(table, arith::GearAdder(32, 4, 8));
  add_adder_row(table, arith::TruncatedAdder(32, 12));
  add_adder_row(table, arith::QcsConfigurableAdder(32, 12));
  std::cout << table << "\n";
}

void print_iteration_level_quality() {
  util::Table table(
      "Iteration-level quality error (Definition 1) per mode and "
      "application");
  table.set_header({"Application", "eps(l1)", "eps(l2)", "eps(l3)", "eps(l4)",
                    "state-eps(l1)", "state-eps(l4)", "E = f(x0)-f(x1)"});

  {
    const auto ds = workloads::make_gmm_dataset(workloads::GmmDatasetId::k3cluster);
    arith::QcsAlu alu;
    apps::GmmEm method(ds);
    const core::ModeCharacterization c = core::characterize(method, alu);
    table.add_row({"GMM (3cluster)",
                   util::format_sig(c.quality_error[0], 3),
                   util::format_sig(c.quality_error[1], 3),
                   util::format_sig(c.quality_error[2], 3),
                   util::format_sig(c.quality_error[3], 3),
                   util::format_sig(c.state_error[0], 3),
                   util::format_sig(c.state_error[3], 3),
                   util::format_sig(c.initial_improvement, 3)});
  }
  {
    const auto ds =
        workloads::make_series_dataset(workloads::SeriesId::kHangSeng);
    arith::QcsAlu alu(apps::ar_qcs_config());
    apps::AutoRegression method(ds);
    const core::ModeCharacterization c = core::characterize(method, alu);
    table.add_row({"AR (HangSeng)",
                   util::format_sig(c.quality_error[0], 3),
                   util::format_sig(c.quality_error[1], 3),
                   util::format_sig(c.quality_error[2], 3),
                   util::format_sig(c.quality_error[3], 3),
                   util::format_sig(c.state_error[0], 3),
                   util::format_sig(c.state_error[3], 3),
                   util::format_sig(c.initial_improvement, 3)});
  }
  std::cout << table;
  std::printf(
      "\nThe same hardware levels produce application-dependent quality "
      "errors — the reason\nApproxIt characterizes at iteration level "
      "instead of trusting ER/MED alone.\n");
}

}  // namespace

int main() {
  std::printf("=== bench_adder_characterization: Section 3.1 ===\n\n");
  print_low_level_metrics();
  print_iteration_level_quality();
  return 0;
}
