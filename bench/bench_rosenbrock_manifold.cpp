// Regenerates the Figure 2 motivation: on a non-convex parameter manifold
// (Rosenbrock valley) the error-tolerance of the application is NOT
// monotonically decreasing — the iterate leaves steep walls, crosses the
// flat valley floor, and the one-directional incremental strategy cannot
// re-cheapen, while the angle-based adaptive strategy can.
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "opt/gradient_descent.h"
#include "opt/problem.h"
#include "util/table.h"

namespace {

using namespace approxit;

int run() {
  std::printf("=== bench_rosenbrock_manifold: Figure 2 motivation ===\n\n");

  opt::RosenbrockProblem problem(2);
  const std::vector<double> x0 = {-1.2, 1.0};
  const opt::GdConfig config{.step_size = 1.5e-3,
                             .momentum = 0.0,
                             .max_iter = 20000,
                             .tolerance = 1e-13};
  arith::QcsAlu alu;

  opt::GradientDescentSolver char_solver(problem, x0, config);
  const core::ModeCharacterization characterization =
      core::characterize(char_solver, alu);

  opt::GradientDescentSolver truth_solver(problem, x0, config);
  const core::RunReport truth =
      bench::run_truth(truth_solver, alu, characterization);

  util::Table table("Rosenbrock valley under ApproxIt strategies");
  table.set_header({"Strategy", "Iterations", "Final f", "Reconfigs",
                    "Downgrades", "Cheap-mode steps", "Energy vs Truth"});
  table.set_align(0, util::Align::kLeft);
  table.add_row({"Truth", bench::iteration_cell(truth),
                 util::format_sig(truth.final_objective, 3), "0", "0", "0",
                 "1"});

  // Downgrades = reconfigurations toward LOWER accuracy; only the adaptive
  // strategy can produce them.
  const auto count_downgrades = [](const core::RunReport& report) {
    std::size_t downs = 0;
    for (std::size_t i = 1; i < report.trace.size(); ++i) {
      if (arith::mode_index(report.trace[i].mode) <
          arith::mode_index(report.trace[i - 1].mode)) {
        ++downs;
      }
    }
    return downs;
  };

  {
    opt::GradientDescentSolver solver(problem, x0, config);
    core::IncrementalStrategy strategy;
    const core::RunReport report =
        bench::run_once(solver, strategy, alu, characterization);
    table.add_row(
        {"incremental", bench::iteration_cell(report),
         util::format_sig(report.final_objective, 3),
         std::to_string(report.reconfigurations),
         std::to_string(count_downgrades(report)),
         std::to_string(report.steps(arith::ApproxMode::kLevel1) +
                        report.steps(arith::ApproxMode::kLevel2)),
         util::format_sig(bench::relative_energy(report, truth), 3)});
  }
  {
    opt::GradientDescentSolver solver(problem, x0, config);
    core::AdaptiveAngleStrategy strategy;
    const core::RunReport report =
        bench::run_once(solver, strategy, alu, characterization);
    table.add_row(
        {"adaptive(f=1)", bench::iteration_cell(report),
         util::format_sig(report.final_objective, 3),
         std::to_string(report.reconfigurations),
         std::to_string(count_downgrades(report)),
         std::to_string(report.steps(arith::ApproxMode::kLevel1) +
                        report.steps(arith::ApproxMode::kLevel2)),
         util::format_sig(bench::relative_energy(report, truth), 3)});
  }

  std::cout << table;
  std::printf(
      "\nOn a non-convex manifold the adaptive strategy keeps reselecting "
      "cheap modes whenever\nthe local steepness allows it (reconfigs in "
      "BOTH directions); the incremental strategy\nratchets to high "
      "accuracy after the first flat stretch and stays there.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
