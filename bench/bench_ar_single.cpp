// Regenerates Table 4(a): AutoRegression single-mode results — iterations,
// QEM (l2 distance between fitted and Truth coefficients) and normalized
// power/energy per accuracy level, on the three index-series surrogates.
#include <cstdio>
#include <iostream>
#include <map>

#include "apps/autoregression.h"
#include "bench/common.h"
#include "core/characterization.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;
using arith::ApproxMode;

struct Row {
  std::string iterations;
  double qem = 0.0;
  double power = 0.0;
};

int run() {
  std::printf("=== bench_ar_single: Table 4(a) ===\n\n");

  util::Table table("Table 4(a): AutoRegression Single Mode Results");
  std::vector<std::string> header = {"Configurations"};
  for (workloads::SeriesId id : workloads::all_series_datasets()) {
    const auto name = workloads::make_series_dataset(id).name;
    header.push_back(name + " Iter");
    header.push_back(name + " QEM");
    header.push_back(name + " Power");
  }
  table.set_header(header);

  std::map<ApproxMode, std::vector<Row>> rows;
  std::vector<std::string> truth_cells = {"Truth"};

  for (workloads::SeriesId id : workloads::all_series_datasets()) {
    const workloads::TimeSeriesDataset ds = workloads::make_series_dataset(id);
    arith::QcsAlu alu(apps::ar_qcs_config());

    apps::AutoRegression char_method(ds);
    const core::ModeCharacterization characterization =
        core::characterize(char_method, alu);

    apps::AutoRegression truth_method(ds);
    const core::RunReport truth =
        bench::run_truth(truth_method, alu, characterization);
    const std::vector<double> w_truth(truth_method.coefficients().begin(),
                                      truth_method.coefficients().end());
    truth_cells.push_back(bench::iteration_cell(truth));
    truth_cells.push_back("0");
    truth_cells.push_back("1");

    for (ApproxMode mode : {ApproxMode::kLevel1, ApproxMode::kLevel2,
                            ApproxMode::kLevel3, ApproxMode::kLevel4}) {
      apps::AutoRegression method(ds);
      core::StaticStrategy strategy(mode);
      const core::RunReport report =
          bench::run_once(method, strategy, alu, characterization);
      Row row;
      row.iterations = bench::iteration_cell(report);
      row.qem = apps::coefficient_l2_error(method.coefficients(), w_truth);
      row.power = bench::relative_energy(report, truth);
      rows[mode].push_back(row);
      std::printf("  %-18s %-7s iters=%-9s QEM=%-10s power=%s\n",
                  ds.name.c_str(), arith::mode_name(mode).data(),
                  row.iterations.c_str(), util::format_sig(row.qem, 4).c_str(),
                  util::format_sig(row.power, 3).c_str());
    }
  }

  for (ApproxMode mode : {ApproxMode::kLevel1, ApproxMode::kLevel2,
                          ApproxMode::kLevel3, ApproxMode::kLevel4}) {
    std::vector<std::string> cells = {std::string(arith::mode_name(mode))};
    for (const Row& row : rows[mode]) {
      cells.push_back(row.iterations);
      cells.push_back(util::format_sig(row.qem, 4));
      cells.push_back(util::format_sig(row.power, 3));
    }
    table.add_row(cells);
  }
  table.add_row(truth_cells);

  std::printf("\n%s\n", table.render().c_str());
  return 0;
}

}  // namespace

int main() { return run(); }
