// Shared helpers for the benchmark harness binaries.
//
// Each binary regenerates one table or figure of the paper; these helpers
// cover the common pipeline: characterize once per workload, run Truth,
// then run single-mode configurations and reconfiguration strategies
// against the same characterization.
#pragma once

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "arith/alu.h"
#include "core/characterization.h"
#include "core/session_builder.h"
#include "core/static_strategy.h"
#include "opt/iterative_method.h"
#include "util/table.h"

namespace approxit::bench {

/// Returns "bench_artifacts/<filename>", creating the directory when
/// missing — every benchmark CSV lands there instead of littering the
/// working directory.
inline std::string artifact_path(const std::string& filename) {
  const std::filesystem::path dir("bench_artifacts");
  std::filesystem::create_directories(dir);
  return (dir / filename).string();
}

/// Runs one session with a shared characterization.
inline core::RunReport run_once(opt::IterativeMethod& method,
                                core::Strategy& strategy, arith::QcsAlu& alu,
                                const core::ModeCharacterization& c) {
  return core::SessionBuilder()
      .method(method)
      .strategy(strategy)
      .alu(alu)
      .characterization(c)
      .run();
}

/// Truth = fully accurate static run.
inline core::RunReport run_truth(opt::IterativeMethod& method,
                                 arith::QcsAlu& alu,
                                 const core::ModeCharacterization& c) {
  core::StaticStrategy strategy(arith::ApproxMode::kAccurate);
  return run_once(method, strategy, alu, c);
}

/// Iteration cell: the paper prints "MAX_ITER" for non-converged runs.
inline std::string iteration_cell(const core::RunReport& report) {
  return report.converged ? std::to_string(report.iterations) : "MAX_ITER";
}

/// Normalized energy against the Truth run of the same workload.
inline double relative_energy(const core::RunReport& report,
                              const core::RunReport& truth) {
  return truth.total_energy > 0.0 ? report.total_energy / truth.total_energy
                                  : 0.0;
}

}  // namespace approxit::bench
