// Regenerates Figure 4: GMM energy comparison — total energy on the
// approximate parts and mean energy per iteration, for Truth vs. the
// incremental and adaptive strategies, plus the headline savings
// percentages. Also dumps gmm_fig4_energy.csv with the per-iteration energy
// series for plotting.
#include <cstdio>
#include <iostream>

#include "apps/gmm.h"
#include "bench/common.h"
#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "util/csv.h"
#include "util/parallel.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;

/// Per-dataset runs; computed concurrently, emitted serially in dataset
/// order so the table and CSV are identical to the serial bench.
struct DatasetRuns {
  workloads::GmmDataset dataset;
  core::RunReport truth;
  core::RunReport incremental;
  core::RunReport adaptive;
};

DatasetRuns run_dataset(workloads::GmmDatasetId id) {
  DatasetRuns out;
  out.dataset = workloads::make_gmm_dataset(id);
  arith::QcsAlu alu;

  apps::GmmEm char_method(out.dataset);
  const core::ModeCharacterization characterization =
      core::characterize(char_method, alu);

  apps::GmmEm truth_method(out.dataset);
  out.truth = bench::run_truth(truth_method, alu, characterization);

  apps::GmmEm incr_method(out.dataset);
  core::IncrementalStrategy incr_strategy;
  out.incremental =
      bench::run_once(incr_method, incr_strategy, alu, characterization);

  apps::GmmEm adapt_method(out.dataset);
  core::AdaptiveAngleStrategy adapt_strategy;
  out.adaptive =
      bench::run_once(adapt_method, adapt_strategy, alu, characterization);
  return out;
}

int run() {
  std::printf("=== bench_energy_comparison: Figure 4 ===\n\n");

  util::Table table("Figure 4: GMM Energy Comparison (normalized to Truth)");
  table.set_header({"Dataset", "Truth total", "Incr total", "Incr/iter",
                    "Incr saving", "Adapt total", "Adapt/iter",
                    "Adapt saving"});

  util::CsvWriter csv(bench::artifact_path("gmm_fig4_energy.csv"));
  csv.write_row({"dataset", "strategy", "iteration", "energy"});

  const std::vector<workloads::GmmDatasetId> ids =
      workloads::all_gmm_datasets();
  std::vector<DatasetRuns> runs(ids.size());
  util::parallel_for(ids.size(), util::default_thread_count(),
                     [&](std::size_t i) { runs[i] = run_dataset(ids[i]); });

  for (const DatasetRuns& dataset_runs : runs) {
    const workloads::GmmDataset& ds = dataset_runs.dataset;
    const core::RunReport& truth = dataset_runs.truth;
    const core::RunReport& incr = dataset_runs.incremental;
    const core::RunReport& adapt = dataset_runs.adaptive;
    const double truth_per_iter =
        truth.total_energy / static_cast<double>(truth.iterations);

    auto emit_series = [&](const char* strategy_name,
                           const core::RunReport& report) {
      for (const core::IterationRecord& rec : report.trace) {
        csv.write_row({ds.name, strategy_name, std::to_string(rec.index),
                       std::to_string(rec.energy / truth_per_iter)});
      }
    };
    emit_series("truth", truth);
    emit_series("incremental", incr);
    emit_series("adaptive", adapt);

    const double incr_rel = bench::relative_energy(incr, truth);
    const double adapt_rel = bench::relative_energy(adapt, truth);
    table.add_row(
        {ds.name, "1.0", util::format_sig(incr_rel, 3),
         util::format_sig(incr.total_energy /
                              static_cast<double>(incr.iterations) /
                              truth_per_iter,
                          3),
         util::format_percent(1.0 - incr_rel),
         util::format_sig(adapt_rel, 3),
         util::format_sig(adapt.total_energy /
                              static_cast<double>(adapt.iterations) /
                              truth_per_iter,
                          3),
         util::format_percent(1.0 - adapt_rel)});
  }

  std::cout << table;
  std::printf(
      "\n'total' columns are energies on the approximate parts normalized "
      "to the Truth run;\n'/iter' columns are mean per-iteration energies "
      "normalized to Truth's per-iteration energy.\nPer-iteration series "
      "written to bench_artifacts/gmm_fig4_energy.csv.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
