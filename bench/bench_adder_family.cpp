// Ablation: swap the QCS's adder family (the paper notes the framework "is
// also applicable to other approximate component designs"). Each family
// provides a 4-level bank over the same Q16.16 datapath; GMM 3cluster runs
// under the incremental strategy.
#include <array>
#include <cstdio>
#include <iostream>
#include <memory>

#include "apps/gmm.h"
#include "arith/approx_adders.h"
#include "arith/exact_adders.h"
#include "bench/common.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;
using arith::AdderPtr;

std::array<AdderPtr, arith::kNumModes> make_bank(const std::string& family) {
  auto accurate = std::make_shared<arith::RippleCarryAdder>(32);
  if (family == "gda") {
    return {std::make_shared<arith::GdaAdder>(32, 13),
            std::make_shared<arith::GdaAdder>(32, 11),
            std::make_shared<arith::GdaAdder>(32, 9),
            std::make_shared<arith::GdaAdder>(32, 7), accurate};
  }
  // Each family's accuracy ladder is part of the OFFLINE design: the
  // parameters below were chosen (like the GDA defaults) so that level1 is
  // aggressive but per-iteration damage stays within what the schemes can
  // catch. ETA-I saturates (positive bias) and truncation drops both low
  // addends (negative bias), so their ladders sit a few bits lower.
  if (family == "loa") {
    return {std::make_shared<arith::LowerOrAdder>(32, 13),
            std::make_shared<arith::LowerOrAdder>(32, 11),
            std::make_shared<arith::LowerOrAdder>(32, 9),
            std::make_shared<arith::LowerOrAdder>(32, 7), accurate};
  }
  if (family == "etai") {
    return {std::make_shared<arith::EtaIAdder>(32, 6),
            std::make_shared<arith::EtaIAdder>(32, 4),
            std::make_shared<arith::EtaIAdder>(32, 3),
            std::make_shared<arith::EtaIAdder>(32, 2), accurate};
  }
  if (family == "trunc") {
    return {std::make_shared<arith::TruncatedAdder>(32, 6),
            std::make_shared<arith::TruncatedAdder>(32, 4),
            std::make_shared<arith::TruncatedAdder>(32, 3),
            std::make_shared<arith::TruncatedAdder>(32, 2), accurate};
  }
  if (family == "windowed") {
    // The windowed design shares one physical structure across all
    // configurations, so its accurate mode is the full-chain configuration
    // of the SAME adder (not the plain ripple design).
    return {std::make_shared<arith::QcsConfigurableAdder>(32, 16),
            std::make_shared<arith::QcsConfigurableAdder>(32, 20),
            std::make_shared<arith::QcsConfigurableAdder>(32, 24),
            std::make_shared<arith::QcsConfigurableAdder>(32, 28),
            std::make_shared<arith::QcsConfigurableAdder>(32, 32)};
  }
  throw std::invalid_argument("unknown family " + family);
}

int run() {
  std::printf("=== bench_adder_family: QCS adder-family ablation ===\n\n");

  const workloads::GmmDataset ds =
      workloads::make_gmm_dataset(workloads::GmmDatasetId::k3cluster);

  util::Table table(
      "Adder families under the incremental strategy (GMM, 3cluster)");
  table.set_header({"Family", "Truth iters", "Strategy iters", "QEM",
                    "Energy", "Converged"});
  table.set_align(0, util::Align::kLeft);

  for (const char* family : {"gda", "loa", "etai", "trunc", "windowed"}) {
    arith::QcsAlu alu(arith::QFormat{32, 16}, make_bank(family));

    apps::GmmEm char_method(ds);
    const core::ModeCharacterization characterization =
        core::characterize(char_method, alu);

    apps::GmmEm truth_method(ds);
    const core::RunReport truth =
        bench::run_truth(truth_method, alu, characterization);
    const std::vector<int> truth_assign = truth_method.assignments();

    apps::GmmEm method(ds);
    core::IncrementalStrategy strategy;
    const core::RunReport report =
        bench::run_once(method, strategy, alu, characterization);

    table.add_row(
        {family, std::to_string(truth.iterations),
         std::to_string(report.iterations),
         std::to_string(
             apps::hamming_distance(truth_assign, method.assignments())),
         util::format_sig(bench::relative_energy(report, truth), 3),
         report.converged ? "yes" : "MAX_ITER"});
  }

  std::cout << table;
  std::printf(
      "\nThe framework is adder-family agnostic, but each family's accuracy "
      "LADDER must be\ncalibrated offline: error STRUCTURE matters as much "
      "as magnitude (ETA-I's saturation\nand truncation's negative bias "
      "corrupt basin selection at parameter settings where\nthe bounded "
      "GDA/LOA errors are still safe), so their ladders sit several bits "
      "lower.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
