// Regenerates Table 3(b): GMM online reconfiguration results — per-mode
// step counts, total iterations and final error (Hamming distance vs.
// Truth) for the incremental and the adaptive (f=1) strategies.
#include <cstdio>
#include <iostream>

#include "apps/gmm.h"
#include "bench/common.h"
#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;

void append_cells(std::vector<std::string>& cells,
                  const core::RunReport& report, std::size_t qem) {
  for (arith::ApproxMode mode : arith::kAllModes) {
    cells.push_back(std::to_string(report.steps(mode)));
  }
  cells.push_back(std::to_string(report.iterations));
  cells.push_back(std::to_string(qem));
}

int run() {
  std::printf("=== bench_gmm_reconfig: Table 3(b) ===\n\n");

  util::Table table("Table 3(b): GMM Online Reconfiguration Results");
  table.set_header({"Dataset", "I:l1", "I:l2", "I:l3", "I:l4", "I:acc",
                    "I:Total", "I:Error", "A:l1", "A:l2", "A:l3", "A:l4",
                    "A:acc", "A:Total", "A:Error"});

  for (workloads::GmmDatasetId id : workloads::all_gmm_datasets()) {
    const workloads::GmmDataset ds = workloads::make_gmm_dataset(id);
    arith::QcsAlu alu;

    apps::GmmEm char_method(ds);
    const core::ModeCharacterization characterization =
        core::characterize(char_method, alu);

    apps::GmmEm truth_method(ds);
    (void)bench::run_truth(truth_method, alu, characterization);
    const std::vector<int> truth_assign = truth_method.assignments();

    std::vector<std::string> cells = {ds.name};

    {
      apps::GmmEm method(ds);
      core::IncrementalStrategy strategy;
      const core::RunReport report =
          bench::run_once(method, strategy, alu, characterization);
      append_cells(cells, report,
                   apps::hamming_distance(truth_assign, method.assignments()));
    }
    {
      apps::GmmEm method(ds);
      core::AdaptiveAngleStrategy strategy;  // f = 1
      const core::RunReport report =
          bench::run_once(method, strategy, alu, characterization);
      append_cells(cells, report,
                   apps::hamming_distance(truth_assign, method.assignments()));
    }
    table.add_row(cells);
  }

  std::cout << table;
  std::printf(
      "\nColumns: I = Incremental Reconfiguration, A = Adaptive "
      "Reconfiguration (f=1);\nl1..l4/acc = steps executed per accuracy "
      "level; Error = Hamming distance vs Truth.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
