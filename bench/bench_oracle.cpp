// Headroom bench: the oracle lower bound (cheapest admissible mode per
// iteration of the accurate trajectory, with free lookahead) against the
// causal strategies on the GMM workloads. The gap oracle <-> strategy is
// the price of causality; the gap strategy <-> Truth is the realized
// saving.
#include <cstdio>
#include <iostream>

#include "apps/gmm.h"
#include "bench/common.h"
#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "core/oracle.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;

int run() {
  std::printf("=== bench_oracle: savings headroom (GMM) ===\n\n");

  util::Table table("Energy vs Truth: oracle bound and causal strategies");
  table.set_header({"Dataset", "Oracle", "Incremental", "Adaptive",
                    "Oracle mode split l1..l4/acc"});

  for (workloads::GmmDatasetId id : workloads::all_gmm_datasets()) {
    const workloads::GmmDataset ds = workloads::make_gmm_dataset(id);
    arith::QcsAlu alu;

    apps::GmmEm char_method(ds);
    const core::ModeCharacterization characterization =
        core::characterize(char_method, alu);

    apps::GmmEm truth_method(ds);
    const core::RunReport truth =
        bench::run_truth(truth_method, alu, characterization);

    apps::GmmEm oracle_method(ds);
    const core::RunReport oracle = core::run_oracle(oracle_method, alu);

    apps::GmmEm incr_method(ds);
    core::IncrementalStrategy incr_strategy;
    const core::RunReport incr =
        bench::run_once(incr_method, incr_strategy, alu, characterization);

    apps::GmmEm adapt_method(ds);
    core::AdaptiveAngleStrategy adapt_strategy;
    const core::RunReport adapt =
        bench::run_once(adapt_method, adapt_strategy, alu, characterization);

    std::string split;
    for (std::size_t i = 0; i < arith::kNumModes; ++i) {
      if (i > 0) split += "/";
      split += std::to_string(oracle.steps_per_mode[i]);
    }
    table.add_row({ds.name,
                   util::format_sig(bench::relative_energy(oracle, truth), 3),
                   util::format_sig(bench::relative_energy(incr, truth), 3),
                   util::format_sig(bench::relative_energy(adapt, truth), 3),
                   split});
  }

  std::cout << table;
  std::printf(
      "\nThe oracle advances along the exact trajectory and accounts each "
      "iteration at the\ncheapest mode satisfying the update-error "
      "criterion: the mode-selection headroom at\nzero per-iteration "
      "deviation. A causal strategy can still undercut it in TOTAL energy\n"
      "by converging in fewer iterations on its own approximate trajectory "
      "(4cluster's\nincremental row) — the two effects compose.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
