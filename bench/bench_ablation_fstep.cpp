// Ablation: the adaptive strategy's LUT update period f (Section 4.2.2) on
// the GMM 3cluster workload — quality/energy as the update frequency drops
// from every iteration (f=1, greedy) to rare refreshes — plus the
// worst-case-vs-mean error constraint variant.
#include <cstdio>
#include <iostream>

#include "apps/gmm.h"
#include "bench/common.h"
#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;

int run() {
  std::printf("=== bench_ablation_fstep: adaptive f-step ablation ===\n\n");

  const workloads::GmmDataset ds =
      workloads::make_gmm_dataset(workloads::GmmDatasetId::k3cluster);
  arith::QcsAlu alu;

  apps::GmmEm char_method(ds);
  const core::ModeCharacterization characterization =
      core::characterize(char_method, alu);

  apps::GmmEm truth_method(ds);
  const core::RunReport truth =
      bench::run_truth(truth_method, alu, characterization);
  const std::vector<int> truth_assign = truth_method.assignments();

  util::Table table("Adaptive strategy: LUT update period sweep (3cluster)");
  table.set_header({"Variant", "Iterations", "LUT updates", "QEM", "Energy",
                    "Converged"});
  table.set_align(0, util::Align::kLeft);

  for (std::size_t f : {1u, 2u, 5u, 10u, 25u, 100u}) {
    core::AdaptiveOptions options;
    options.update_period = f;
    apps::GmmEm method(ds);
    core::AdaptiveAngleStrategy strategy(options);
    const core::RunReport report =
        bench::run_once(method, strategy, alu, characterization);
    table.add_row(
        {strategy.name(), std::to_string(report.iterations),
         std::to_string(strategy.lut_updates()),
         std::to_string(
             apps::hamming_distance(truth_assign, method.assignments())),
         util::format_sig(bench::relative_energy(report, truth), 3),
         report.converged ? "yes" : "MAX_ITER"});
  }

  {
    core::AdaptiveOptions options;
    options.use_worst_case_error = true;
    apps::GmmEm method(ds);
    core::AdaptiveAngleStrategy strategy(options);
    const core::RunReport report =
        bench::run_once(method, strategy, alu, characterization);
    table.add_row(
        {"f=1, worst-case eps", std::to_string(report.iterations),
         std::to_string(strategy.lut_updates()),
         std::to_string(
             apps::hamming_distance(truth_assign, method.assignments())),
         util::format_sig(bench::relative_energy(report, truth), 3),
         report.converged ? "yes" : "MAX_ITER"});
  }

  std::cout << table;
  std::printf(
      "\nf=1 keeps the LUT greedy-fresh; growing f leaves increasingly "
      "stale budgets (energy\ncreeps up through f=25). Very large f "
      "effectively freezes the offline LUT — the quality\nguard still "
      "protects correctness, and on this workload the frozen LUT happens to "
      "be cheap.\nThe worst-case-eps variant is the conservative reading "
      "of Equation 5's constraint.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
