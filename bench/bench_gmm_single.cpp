// Regenerates Table 3(a): GMM single-mode results — iterations, QEM
// (Hamming distance vs. Truth) and normalized energy per accuracy level —
// and Figure 3: the clustering visualization on 3cluster, emitted both as a
// per-level cluster summary and as CSV scatter dumps
// (gmm_fig3_<config>.csv) for plotting.
#include <cstdio>
#include <iostream>
#include <map>

#include "apps/gmm.h"
#include "bench/common.h"
#include "core/characterization.h"
#include "util/csv.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;
using arith::ApproxMode;

struct SingleModeRow {
  std::string iterations;
  std::size_t qem = 0;
  double energy = 0.0;
};

void dump_figure3_csv(const workloads::GmmDataset& ds,
                      const std::vector<int>& assignments,
                      const std::string& config) {
  const std::string path =
      bench::artifact_path("gmm_fig3_" + config + ".csv");
  util::CsvWriter csv(path);
  csv.write_row({"x", "y", "cluster"});
  for (std::size_t i = 0; i < ds.size(); ++i) {
    csv.write_row({std::to_string(ds.points[i * ds.dim]),
                   std::to_string(ds.points[i * ds.dim + 1]),
                   std::to_string(assignments[i])});
  }
  std::printf("  [fig3] wrote %s (%zu points)\n", path.c_str(), ds.size());
}

void cluster_summary(const workloads::GmmDataset& ds, const apps::GmmEm& m,
                     const std::vector<int>& assignments,
                     const std::string& config) {
  std::map<int, std::size_t> counts;
  for (int a : assignments) ++counts[a];
  std::size_t populated = 0;
  for (const auto& [label, count] : counts) {
    if (count > ds.size() / 100) ++populated;
  }
  std::printf("  [fig3] %s: %zu visible clusters (", config.c_str(),
              populated);
  bool first = true;
  for (const auto& [label, count] : counts) {
    std::printf("%s%d:%zu", first ? "" : ", ", label, count);
    first = false;
  }
  std::printf(")\n");
  (void)m;
}

int run() {
  std::printf("=== bench_gmm_single: Table 3(a) + Figure 3 ===\n\n");

  util::Table table("Table 3(a): GMM Single Mode Results");
  std::vector<std::string> header = {"Configurations"};
  for (workloads::GmmDatasetId id : workloads::all_gmm_datasets()) {
    const auto name = workloads::make_gmm_dataset(id).name;
    header.push_back(name + " Iter");
    header.push_back(name + " QEM");
    header.push_back(name + " Energy");
  }
  table.set_header(header);

  std::map<ApproxMode, std::vector<SingleModeRow>> rows;
  std::vector<std::string> truth_cells = {"Truth"};

  for (workloads::GmmDatasetId id : workloads::all_gmm_datasets()) {
    const workloads::GmmDataset ds = workloads::make_gmm_dataset(id);
    arith::QcsAlu alu;

    apps::GmmEm char_method(ds);
    const core::ModeCharacterization characterization =
        core::characterize(char_method, alu);

    apps::GmmEm truth_method(ds);
    const core::RunReport truth =
        bench::run_truth(truth_method, alu, characterization);
    const std::vector<int> truth_assign = truth_method.assignments();
    truth_cells.push_back(bench::iteration_cell(truth));
    truth_cells.push_back("0");
    truth_cells.push_back("1");

    const bool is_3cluster = id == workloads::GmmDatasetId::k3cluster;
    if (is_3cluster) {
      dump_figure3_csv(ds, truth_assign, "truth");
    }

    for (ApproxMode mode : {ApproxMode::kLevel1, ApproxMode::kLevel2,
                            ApproxMode::kLevel3, ApproxMode::kLevel4}) {
      apps::GmmEm method(ds);
      core::StaticStrategy strategy(mode);
      const core::RunReport report =
          bench::run_once(method, strategy, alu, characterization);
      SingleModeRow row;
      row.iterations = bench::iteration_cell(report);
      row.qem = apps::hamming_distance(truth_assign, method.assignments());
      row.energy = bench::relative_energy(report, truth);
      rows[mode].push_back(row);

      if (is_3cluster) {
        dump_figure3_csv(ds, method.assignments(),
                         std::string(arith::mode_name(mode)));
        cluster_summary(ds, method, method.assignments(),
                        std::string(arith::mode_name(mode)));
      }
    }
  }

  for (ApproxMode mode : {ApproxMode::kLevel1, ApproxMode::kLevel2,
                          ApproxMode::kLevel3, ApproxMode::kLevel4}) {
    std::vector<std::string> cells = {std::string(arith::mode_name(mode))};
    for (const SingleModeRow& row : rows[mode]) {
      cells.push_back(row.iterations);
      cells.push_back(std::to_string(row.qem));
      cells.push_back(util::format_sig(row.energy, 3));
    }
    table.add_row(cells);
  }
  table.add_row(truth_cells);

  std::printf("\n%s\n", table.render().c_str());
  return 0;
}

}  // namespace

int main() { return run(); }
