// Fault sweep: quality and energy vs transient-fault rate, with and
// without the convergence watchdog, for GMM (3cluster, Hamming QEM) and
// AutoRegression (Hang Seng, coefficient l2 QEM).
//
// Both arms run the level2 static configuration on a FaultyQcsAlu
// (uniform bit-flip rate on the approximate levels, accurate mode
// fault-free) against the same seeded fault stream. The guarded arm adds
// the watchdog with a zero-tolerance one-iteration stall window: faults
// freeze or regress the update, which the methods' own convergence tests
// read as a false stop — the stall trigger flags exactly those
// iterations, and the recovery ladder (rollback + forced accurate,
// checkpoint restore, safe-mode latch) carries the run to a clean result.
// Per-row results land in bench_artifacts/fault_sweep.csv.
#include <cstdio>
#include <iostream>
#include <vector>

#include "apps/autoregression.h"
#include "apps/gmm.h"
#include "arith/fault_injector.h"
#include "bench/common.h"
#include "core/characterization.h"
#include "core/static_strategy.h"
#include "util/csv.h"
#include "util/parallel.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;

constexpr std::uint64_t kFaultSeed = 0xf00d;
constexpr double kRates[] = {0.0, 1e-4, 1e-3, 5e-3, 2e-2};

core::SessionOptions arm_options(bool watchdog_enabled) {
  core::SessionOptions options;
  options.watchdog.enabled = watchdog_enabled;
  options.watchdog.divergence_factor = 2.0;
  options.watchdog.stall_window = 1;
  options.watchdog.stall_tolerance = 0.0;
  options.watchdog.safe_mode_after = 2;
  options.watchdog.max_recoveries = 50;
  return options;
}

struct ArmResult {
  core::RunReport report;
  double qem = 0.0;
  std::size_t injected = 0;
};

/// One faulted arm: level2 static on a fresh injector with `rate`.
template <typename MakeMethod, typename Qem>
ArmResult run_arm(MakeMethod&& make_method, Qem&& qem_of, double rate,
                  bool watchdog_enabled, const arith::QcsConfig& qcs,
                  const core::ModeCharacterization& characterization) {
  auto method = make_method();
  arith::FaultyQcsAlu alu(
      arith::FaultConfig::uniform_approximate(rate, kFaultSeed), qcs);
  core::StaticStrategy strategy(arith::ApproxMode::kLevel2);
  core::ApproxItSession session(*method, strategy, alu);
  session.set_characterization(characterization);
  ArmResult result;
  result.report = session.run(arm_options(watchdog_enabled));
  result.qem = qem_of(*method);
  result.injected = alu.fault_ledger().injected();
  return result;
}

template <typename MakeMethod, typename Qem>
void sweep(const char* app, MakeMethod&& make_method, Qem&& qem_of,
           const arith::QcsConfig& qcs, util::Table& table,
           util::CsvWriter& csv) {
  arith::QcsAlu clean(qcs);
  auto char_method = make_method();
  const core::ModeCharacterization characterization =
      core::characterize(*char_method, clean);

  auto truth_method = make_method();
  const core::RunReport truth =
      bench::run_truth(*truth_method, clean, characterization);

  // The rate x {bare, guarded} grid: every arm owns a fresh method and a
  // fresh seeded injector, so the arms are independent and run
  // concurrently; results are indexed by (rate, arm) and the table/CSV
  // rows are emitted serially in grid order afterwards.
  constexpr std::size_t kNumRates = std::size(kRates);
  std::vector<ArmResult> results(kNumRates * 2);
  util::parallel_for(
      results.size(), util::default_thread_count(), [&](std::size_t i) {
        const double rate = kRates[i / 2];
        const bool watchdog_enabled = (i % 2) == 1;
        results[i] = run_arm(make_method, qem_of, rate, watchdog_enabled,
                             qcs, characterization);
      });

  for (std::size_t r = 0; r < kNumRates; ++r) {
    const double rate = kRates[r];
    const ArmResult& bare = results[r * 2];
    const ArmResult& guarded = results[r * 2 + 1];

    table.add_row(
        {app, util::format_sig(rate, 2), util::format_sig(bare.qem, 3),
         util::format_sig(guarded.qem, 3),
         util::format_sig(bench::relative_energy(bare.report, truth), 3),
         util::format_sig(bench::relative_energy(guarded.report, truth), 3),
         std::string(core::run_status_name(bare.report.status)),
         std::string(core::run_status_name(guarded.report.status)),
         std::to_string(guarded.report.watchdog.total()),
         guarded.report.safe_mode ? "yes" : "no"});

    for (const auto* arm : {&bare, &guarded}) {
      const bool is_guarded = arm == &guarded;
      csv.write_row(
          {app, std::to_string(rate), is_guarded ? "watchdog" : "bare",
           std::string(core::run_status_name(arm->report.status)),
           std::to_string(arm->report.iterations),
           std::to_string(arm->qem),
           std::to_string(bench::relative_energy(arm->report, truth)),
           std::to_string(arm->injected),
           std::to_string(arm->report.watchdog.total()),
           std::to_string(arm->report.forced_escalations),
           std::to_string(arm->report.checkpoint_restores),
           arm->report.safe_mode ? "1" : "0"});
    }
  }
}

int run() {
  std::printf("=== bench_fault_sweep: quality/energy vs fault rate ===\n\n");

  util::Table table(
      "Transient-fault sweep (level2 static, bare vs watchdog-guarded)");
  table.set_header({"App", "Rate", "QEM bare", "QEM wdog", "E bare",
                    "E wdog", "Status bare", "Status wdog", "Triggers",
                    "Safe mode"});

  util::CsvWriter csv(bench::artifact_path("fault_sweep.csv"));
  csv.write_row({"app", "rate", "arm", "status", "iterations", "qem",
                 "relative_energy", "faults_injected", "watchdog_triggers",
                 "forced_escalations", "checkpoint_restores", "safe_mode"});

  {
    const workloads::GmmDataset ds =
        workloads::make_gmm_dataset(workloads::GmmDatasetId::k3cluster);
    arith::QcsAlu clean;
    apps::GmmEm truth_method(ds);
    const core::ModeCharacterization characterization =
        core::characterize(truth_method, clean);
    (void)bench::run_truth(truth_method, clean, characterization);
    const std::vector<int> truth_assignments = truth_method.assignments();

    sweep(
        "gmm_3cluster",
        [&ds] { return std::make_unique<apps::GmmEm>(ds); },
        [&truth_assignments](const apps::GmmEm& method) {
          return static_cast<double>(apps::hamming_distance(
              truth_assignments, method.assignments()));
        },
        arith::QcsConfig{}, table, csv);
  }

  {
    const auto ds =
        workloads::make_series_dataset(workloads::SeriesId::kHangSeng);
    const arith::QcsConfig qcs = apps::ar_qcs_config();
    arith::QcsAlu clean(qcs);
    apps::AutoRegression truth_method(ds);
    const core::ModeCharacterization characterization =
        core::characterize(truth_method, clean);
    (void)bench::run_truth(truth_method, clean, characterization);
    const std::vector<double> w_truth(truth_method.coefficients().begin(),
                                      truth_method.coefficients().end());

    sweep(
        "ar_hangseng",
        [&ds] { return std::make_unique<apps::AutoRegression>(ds); },
        [&w_truth](const apps::AutoRegression& method) {
          return apps::coefficient_l2_error(method.coefficients(), w_truth);
        },
        qcs, table, csv);
  }

  std::cout << table;
  std::printf(
      "\nQEM: GMM = Hamming distance vs Truth assignments, AR = l2 error "
      "vs Truth coefficients.\nEnergies normalized to the clean Truth run. "
      "Rate 0.0 is the clean pass-through sanity row.\nPer-arm rows "
      "written to bench_artifacts/fault_sweep.csv.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
