// Serving-resilience benchmark: SLO tail latency under overload with and
// without quality-degrading load shedding, plus a seeded chaos smoke run
// exercising the retry/recovery machinery.
//
// Phases:
//   1. BASELINE — one warm job measures the per-job service time L; the
//      SLO for phase 2 is derived from it (6x L, floored at 50 ms) so the
//      pass/fail contrast holds on fast and slow machines alike.
//   2. OVERLOAD — a 60-job burst into 2 workers, twice:
//        shed ON : degrade watermark 4, shed watermark 10 — overflow jobs
//                  run the coarser static level with a capped budget or
//                  are rejected, so the queue (and the tail) stays short.
//        shed OFF: every job is admitted verbatim and waits its turn.
//      The artifact records p50/p99 latency and SLO violations for both;
//      the bench FAILS unless shedding keeps p99 under the SLO while the
//      unprotected run violates it.
//   3. CHAOS — 18 jobs under seeded fault injection (crashes, stalls, ALU
//      faults) with retries enabled, run TWICE: outcome sequences and
//      merged metrics must be byte-identical (determinism smoke).
//
// Emits bench_artifacts/BENCH_resilience.json; exits non-zero when the
// shedding contrast or chaos determinism fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "obs/metrics.h"
#include "svc/runtime.h"
#include "util/table.h"

namespace {

using approxit::bench::artifact_path;
using approxit::obs::MetricsRegistry;
using approxit::svc::JobSnapshot;
using approxit::svc::JobSpec;
using approxit::svc::JobState;
using approxit::svc::ServiceConfig;
using approxit::svc::ServiceRuntime;
using approxit::svc::ServiceStats;
namespace util = approxit::util;

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

JobSpec overload_job(const char* dataset) {
  JobSpec spec;
  spec.app = "gmm";
  spec.dataset = dataset;
  spec.strategy = "incremental";
  spec.max_iterations = 150;
  spec.characterization_iterations = 6;
  return spec;
}

/// One overload arm: submit the burst, wait everything out, aggregate.
struct OverloadResult {
  std::vector<double> latency_ms;  ///< queue + run, completed jobs only.
  std::size_t admitted = 0;
  std::size_t shed = 0;
  std::size_t violations = 0;  ///< Completed jobs over the SLO.
  ServiceStats stats;
};

OverloadResult run_overload(const ServiceConfig& config,
                            const std::vector<JobSpec>& burst,
                            double slo_ms) {
  OverloadResult result;
  ServiceRuntime runtime(config);
  // Warm the runtime's profile cache first: characterization is a one-off
  // offline cost per workload, not part of the steady-state latency the
  // SLO governs.
  const char* warmup_datasets[] = {"3cluster", "3d3cluster", "4cluster"};
  for (const char* dataset : warmup_datasets) {
    const auto id = runtime.submit(overload_job(dataset));
    if (id) (void)runtime.result(*id);
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(burst.size());
  for (const JobSpec& spec : burst) {
    std::string error;
    const auto id = runtime.submit(spec, &error);
    if (!id) {
      ++result.shed;
      continue;
    }
    ++result.admitted;
    ids.push_back(*id);
  }
  for (const std::uint64_t id : ids) {
    const JobSnapshot job = *runtime.result(id);
    if (job.state != JobState::kDone) continue;
    const double latency = job.queue_ms + job.run_ms;
    result.latency_ms.push_back(latency);
    if (latency > slo_ms) ++result.violations;
  }
  result.stats = runtime.stats();
  return result;
}

/// One chaos fleet pass: returns the per-job outcome lines (state, error,
/// attempts, report JSON, in submission order) plus the merged metrics —
/// everything that must be identical between two same-seed passes.
struct ChaosResult {
  std::vector<std::string> outcomes;
  std::string metrics_json;
  ServiceStats stats;
};

ChaosResult run_chaos_fleet() {
  ServiceConfig config;
  config.threads = 4;
  config.cache.directory.clear();  // Memory-only: no cross-run coupling.
  config.chaos.enabled = true;
  config.chaos.seed = 0xfeed;
  config.chaos.crash_probability = 0.25;
  config.chaos.stall_probability = 0.25;
  config.chaos.stall_ms = 0.5;
  config.chaos.alu_fault_probability = 0.3;
  config.chaos.alu_fault_rate = 0.02;
  config.qos.max_retries = 2;
  config.qos.retry_base_ms = 0.1;
  config.qos.retry_max_ms = 0.3;

  std::vector<JobSpec> jobs;
  const char* datasets[] = {"3cluster", "3d3cluster", "4cluster"};
  const char* strategies[] = {"incremental", "adaptive", "level1"};
  for (int repeat = 0; repeat < 2; ++repeat) {
    for (const char* dataset : datasets) {
      for (const char* strategy : strategies) {
        JobSpec spec;
        spec.app = "gmm";
        spec.dataset = dataset;
        spec.strategy = strategy;
        spec.max_iterations = 40;
        spec.characterization_iterations = 4;
        jobs.push_back(spec);
      }
    }
  }

  ChaosResult result;
  ServiceRuntime runtime(config);
  std::vector<std::uint64_t> ids;
  for (const JobSpec& spec : jobs) {
    const auto id = runtime.submit(spec);
    if (id) ids.push_back(*id);
  }
  for (const std::uint64_t id : ids) {
    const JobSnapshot job = *runtime.result(id);
    std::ostringstream line;
    line << job_state_name(job.state) << '|' << job.error << '|'
         << job.attempts << '|' << job.report_json;
    result.outcomes.push_back(line.str());
  }
  result.stats = runtime.stats();
  MetricsRegistry merged;
  runtime.collect_metrics(merged);
  result.metrics_json = merged.to_json();
  return result;
}

}  // namespace

int main() {
  // --- Phase 1: baseline service time -> derived SLO --------------------
  ServiceConfig baseline_config;
  baseline_config.threads = 1;
  baseline_config.cache.directory.clear();
  double baseline_ms = 0.0;
  {
    ServiceRuntime runtime(baseline_config);
    const auto warm = runtime.submit(overload_job("3cluster"));
    (void)runtime.result(*warm);  // Characterization paid here.
    const auto id = runtime.submit(overload_job("3cluster"));
    const JobSnapshot job = *runtime.result(*id);
    baseline_ms = job.queue_ms + job.run_ms;
  }
  const double slo_ms = std::max(50.0, 8.0 * baseline_ms);
  std::printf("baseline job %.2f ms -> SLO %.2f ms\n\n", baseline_ms, slo_ms);

  // --- Phase 2: overload burst, shedding on vs off -----------------------
  std::vector<JobSpec> burst;
  const char* datasets[] = {"3cluster", "3d3cluster", "4cluster"};
  for (std::size_t i = 0; i < 60; ++i) {
    burst.push_back(overload_job(datasets[i % 3]));
  }

  ServiceConfig shed_on;
  shed_on.threads = 2;
  shed_on.cache.directory.clear();
  shed_on.queue_capacity = burst.size();
  shed_on.qos.degrade_watermark = 3;
  shed_on.qos.shed_watermark = 6;
  shed_on.qos.degraded_strategy = "level2";
  shed_on.qos.degraded_max_iterations = 20;

  ServiceConfig shed_off = shed_on;
  shed_off.qos.degrade_watermark = 0;
  shed_off.qos.shed_watermark = 0;

  const OverloadResult with_shed = run_overload(shed_on, burst, slo_ms);
  const OverloadResult without_shed = run_overload(shed_off, burst, slo_ms);

  const double on_p50 = percentile(with_shed.latency_ms, 0.50);
  const double on_p99 = percentile(with_shed.latency_ms, 0.99);
  const double off_p50 = percentile(without_shed.latency_ms, 0.50);
  const double off_p99 = percentile(without_shed.latency_ms, 0.99);
  const bool shed_meets_slo = on_p99 <= slo_ms;
  const bool unprotected_violates = off_p99 > slo_ms;

  util::Table overload_table("Overload burst (60 jobs, 2 workers)");
  overload_table.set_header({"Shedding", "Done", "Shed", "Degraded",
                             "p50 ms", "p99 ms", "SLO violations"});
  overload_table.add_row(
      {"on", std::to_string(with_shed.latency_ms.size()),
       std::to_string(with_shed.stats.shed),
       std::to_string(with_shed.stats.degraded), util::format_sig(on_p50, 4),
       util::format_sig(on_p99, 4), std::to_string(with_shed.violations)});
  overload_table.add_row(
      {"off", std::to_string(without_shed.latency_ms.size()),
       std::to_string(without_shed.stats.shed),
       std::to_string(without_shed.stats.degraded),
       util::format_sig(off_p50, 4), util::format_sig(off_p99, 4),
       std::to_string(without_shed.violations)});
  std::cout << overload_table << "\n";
  std::printf("shed-on p99 %s SLO, shed-off p99 %s SLO\n\n",
              shed_meets_slo ? "meets" : "VIOLATES",
              unprotected_violates ? "violates (expected)" : "MEETS");

  // --- Phase 3: seeded chaos, twice ---------------------------------------
  const ChaosResult chaos_a = run_chaos_fleet();
  const ChaosResult chaos_b = run_chaos_fleet();
  const bool chaos_deterministic =
      chaos_a.outcomes == chaos_b.outcomes &&
      chaos_a.metrics_json == chaos_b.metrics_json;
  std::size_t chaos_failed = chaos_a.stats.failed;

  util::Table chaos_table("Seeded chaos fleet (18 jobs, 4 workers, 2 runs)");
  chaos_table.set_header(
      {"Jobs", "Retries", "Failed", "Completed", "Deterministic"});
  chaos_table.add_row({std::to_string(chaos_a.outcomes.size()),
                       std::to_string(chaos_a.stats.retries),
                       std::to_string(chaos_failed),
                       std::to_string(chaos_a.stats.completed),
                       chaos_deterministic ? "yes" : "NO"});
  std::cout << chaos_table << "\n";

  // --- Artifact -----------------------------------------------------------
  std::ostringstream json;
  json << "{\n  \"bench\": \"resilience\",\n"
       << "  \"slo_ms\": " << slo_ms << ",\n"
       << "  \"baseline_job_ms\": " << baseline_ms << ",\n"
       << "  \"overload\": {\n"
       << "    \"jobs\": " << burst.size() << ", \"threads\": 2,\n"
       << "    \"shed_on\": {\"done\": " << with_shed.latency_ms.size()
       << ", \"shed\": " << with_shed.stats.shed
       << ", \"degraded\": " << with_shed.stats.degraded
       << ", \"latency_ms_p50\": " << on_p50
       << ", \"latency_ms_p99\": " << on_p99
       << ", \"slo_violations\": " << with_shed.violations
       << ", \"p99_meets_slo\": " << (shed_meets_slo ? "true" : "false")
       << "},\n"
       << "    \"shed_off\": {\"done\": " << without_shed.latency_ms.size()
       << ", \"shed\": " << without_shed.stats.shed
       << ", \"degraded\": " << without_shed.stats.degraded
       << ", \"latency_ms_p50\": " << off_p50
       << ", \"latency_ms_p99\": " << off_p99
       << ", \"slo_violations\": " << without_shed.violations
       << ", \"p99_meets_slo\": "
       << (unprotected_violates ? "false" : "true") << "}\n  },\n"
       << "  \"chaos\": {\"jobs\": " << chaos_a.outcomes.size()
       << ", \"retries\": " << chaos_a.stats.retries
       << ", \"failed\": " << chaos_failed
       << ", \"completed\": " << chaos_a.stats.completed
       << ", \"deterministic\": "
       << (chaos_deterministic ? "true" : "false") << "}\n}\n";

  const std::string path = artifact_path("BENCH_resilience.json");
  std::ofstream out(path);
  out << json.str();
  std::printf("Wrote %s\n", path.c_str());

  if (!shed_meets_slo || !unprotected_violates || !chaos_deterministic) {
    std::printf(
        "FAIL: shed_meets_slo=%d unprotected_violates=%d "
        "chaos_deterministic=%d\n",
        shed_meets_slo ? 1 : 0, unprotected_violates ? 1 : 0,
        chaos_deterministic ? 1 : 0);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
