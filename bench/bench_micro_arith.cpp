// Microbenchmarks (google-benchmark): throughput of the bit-accurate adder
// models, the fixed-point layer and the QCS ALU — the simulation substrate
// everything else pays for.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "arith/alu.h"
#include "arith/approx_adders.h"
#include "arith/exact_adders.h"
#include "arith/fixed_point.h"
#include "arith/multipliers.h"
#include "util/rng.h"

namespace {

using namespace approxit;
using arith::Word;

std::vector<std::pair<Word, Word>> operand_pairs(unsigned width,
                                                 std::size_t n) {
  util::Rng rng(0xBE7C4);
  std::vector<std::pair<Word, Word>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(rng.next_u64() & arith::word_mask(width),
                     rng.next_u64() & arith::word_mask(width));
  }
  return out;
}

template <typename AdderT, typename... Args>
void bench_adder(benchmark::State& state, Args... args) {
  const AdderT adder(args...);
  const auto pairs = operand_pairs(adder.width(), 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(adder.add(a, b, false));
  }
}

void BM_RippleCarry32(benchmark::State& state) {
  bench_adder<arith::RippleCarryAdder>(state, 32u);
}
void BM_KoggeStone32(benchmark::State& state) {
  bench_adder<arith::KoggeStoneAdder>(state, 32u);
}
void BM_Gda32(benchmark::State& state) {
  bench_adder<arith::GdaAdder>(state, 32u, 13u);
}
void BM_EtaII32(benchmark::State& state) {
  bench_adder<arith::EtaIIAdder>(state, 32u, 8u);
}
void BM_Aca32(benchmark::State& state) {
  bench_adder<arith::AcaAdder>(state, 32u, 12u);
}
void BM_Gda48(benchmark::State& state) {
  bench_adder<arith::GdaAdder>(state, 48u, 22u);
}

void BM_Quantize(benchmark::State& state) {
  const arith::QFormat format{32, 16};
  util::Rng rng(5);
  std::vector<double> values(1024);
  for (double& v : values) v = rng.uniform(-30000.0, 30000.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arith::quantize(values[i++ & 1023], format));
  }
}

void BM_AluAdd(benchmark::State& state) {
  arith::QcsAlu alu;
  alu.set_mode(arith::mode_from_index(static_cast<std::size_t>(state.range(0))));
  util::Rng rng(6);
  std::vector<double> values(1024);
  for (double& v : values) v = rng.uniform(-10000.0, 10000.0);
  std::size_t i = 0;
  double acc = 0.0;
  for (auto _ : state) {
    acc = alu.add(acc, values[i++ & 1023]);
    if (acc > 20000.0 || acc < -20000.0) acc = 0.0;  // avoid saturation
  }
  benchmark::DoNotOptimize(acc);
}

void BM_ArrayMultiplier16(benchmark::State& state) {
  const arith::ArrayMultiplier mul(
      16, std::make_shared<arith::RippleCarryAdder>(32));
  const auto pairs = operand_pairs(16, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(mul.multiply(a, b));
  }
}

BENCHMARK(BM_RippleCarry32);
BENCHMARK(BM_KoggeStone32);
BENCHMARK(BM_Gda32);
BENCHMARK(BM_EtaII32);
BENCHMARK(BM_Aca32);
BENCHMARK(BM_Gda48);
BENCHMARK(BM_Quantize);
BENCHMARK(BM_AluAdd)->DenseRange(0, 4)->ArgName("mode");
BENCHMARK(BM_ArrayMultiplier16);

}  // namespace

BENCHMARK_MAIN();
