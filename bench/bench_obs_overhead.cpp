// Observability overhead bench: proves the tracing/metrics layer is cheap
// enough to leave on and free when off.
//
// Runs the GMM incremental-reconfiguration session (the ISSUE's reference
// workload) under four observability configurations:
//   baseline  instrumentation compiled in, no registry, no sink (the
//             "disabled" path every production run takes),
//   metrics   a MetricsRegistry attached through SessionOptions,
//   ring      an in-memory RingSink receiving every event,
//   jsonl     a JsonlSink writing the full trace to bench_artifacts/.
// Samples are interleaved across configurations (so drift hits all of them
// equally) and the median sample is reported. Every configuration must
// leave the method in the BIT-IDENTICAL final state with the identical
// energy total — observation must never perturb the computation.
//
// Emits bench_artifacts/BENCH_obs_overhead.json. Exit is non-zero only on
// a correctness violation (non-identical results) or a gross slowdown;
// the <2% attached-overhead target is reported against the median.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/gmm.h"
#include "bench/common.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kSamples = 9;      ///< Median over this many samples.
constexpr std::size_t kRunsPerSample = 3;  ///< Sessions per timed sample.

enum class Config { kBaseline = 0, kMetrics, kRing, kJsonl };
constexpr std::array<const char*, 4> kConfigNames = {"baseline", "metrics",
                                                     "ring", "jsonl"};

struct ConfigResult {
  std::vector<double> samples_ms;
  std::vector<double> final_state;
  double total_energy = 0.0;
  std::size_t iterations = 0;
  std::size_t events_written = 0;

  double median_ms() const {
    std::vector<double> sorted = samples_ms;
    std::sort(sorted.begin(), sorted.end());
    return sorted[sorted.size() / 2];
  }
};

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int run() {
  std::printf("=== bench_obs_overhead: tracing/metrics cost ===\n\n");

  const workloads::GmmDataset ds =
      workloads::make_gmm_dataset(workloads::GmmDatasetId::k3cluster);
  arith::QcsAlu alu;
  apps::GmmEm char_method(ds);
  const core::ModeCharacterization characterization =
      core::characterize(char_method, alu);

  const std::string trace_path =
      bench::artifact_path("obs_overhead_trace.jsonl");

  std::array<ConfigResult, 4> results;
  obs::MetricsRegistry registry;

  // Interleaved sampling: one sample of every configuration per round, so
  // thermal/scheduler drift is spread evenly instead of biasing whichever
  // configuration happens to run last.
  for (std::size_t sample = 0; sample < kSamples; ++sample) {
    for (std::size_t c = 0; c < results.size(); ++c) {
      const Config config = static_cast<Config>(c);

      std::unique_ptr<obs::TraceSink> sink;
      if (config == Config::kRing) {
        sink = std::make_unique<obs::RingSink>(1 << 16);
      } else if (config == Config::kJsonl) {
        sink = std::make_unique<obs::JsonlSink>(trace_path);
      }
      if (sink) obs::set_trace_sink(sink.get());
      if (config == Config::kMetrics) registry.reset();

      core::SessionOptions options;
      if (config == Config::kMetrics) options.hooks.metrics = &registry;

      core::RunReport last_report;
      const auto start = Clock::now();
      for (std::size_t r = 0; r < kRunsPerSample; ++r) {
        apps::GmmEm method(ds);
        core::IncrementalStrategy strategy;
        core::ApproxItSession session(method, strategy, alu);
        session.set_characterization(characterization);
        last_report = session.run(options);
        if (sample == 0 && r == 0) {
          results[c].final_state = method.state();
        }
      }
      results[c].samples_ms.push_back(elapsed_ms(start));

      if (sink) obs::set_trace_sink(nullptr);
      if (config == Config::kJsonl && sample == 0) {
        results[c].events_written =
            static_cast<obs::JsonlSink*>(sink.get())->events_written();
      }
      if (sample == 0) {
        results[c].total_energy = last_report.total_energy;
        results[c].iterations = last_report.iterations;
      }
    }
  }

  // Correctness before speed: every configuration must be bit-identical to
  // the baseline run.
  const ConfigResult& baseline = results[0];
  bool identical = true;
  for (std::size_t c = 1; c < results.size(); ++c) {
    identical = identical &&
                results[c].final_state == baseline.final_state &&
                results[c].total_energy == baseline.total_energy &&
                results[c].iterations == baseline.iterations;
  }

  util::Table table("GMM incremental session: observability overhead");
  table.set_header({"Config", "Median ms", "Overhead", "Identical"});
  table.set_align(0, util::Align::kLeft);
  const double base_ms = baseline.median_ms();
  std::array<double, 4> overhead{};
  for (std::size_t c = 0; c < results.size(); ++c) {
    const double ms = results[c].median_ms();
    overhead[c] = base_ms > 0.0 ? (ms - base_ms) / base_ms : 0.0;
    table.add_row({kConfigNames[c], util::format_sig(ms, 4),
                   c == 0 ? "-" : util::format_percent(overhead[c]),
                   c == 0 ? "-"
                          : (results[c].final_state == baseline.final_state
                                 ? "yes"
                                 : "NO")});
  }
  std::cout << table << "\n";
  std::printf("baseline = instrumentation compiled in, observability off\n");
  std::printf("jsonl trace: %zu events for %zu iterations -> %s\n",
              results[3].events_written, results[3].iterations,
              trace_path.c_str());

  const double worst_overhead =
      *std::max_element(overhead.begin(), overhead.end());
  const bool meets_target = worst_overhead < 0.02;
  std::printf("worst attached overhead: %s (<2%% target %s)\n",
              util::format_percent(worst_overhead).c_str(),
              meets_target ? "met" : "MISSED");

  std::ostringstream json;
  json << "{\n  \"bench\": \"obs_overhead\",\n"
       << "  \"workload\": \"gmm_3cluster/incremental\",\n"
       << "  \"samples\": " << kSamples << ",\n"
       << "  \"runs_per_sample\": " << kRunsPerSample << ",\n"
       << "  \"configs\": [\n";
  for (std::size_t c = 0; c < results.size(); ++c) {
    json << "    {\"config\": \"" << kConfigNames[c]
         << "\", \"median_ms\": " << results[c].median_ms()
         << ", \"overhead\": " << overhead[c] << "}"
         << (c + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"iterations\": " << baseline.iterations
       << ",\n  \"trace_events\": " << results[3].events_written
       << ",\n  \"identical\": " << (identical ? "true" : "false")
       << ",\n  \"meets_2pct_target\": " << (meets_target ? "true" : "false")
       << "\n}\n";

  const std::string path = bench::artifact_path("BENCH_obs_overhead.json");
  std::ofstream out(path);
  out << json.str();
  std::printf("Wrote %s\n", path.c_str());

  if (!identical) {
    std::printf("FAIL: observability perturbed the computation\n");
    return 1;
  }
  // Gross-regression gate only: the 2% target is reported above, but on a
  // loaded single-core CI box the median still jitters, so the hard gate
  // sits far from the target.
  if (worst_overhead > 0.25) {
    std::printf("FAIL: attached overhead above 25%%\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return run(); }
