// Observability overhead bench: proves the tracing/metrics layer is cheap
// enough to leave on and free when off.
//
// Runs the GMM incremental-reconfiguration session (the ISSUE's reference
// workload) under five observability configurations:
//   baseline   instrumentation compiled in, no registry, no sink (the
//              "disabled" path every production run takes),
//   metrics    a MetricsRegistry attached through SessionOptions,
//   telemetry  the full service telemetry plane: metrics registry plus a
//              per-run JobScope (causal job context on every event) plus a
//              MetricsExporter delta scrape after every run — the exact
//              per-job cost approxit_serve pays with stats_export polling,
//   ring       an in-memory RingSink receiving every event,
//   jsonl      a JsonlSink writing the full trace to bench_artifacts/.
// Samples are interleaved across configurations (so drift hits all of them
// equally) and the median sample is reported. Every configuration must
// leave the method in the BIT-IDENTICAL final state with the identical
// energy total — observation must never perturb the computation.
//
// Emits bench_artifacts/BENCH_obs_overhead.json. Exit is non-zero on a
// correctness violation (non-identical results), a gross slowdown, or a
// telemetry-plane overhead above the 2% budget. The telemetry gate is
// jitter-robust: it fails only when BOTH the min-vs-min and the
// median-vs-median overhead exceed 2% — a loaded CI box inflates the
// median, but the minimum sample approximates the true cost.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/gmm.h"
#include "bench/common.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kSamples = 9;      ///< Median over this many samples.
constexpr std::size_t kRunsPerSample = 3;  ///< Sessions per timed sample.

enum class Config { kBaseline = 0, kMetrics, kTelemetry, kRing, kJsonl };
constexpr std::array<const char*, 5> kConfigNames = {
    "baseline", "metrics", "telemetry", "ring", "jsonl"};
constexpr std::size_t kJsonlIndex = static_cast<std::size_t>(Config::kJsonl);

struct ConfigResult {
  std::vector<double> samples_ms;
  std::vector<double> final_state;
  double total_energy = 0.0;
  std::size_t iterations = 0;
  std::size_t events_written = 0;

  double median_ms() const {
    std::vector<double> sorted = samples_ms;
    std::sort(sorted.begin(), sorted.end());
    return sorted[sorted.size() / 2];
  }

  double min_ms() const {
    return *std::min_element(samples_ms.begin(), samples_ms.end());
  }
};

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int run() {
  std::printf("=== bench_obs_overhead: tracing/metrics cost ===\n\n");

  const workloads::GmmDataset ds =
      workloads::make_gmm_dataset(workloads::GmmDatasetId::k3cluster);
  arith::QcsAlu alu;
  apps::GmmEm char_method(ds);
  const core::ModeCharacterization characterization =
      core::characterize(char_method, alu);

  const std::string trace_path =
      bench::artifact_path("obs_overhead_trace.jsonl");

  std::array<ConfigResult, 5> results;
  obs::MetricsRegistry registry;
  obs::MetricsExporter exporter;
  std::size_t exporter_bytes = 0;

  // Interleaved sampling: one sample of every configuration per round, so
  // thermal/scheduler drift is spread evenly instead of biasing whichever
  // configuration happens to run last.
  for (std::size_t sample = 0; sample < kSamples; ++sample) {
    for (std::size_t c = 0; c < results.size(); ++c) {
      const Config config = static_cast<Config>(c);

      std::unique_ptr<obs::TraceSink> sink;
      if (config == Config::kRing) {
        sink = std::make_unique<obs::RingSink>(1 << 16);
      } else if (config == Config::kJsonl) {
        sink = std::make_unique<obs::JsonlSink>(trace_path);
      }
      if (sink) obs::set_trace_sink(sink.get());
      const bool wants_metrics =
          config == Config::kMetrics || config == Config::kTelemetry;
      if (wants_metrics) registry.reset();
      if (config == Config::kTelemetry) exporter.reset_baseline();

      core::SessionOptions options;
      if (wants_metrics) options.hooks.metrics = &registry;

      core::RunReport last_report;
      const auto start = Clock::now();
      for (std::size_t r = 0; r < kRunsPerSample; ++r) {
        apps::GmmEm method(ds);
        core::IncrementalStrategy strategy;
        core::ApproxItSession session(method, strategy, alu);
        session.set_characterization(characterization);
        if (config == Config::kTelemetry) {
          // What approxit_serve pays per job: a causal job context (every
          // event tags job/tenant/attempt) and a delta scrape after the
          // run, as approxit_top's stats_export polling would trigger.
          obs::JobContext context;
          context.job_id = sample * kRunsPerSample + r + 1;
          context.tenant = "bench";
          context.attempt = 1;
          obs::JobScope job_scope(context, 1000, "bench-job");
          last_report = session.run(options);
        } else {
          last_report = session.run(options);
        }
        if (config == Config::kTelemetry) {
          exporter_bytes +=
              exporter
                  .export_delta(registry,
                                obs::MetricsExporter::Format::kJsonLines)
                  .size();
        }
        if (sample == 0 && r == 0) {
          results[c].final_state = method.state();
        }
      }
      results[c].samples_ms.push_back(elapsed_ms(start));

      if (sink) obs::set_trace_sink(nullptr);
      if (config == Config::kJsonl && sample == 0) {
        results[kJsonlIndex].events_written =
            static_cast<obs::JsonlSink*>(sink.get())->events_written();
      }
      if (sample == 0) {
        results[c].total_energy = last_report.total_energy;
        results[c].iterations = last_report.iterations;
      }
    }
  }

  // Correctness before speed: every configuration must be bit-identical to
  // the baseline run.
  const ConfigResult& baseline = results[0];
  bool identical = true;
  for (std::size_t c = 1; c < results.size(); ++c) {
    identical = identical &&
                results[c].final_state == baseline.final_state &&
                results[c].total_energy == baseline.total_energy &&
                results[c].iterations == baseline.iterations;
  }

  util::Table table("GMM incremental session: observability overhead");
  table.set_header({"Config", "Median ms", "Overhead", "Identical"});
  table.set_align(0, util::Align::kLeft);
  const double base_ms = baseline.median_ms();
  std::array<double, 5> overhead{};
  for (std::size_t c = 0; c < results.size(); ++c) {
    const double ms = results[c].median_ms();
    overhead[c] = base_ms > 0.0 ? (ms - base_ms) / base_ms : 0.0;
    table.add_row({kConfigNames[c], util::format_sig(ms, 4),
                   c == 0 ? "-" : util::format_percent(overhead[c]),
                   c == 0 ? "-"
                          : (results[c].final_state == baseline.final_state
                                 ? "yes"
                                 : "NO")});
  }
  std::cout << table << "\n";
  std::printf("baseline = instrumentation compiled in, observability off\n");
  std::printf("jsonl trace: %zu events for %zu iterations -> %s\n",
              results[kJsonlIndex].events_written,
              results[kJsonlIndex].iterations, trace_path.c_str());

  const double worst_overhead =
      *std::max_element(overhead.begin(), overhead.end());
  const bool meets_target = worst_overhead < 0.02;
  std::printf("worst attached overhead: %s (<2%% target %s)\n",
              util::format_percent(worst_overhead).c_str(),
              meets_target ? "met" : "MISSED");

  // Telemetry-plane budget: compare both median-vs-median and min-vs-min
  // against the baseline. The min pair is the jitter-robust estimate (the
  // quietest round of each interleaved schedule); the gate below requires
  // BOTH to blow the 2% budget before failing.
  const ConfigResult& telemetry =
      results[static_cast<std::size_t>(Config::kTelemetry)];
  const double telemetry_median_overhead =
      overhead[static_cast<std::size_t>(Config::kTelemetry)];
  const double base_min = baseline.min_ms();
  const double telemetry_min_overhead =
      base_min > 0.0 ? (telemetry.min_ms() - base_min) / base_min : 0.0;
  const bool telemetry_within_budget =
      telemetry_median_overhead < 0.02 || telemetry_min_overhead < 0.02;
  std::printf(
      "telemetry plane: median overhead %s, min overhead %s, scrape bytes "
      "%zu (<2%% budget %s)\n",
      util::format_percent(telemetry_median_overhead).c_str(),
      util::format_percent(telemetry_min_overhead).c_str(), exporter_bytes,
      telemetry_within_budget ? "met" : "MISSED");

  std::ostringstream json;
  json << "{\n  \"bench\": \"obs_overhead\",\n"
       << "  \"workload\": \"gmm_3cluster/incremental\",\n"
       << "  \"samples\": " << kSamples << ",\n"
       << "  \"runs_per_sample\": " << kRunsPerSample << ",\n"
       << "  \"configs\": [\n";
  for (std::size_t c = 0; c < results.size(); ++c) {
    json << "    {\"config\": \"" << kConfigNames[c]
         << "\", \"median_ms\": " << results[c].median_ms()
         << ", \"overhead\": " << overhead[c] << "}"
         << (c + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"iterations\": " << baseline.iterations
       << ",\n  \"trace_events\": " << results[kJsonlIndex].events_written
       << ",\n  \"telemetry_overhead_median\": " << telemetry_median_overhead
       << ",\n  \"telemetry_overhead_min\": " << telemetry_min_overhead
       << ",\n  \"telemetry_scrape_bytes\": " << exporter_bytes
       << ",\n  \"identical\": " << (identical ? "true" : "false")
       << ",\n  \"meets_2pct_target\": " << (meets_target ? "true" : "false")
       << ",\n  \"telemetry_within_budget\": "
       << (telemetry_within_budget ? "true" : "false") << "\n}\n";

  const std::string path = bench::artifact_path("BENCH_obs_overhead.json");
  std::ofstream out(path);
  out << json.str();
  std::printf("Wrote %s\n", path.c_str());

  if (!identical) {
    std::printf("FAIL: observability perturbed the computation\n");
    return 1;
  }
  // Gross-regression gate only: the 2% target is reported above, but on a
  // loaded single-core CI box the median still jitters, so the hard gate
  // sits far from the target.
  if (worst_overhead > 0.25) {
    std::printf("FAIL: attached overhead above 25%%\n");
    return 1;
  }
  // The telemetry plane has a hard 2% budget (ISSUE invariant). Both the
  // median and the min estimate must exceed it before the gate trips, so a
  // single noisy round on a loaded CI box cannot fail the build.
  if (!telemetry_within_budget) {
    std::printf("FAIL: telemetry-plane overhead above the 2%% budget\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main() { return run(); }
