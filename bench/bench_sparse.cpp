// Sparse datapath bench: scales PageRank and CG to millions of nodes on
// the CSR SpMV kernel and proves the fast paths honest. Measures
//   (1) routed SpMV throughput (nnz/sec) per datapath tier — scalar fold,
//       portable word kernels, dispatched SIMD — per approximation mode,
//       gating each row on bit-identity with the scalar fold;
//   (2) shard-count determinism: the sharded SpMV output is byte-identical
//       for 1/4/8 shards;
//   (3) the shard scaling curve: fixed shard plan, worker threads 1/2/4/8,
//       byte-identical output at every point;
//   (4) PageRank quality-vs-energy per QCS level at --nodes scale (L1
//       distance and top-100 overlap against the accurate-mode run);
//   (5) CG on the 5-point stencil Laplacian at --grid^2 unknowns,
//       residual-vs-energy per QCS level;
//   (6) a small traced PageRank session (session/iteration events for the
//       trace_summary reconciliation check when APPROXIT_TRACE is set).
// Emits bench_artifacts/BENCH_sparse.json; exits non-zero when any fast
// path diverges from its reference — a perf number from a wrong answer is
// worthless.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/pagerank.h"
#include "arith/simd_kernels.h"
#include "bench/common.h"
#include "la/sparse.h"
#include "opt/conjugate_gradient.h"
#include "util/cli.h"
#include "util/table.h"
#include "workloads/graphs.h"

namespace {

using namespace approxit;
using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

bool same_bytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Times `reps` routed SpMVs and returns nnz/sec.
double spmv_nnz_per_sec(const la::CsrMatrix& m, arith::ArithContext& ctx,
                        la::SpmvWorkspace& ws, const std::vector<double>& x,
                        std::vector<double>& y, std::size_t reps) {
  const auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) m.spmv_into(ctx, ws, x, y);
  const double ms = elapsed_ms(start);
  const double nnz = static_cast<double>(reps * m.nnz());
  return ms > 0.0 ? nnz / (ms / 1e3) : 0.0;
}

struct TierRow {
  std::string mode;
  double scalar_nnz_per_sec = 0.0;
  double portable_nnz_per_sec = 0.0;
  double simd_nnz_per_sec = 0.0;
  bool bit_identical = false;
};

/// Scalar fold vs portable word kernels vs dispatched SIMD, one mode.
TierRow measure_tiers(const la::CsrMatrix& m, const arith::QcsConfig& qcs,
                      arith::ApproxMode mode, const std::vector<double>& x) {
  arith::QcsAlu alu(qcs);
  alu.set_mode(mode);
  la::SpmvWorkspace ws;
  std::vector<double> y_scalar(m.rows()), y_portable(m.rows()),
      y_simd(m.rows());

  TierRow row;
  row.mode = std::string(arith::mode_name(mode));

  alu.set_batching(false);
  m.spmv_into(alu, ws, x, y_scalar);
  const std::size_t scalar_ops = alu.ledger().total_ops();
  alu.reset_ledger();
  alu.set_batching(true);
  arith::simd::set_tier_override(arith::simd::Tier::kPortable);
  m.spmv_into(alu, ws, x, y_portable);
  const std::size_t portable_ops = alu.ledger().total_ops();
  alu.reset_ledger();
  arith::simd::set_tier_override(std::nullopt);
  m.spmv_into(alu, ws, x, y_simd);
  row.bit_identical = same_bytes(y_scalar, y_portable) &&
                      same_bytes(y_scalar, y_simd) &&
                      scalar_ops == portable_ops &&
                      alu.ledger().total_ops() == scalar_ops;
  alu.reset_ledger();

  // The scalar fold is ~an order of magnitude slower; fewer reps suffice.
  const std::size_t reps =
      std::max<std::size_t>(1, (std::size_t{1} << 24) / std::max<std::size_t>(
                                                            m.nnz(), 1));
  alu.set_batching(false);
  row.scalar_nnz_per_sec =
      spmv_nnz_per_sec(m, alu, ws, x, y_scalar, std::max<std::size_t>(1, reps / 8));
  alu.set_batching(true);
  arith::simd::set_tier_override(arith::simd::Tier::kPortable);
  row.portable_nnz_per_sec = spmv_nnz_per_sec(m, alu, ws, x, y_portable, reps);
  arith::simd::set_tier_override(std::nullopt);
  row.simd_nnz_per_sec = spmv_nnz_per_sec(m, alu, ws, x, y_simd, reps);
  return row;
}

struct ShardIdentityRow {
  std::size_t shards = 1;
  bool bit_identical = false;
};

struct ScalingRow {
  std::size_t threads = 1;
  double nnz_per_sec = 0.0;
  double speedup = 1.0;
  bool bit_identical = false;
};

struct QualityRow {
  std::string mode;
  std::size_t iterations = 0;
  double energy = 0.0;
  double quality = 0.0;  ///< L1 distance (PageRank) / residual norm (CG).
  double aux = 0.0;      ///< top-100 overlap (PageRank) / rel. residual (CG).
};

/// QCS format sized to the CG reductions on an O(1)-solution stencil
/// system: r.r and p.Ap reach ~64 n, so the integer part needs
/// log2(n) + ~7 bits or the accurate mode itself saturates; the rest of
/// the 52-bit budget (the fused-path ceiling) buys fractional resolution.
arith::QcsConfig cg_qcs_config(std::size_t unknowns) {
  unsigned log2n = 0;
  while ((std::size_t{1} << log2n) < unknowns && log2n < 34) ++log2n;
  const unsigned int_bits = log2n + 8;
  const unsigned frac = 52 - int_bits;
  arith::QcsConfig config;
  config.format = arith::QFormat{52, frac};
  // Per-add error 2^(bits - frac - 1): level1 perturbs the recurrences
  // visibly, level4 is near-exact.
  config.level_approx_bits = {frac - 3, frac - 5, frac - 7, frac - 9};
  return config;
}

int run(int argc, char** argv) {
  util::CliParser cli(
      "Sparse CSR datapath benchmark: SpMV tiers, shard determinism and "
      "scaling, PageRank and CG quality-vs-energy at scale.");
  cli.add_flag("nodes", "1000000", "web-graph node count for PageRank");
  cli.add_flag("links", "8", "out-links per node");
  cli.add_flag("grid", "1024", "stencil grid side (unknowns = grid^2)");
  cli.add_flag("shards", "8", "shard count for the scaling curve");
  cli.add_flag("pr-iters", "10", "PageRank iterations per mode");
  cli.add_flag("cg-iters", "25", "CG iterations per mode");
  cli.add_flag("seed", "42", "graph generator seed");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t nodes = static_cast<std::size_t>(cli.get_int("nodes"));
  const std::size_t links = static_cast<std::size_t>(cli.get_int("links"));
  const std::size_t grid = static_cast<std::size_t>(cli.get_int("grid"));
  const std::size_t shards = static_cast<std::size_t>(cli.get_int("shards"));
  const std::size_t pr_iters =
      static_cast<std::size_t>(cli.get_int("pr-iters"));
  const std::size_t cg_iters =
      static_cast<std::size_t>(cli.get_int("cg-iters"));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("=== bench_sparse: CSR SpMV datapath at scale ===\n\n");
  std::printf("building web graph: %zu nodes, %zu links/node, seed %llu\n",
              nodes, links, static_cast<unsigned long long>(seed));
  const workloads::WebGraph graph = workloads::make_web_graph(nodes, links,
                                                              seed);
  const la::CsrMatrix transition = workloads::pagerank_transition(graph);
  std::printf("transition matrix: %zu x %zu, %zu nnz\n\n", transition.rows(),
              transition.cols(), transition.nnz());

  const arith::QcsConfig qcs = apps::pagerank_qcs_config(nodes);
  std::vector<double> x(nodes, 1.0 / static_cast<double>(nodes));

  const char* detected = arith::simd::tier_name(arith::simd::detected_tier());
  std::printf("SIMD dispatch: detected=%s\n\n", detected);

  // (1) nnz/sec per tier, per mode.
  util::Table tier_table("routed SpMV throughput (nnz/sec) by tier");
  tier_table.set_header(
      {"Mode", "Scalar", "Word", "SIMD", "Speedup", "Bit-identical"});
  tier_table.set_align(0, util::Align::kLeft);
  std::vector<TierRow> tiers;
  for (arith::ApproxMode mode : arith::kAllModes) {
    tiers.push_back(measure_tiers(transition, qcs, mode, x));
    const TierRow& t = tiers.back();
    tier_table.add_row(
        {t.mode, util::format_sig(t.scalar_nnz_per_sec, 3),
         util::format_sig(t.portable_nnz_per_sec, 3),
         util::format_sig(t.simd_nnz_per_sec, 3),
         util::format_sig(t.simd_nnz_per_sec / t.scalar_nnz_per_sec, 3),
         t.bit_identical ? "yes" : "NO"});
  }
  std::cout << tier_table << "\n";

  // (2) shard-count determinism (threads fixed at 1: plan changes only).
  std::vector<ShardIdentityRow> identity;
  std::vector<double> y_one_shard(nodes);
  {
    arith::QcsAlu alu(qcs);
    alu.set_mode(arith::ApproxMode::kLevel2);
    la::SpmvWorkspace ws;
    transition.spmv_into(alu, ws, x, y_one_shard);
  }
  for (const std::size_t s : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    arith::QcsAlu alu(qcs);
    alu.set_mode(arith::ApproxMode::kLevel2);
    la::SpmvWorkspace ws(la::SpmvOptions{.shards = s, .threads = 1});
    std::vector<double> y(nodes);
    transition.spmv_into(alu, ws, x, y);
    identity.push_back({s, same_bytes(y, y_one_shard)});
    std::printf("shard identity: %zu shard(s) -> %s\n", s,
                identity.back().bit_identical ? "byte-identical" : "DIVERGED");
  }
  std::printf("\n");

  // (3) shard scaling curve: fixed plan, growing worker pool.
  util::Table scale_table("shard scaling (level2, fixed shard plan)");
  scale_table.set_header({"Threads", "nnz/sec", "Speedup", "Bit-identical"});
  std::vector<ScalingRow> scaling;
  std::vector<double> y_serial;
  const std::size_t scale_reps = std::max<std::size_t>(
      2, (std::size_t{1} << 25) / std::max<std::size_t>(transition.nnz(), 1));
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    arith::QcsAlu alu(qcs);
    alu.set_mode(arith::ApproxMode::kLevel2);
    la::SpmvWorkspace ws(la::SpmvOptions{.shards = shards,
                                         .threads = threads});
    std::vector<double> y(nodes);
    transition.spmv_into(alu, ws, x, y);  // warm-up: plan + clone prepare
    ScalingRow row;
    row.threads = threads;
    row.nnz_per_sec = spmv_nnz_per_sec(transition, alu, ws, x, y, scale_reps);
    if (threads == 1) y_serial = y;
    row.bit_identical = same_bytes(y, y_serial);
    row.speedup = scaling.empty() ? 1.0
                                  : row.nnz_per_sec / scaling[0].nnz_per_sec;
    scaling.push_back(row);
    scale_table.add_row({std::to_string(threads),
                         util::format_sig(row.nnz_per_sec, 3),
                         util::format_sig(row.speedup, 3),
                         row.bit_identical ? "yes" : "NO"});
  }
  std::cout << scale_table << "\n";

  // (4) PageRank quality-vs-energy per mode at --nodes scale.
  apps::PageRankOptions pr_options;
  pr_options.spmv = {.shards = shards, .threads = 4};
  apps::PageRank pagerank(graph, pr_options);
  arith::QcsAlu pr_alu(qcs);

  pr_alu.set_mode(arith::ApproxMode::kAccurate);
  for (std::size_t k = 0; k < pr_iters; ++k) pagerank.iterate(pr_alu);
  const std::vector<double> truth_ranks(pagerank.ranks().begin(),
                                        pagerank.ranks().end());
  const std::vector<std::size_t> truth_top = pagerank.top_pages(100);
  const double truth_energy = pr_alu.ledger().total_energy();

  util::Table pr_table("PageRank quality vs energy (vs accurate mode)");
  pr_table.set_header(
      {"Mode", "Iters", "Energy/accurate", "L1 distance", "Top-100 overlap"});
  pr_table.set_align(0, util::Align::kLeft);
  std::vector<QualityRow> pr_rows;
  for (arith::ApproxMode mode : arith::kAllModes) {
    pagerank.reset();
    pr_alu.reset_ledger();
    pr_alu.set_mode(mode);
    for (std::size_t k = 0; k < pr_iters; ++k) pagerank.iterate(pr_alu);
    QualityRow row;
    row.mode = std::string(arith::mode_name(mode));
    row.iterations = pr_iters;
    row.energy = pr_alu.ledger().total_energy();
    row.quality = apps::rank_l1_distance(truth_ranks, pagerank.ranks());
    row.aux = static_cast<double>(
        apps::top_k_overlap(truth_top, pagerank.top_pages(100)));
    pr_rows.push_back(row);
    pr_table.add_row({row.mode, std::to_string(row.iterations),
                      util::format_sig(row.energy / truth_energy, 3),
                      util::format_sig(row.quality, 3),
                      util::format_sig(row.aux, 3)});
  }
  std::cout << pr_table << "\n";

  // (5) CG on the stencil Laplacian at grid^2 unknowns.
  std::printf("building %zux%zu stencil Laplacian (%zu unknowns)\n", grid,
              grid, grid * grid);
  la::CsrMatrix laplacian = workloads::make_stencil_laplacian(grid, grid);
  const std::size_t unknowns = laplacian.rows();
  std::printf("laplacian: %zu nnz\n\n", laplacian.nnz());
  // Known O(1) solution keeps every routed value inside the fixed-point
  // format; b = A x_true gives a meaningful relative residual.
  std::vector<double> x_true(unknowns), rhs(unknowns, 0.0);
  for (std::size_t i = 0; i < unknowns; ++i) {
    x_true[i] = std::sin(0.01 * static_cast<double>(i % 1000));
  }
  laplacian.matvec(x_true, rhs);
  double b_norm = 0.0;
  for (const double v : rhs) b_norm += v * v;
  b_norm = std::sqrt(b_norm);
  opt::CgConfig cg_config;
  cg_config.max_iter = cg_iters;
  cg_config.spmv = {.shards = shards, .threads = 4};
  opt::ConjugateGradientSolver cg(std::move(laplacian), std::move(rhs),
                                  std::vector<double>(unknowns, 0.0),
                                  cg_config);
  arith::QcsAlu cg_alu(cg_qcs_config(unknowns));

  util::Table cg_table("CG residual vs energy (5-point stencil)");
  cg_table.set_header(
      {"Mode", "Iters", "Energy", "||Ax-b||", "Relative residual"});
  cg_table.set_align(0, util::Align::kLeft);
  std::vector<QualityRow> cg_rows;
  for (arith::ApproxMode mode : arith::kAllModes) {
    cg.reset();
    cg_alu.reset_ledger();
    cg_alu.set_mode(mode);
    for (std::size_t k = 0; k < cg_iters; ++k) {
      if (cg.iterate(cg_alu).converged) break;
    }
    QualityRow row;
    row.mode = std::string(arith::mode_name(mode));
    row.iterations = cg_iters;
    row.energy = cg_alu.ledger().total_energy();
    row.quality = cg.residual_norm();
    row.aux = row.quality / b_norm;
    cg_rows.push_back(row);
    cg_table.add_row({row.mode, std::to_string(row.iterations),
                      util::format_sig(row.energy, 3),
                      util::format_sig(row.quality, 3),
                      util::format_sig(row.aux, 3)});
  }
  std::cout << cg_table << "\n";

  // (6) Small traced PageRank session: emits session/iteration events for
  // the trace_summary reconciliation check when APPROXIT_TRACE is set.
  {
    const workloads::WebGraph small = workloads::make_web_graph(2000, 5, seed);
    apps::PageRankOptions options;
    options.spmv = {.shards = 4, .threads = 2};
    apps::PageRank method(small, options);
    arith::QcsAlu alu(apps::pagerank_qcs_config());
    apps::PageRank char_method(small, options);
    const core::ModeCharacterization characterization =
        core::characterize(char_method, alu);
    core::StaticStrategy strategy(arith::ApproxMode::kLevel2);
    const core::RunReport report =
        bench::run_once(method, strategy, alu, characterization);
    std::printf("traced session: %s in %zu iterations\n\n",
                report.converged ? "converged" : "MAX_ITER",
                report.iterations);
  }

  // JSON artifact.
  std::ostringstream json;
  json << "{\n  \"bench\": \"sparse\",\n  \"config\": {\"nodes\": " << nodes
       << ", \"links\": " << links << ", \"edges\": " << graph.edges()
       << ", \"grid\": " << grid << ", \"unknowns\": " << unknowns
       << ", \"shards\": " << shards << ", \"seed\": " << seed
       << ", \"detected_tier\": \"" << detected
       << "\", \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << "},\n"
       << "  \"spmv_tiers\": [\n";
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const TierRow& t = tiers[i];
    json << "    {\"mode\": \"" << t.mode << "\", \"scalar_nnz_per_sec\": "
         << t.scalar_nnz_per_sec << ", \"portable_nnz_per_sec\": "
         << t.portable_nnz_per_sec << ", \"simd_nnz_per_sec\": "
         << t.simd_nnz_per_sec << ", \"speedup\": "
         << t.simd_nnz_per_sec / t.scalar_nnz_per_sec
         << ", \"bit_identical\": " << (t.bit_identical ? "true" : "false")
         << "}" << (i + 1 < tiers.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"shard_identity\": [\n";
  for (std::size_t i = 0; i < identity.size(); ++i) {
    json << "    {\"shards\": " << identity[i].shards
         << ", \"bit_identical\": "
         << (identity[i].bit_identical ? "true" : "false") << "}"
         << (i + 1 < identity.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"shard_scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const ScalingRow& s = scaling[i];
    json << "    {\"threads\": " << s.threads << ", \"nnz_per_sec\": "
         << s.nnz_per_sec << ", \"speedup\": " << s.speedup
         << ", \"bit_identical\": " << (s.bit_identical ? "true" : "false")
         << "}" << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"pagerank\": [\n";
  for (std::size_t i = 0; i < pr_rows.size(); ++i) {
    const QualityRow& r = pr_rows[i];
    json << "    {\"mode\": \"" << r.mode << "\", \"iterations\": "
         << r.iterations << ", \"energy\": " << r.energy
         << ", \"relative_energy\": " << r.energy / truth_energy
         << ", \"l1_vs_truth\": " << r.quality << ", \"top100_overlap\": "
         << r.aux << "}" << (i + 1 < pr_rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"cg\": [\n";
  for (std::size_t i = 0; i < cg_rows.size(); ++i) {
    const QualityRow& r = cg_rows[i];
    json << "    {\"mode\": \"" << r.mode << "\", \"iterations\": "
         << r.iterations << ", \"energy\": " << r.energy
         << ", \"residual_norm\": " << r.quality
         << ", \"relative_residual\": " << r.aux << "}"
         << (i + 1 < cg_rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  const std::string path = bench::artifact_path("BENCH_sparse.json");
  std::ofstream out(path);
  out << json.str();
  std::printf("Wrote %s\n", path.c_str());

  bool ok = true;
  for (const TierRow& t : tiers) ok = ok && t.bit_identical;
  for (const ShardIdentityRow& s : identity) ok = ok && s.bit_identical;
  for (const ScalingRow& s : scaling) ok = ok && s.bit_identical;
  if (!ok) {
    std::printf("FAIL: sparse fast path diverged from reference path\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
