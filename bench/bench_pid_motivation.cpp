// Regenerates the Section 2.3 motivation study: K-means clustering with the
// mean-centroid-distance (MCD) sensor under a PID effort controller (the
// Chippa et al. TECS'13 baseline) versus ApproxIt's incremental strategy.
//
// Expected shape: the PID controller oscillates between modes, provides no
// convergence veto, and can end with degraded clustering; the quality-
// guaranteed strategy matches Truth.
#include <cstdio>
#include <iostream>

#include "apps/gmm.h"
#include "apps/kmeans.h"
#include "bench/common.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "core/pid_strategy.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;

int run() {
  std::printf("=== bench_pid_motivation: Section 2.3 (K-means + MCD + PID) ===\n\n");

  util::Table table("PID-controlled DES vs ApproxIt on K-means");
  table.set_header({"Dataset", "Controller", "Iterations", "Mode changes",
                    "QEM (Hamming)", "Energy vs Truth"});
  table.set_align(1, util::Align::kLeft);

  // A more aggressively scaled-effort QCS (deeper approximate regions at
  // the low levels) models the wide effort-scaling range of the DES
  // framework; under it, level1 K-means falsely stops within 1-2 iterations.
  arith::QcsConfig qcs;
  qcs.level_approx_bits = {19, 15, 11, 8};

  for (workloads::GmmDatasetId id : workloads::all_gmm_datasets()) {
    const workloads::GmmDataset ds = workloads::make_gmm_dataset(id);
    arith::QcsAlu alu(qcs);

    apps::KMeans char_method(ds);
    const core::ModeCharacterization characterization =
        core::characterize(char_method, alu);

    apps::KMeans truth_method(ds);
    const core::RunReport truth =
        bench::run_truth(truth_method, alu, characterization);
    const std::vector<int> truth_assign = truth_method.assignments();

    {
      // Level1 single-mode reference: what maximal effort scaling does.
      apps::KMeans method(ds);
      core::StaticStrategy strategy(arith::ApproxMode::kLevel1);
      const core::RunReport report =
          bench::run_once(method, strategy, alu, characterization);
      table.add_row(
          {ds.name, "static level1", bench::iteration_cell(report), "0",
           std::to_string(
               apps::hamming_distance(truth_assign, method.assignments())),
           util::format_sig(bench::relative_energy(report, truth), 3)});
    }
    {
      // PID on the MCD sensor. The sensor is normalized against the
      // previous MCD so the setpoint is a relative-progress target, as in
      // the scalable-effort framework; the controller starts at the lowest
      // effort, like the strategies it is compared against.
      apps::KMeans method(ds);
      double previous_mcd = method.mean_centroid_distance();
      core::PidOptions options;
      options.setpoint = 0.01;
      options.initial_mode = arith::ApproxMode::kLevel1;
      core::PidStrategy strategy(
          options, [&method, &previous_mcd](const opt::IterationStats&) {
            const double mcd = method.mean_centroid_distance();
            const double progress =
                previous_mcd > 0.0 ? (previous_mcd - mcd) / previous_mcd : 0.0;
            previous_mcd = mcd;
            return progress;
          });
      const core::RunReport report =
          bench::run_once(method, strategy, alu, characterization);
      table.add_row(
          {ds.name, "PID + MCD sensor", bench::iteration_cell(report),
           std::to_string(strategy.mode_changes()),
           std::to_string(
               apps::hamming_distance(truth_assign, method.assignments())),
           util::format_sig(bench::relative_energy(report, truth), 3)});
    }
    {
      apps::KMeans method(ds);
      core::IncrementalStrategy strategy;
      const core::RunReport report =
          bench::run_once(method, strategy, alu, characterization);
      table.add_row(
          {ds.name, "ApproxIt incremental", bench::iteration_cell(report),
           std::to_string(report.reconfigurations),
           std::to_string(
               apps::hamming_distance(truth_assign, method.assignments())),
           util::format_sig(bench::relative_energy(report, truth), 3)});
    }
  }

  std::cout << table;
  std::printf(
      "\nThe PID controller tracks the sensor without quality guarantees "
      "(no veto, no rollback,\nbidirectional hops); ApproxIt's schemes "
      "guarantee the final clustering.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
