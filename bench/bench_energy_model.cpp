// Energy-model ablation: Table 3(a)'s energy column under the STATIC
// average model (structural gate energies x average activity/glitch) versus
// the DYNAMIC data-dependent model (input toggles + actual resolved carry
// chains). The claim to check: normalized energy ORDERINGS — the numbers
// the paper's conclusions rest on — are robust to the energy model choice.
#include <cstdio>
#include <iostream>

#include "apps/gmm.h"
#include "bench/common.h"
#include "core/characterization.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;
using arith::ApproxMode;

int run() {
  std::printf("=== bench_energy_model: static vs dynamic energy accounting ===\n\n");

  const workloads::GmmDataset ds =
      workloads::make_gmm_dataset(workloads::GmmDatasetId::k3cluster);

  util::Table table(
      "GMM 3cluster single-mode energy, static vs dynamic model");
  table.set_header({"Configuration", "Iterations", "Static E",
                    "Dynamic E", "Dyn/Static"});

  arith::QcsAlu alu;
  apps::GmmEm char_method(ds);
  const core::ModeCharacterization characterization =
      core::characterize(char_method, alu);

  // Truth runs under both accountings (identical arithmetic; only the
  // ledger pricing differs).
  double truth_static = 0.0;
  double truth_dynamic = 0.0;
  std::size_t truth_iters = 0;
  for (bool dynamic : {false, true}) {
    alu.set_dynamic_energy(dynamic);
    apps::GmmEm method(ds);
    core::StaticStrategy strategy(ApproxMode::kAccurate);
    const core::RunReport report =
        bench::run_once(method, strategy, alu, characterization);
    (dynamic ? truth_dynamic : truth_static) = report.total_energy;
    truth_iters = report.iterations;
  }
  table.add_row({"Truth", std::to_string(truth_iters), "1", "1", "-"});

  for (ApproxMode mode : {ApproxMode::kLevel1, ApproxMode::kLevel2,
                          ApproxMode::kLevel3, ApproxMode::kLevel4}) {
    double rel_static = 0.0;
    double rel_dynamic = 0.0;
    std::size_t iters = 0;
    for (bool dynamic : {false, true}) {
      alu.set_dynamic_energy(dynamic);
      apps::GmmEm method(ds);
      core::StaticStrategy strategy(mode);
      const core::RunReport report =
          bench::run_once(method, strategy, alu, characterization);
      if (dynamic) {
        rel_dynamic = report.total_energy / truth_dynamic;
      } else {
        rel_static = report.total_energy / truth_static;
      }
      iters = report.iterations;
    }
    table.add_row({std::string(arith::mode_name(mode)),
                   std::to_string(iters), util::format_sig(rel_static, 3),
                   util::format_sig(rel_dynamic, 3),
                   util::format_sig(rel_dynamic / rel_static, 3)});
  }
  alu.set_dynamic_energy(false);

  std::cout << table;
  std::printf(
      "\nBoth columns are normalized to the same model's Truth run. The "
      "dynamic model charges\nreal toggle activity and resolved carry "
      "chains; the per-level normalized energies move\nby the Dyn/Static "
      "factor but the level ORDERING — what the paper's analysis uses — "
      "holds.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
