// Regenerates Table 4(b): AutoRegression online reconfiguration results —
// per-mode step counts, total iterations and final error (coefficient l2
// distance vs. Truth) for the incremental and adaptive (f=1) strategies.
#include <cstdio>
#include <iostream>

#include "apps/autoregression.h"
#include "bench/common.h"
#include "core/adaptive_strategy.h"
#include "core/characterization.h"
#include "core/incremental_strategy.h"
#include "util/table.h"
#include "workloads/datasets.h"

namespace {

using namespace approxit;

void append_cells(std::vector<std::string>& cells,
                  const core::RunReport& report, double qem) {
  for (arith::ApproxMode mode : arith::kAllModes) {
    cells.push_back(std::to_string(report.steps(mode)));
  }
  cells.push_back(std::to_string(report.iterations));
  cells.push_back(util::format_sig(qem, 3));
}

int run() {
  std::printf("=== bench_ar_reconfig: Table 4(b) ===\n\n");

  util::Table table("Table 4(b): AutoRegression Online Reconfiguration");
  table.set_header({"Dataset", "I:l1", "I:l2", "I:l3", "I:l4", "I:acc",
                    "I:Total", "I:Error", "A:l1", "A:l2", "A:l3", "A:l4",
                    "A:acc", "A:Total", "A:Error"});

  for (workloads::SeriesId id : workloads::all_series_datasets()) {
    const workloads::TimeSeriesDataset ds = workloads::make_series_dataset(id);
    arith::QcsAlu alu(apps::ar_qcs_config());

    apps::AutoRegression char_method(ds);
    const core::ModeCharacterization characterization =
        core::characterize(char_method, alu);

    apps::AutoRegression truth_method(ds);
    const core::RunReport truth =
        bench::run_truth(truth_method, alu, characterization);
    const std::vector<double> w_truth(truth_method.coefficients().begin(),
                                      truth_method.coefficients().end());

    std::vector<std::string> cells = {ds.name};
    {
      apps::AutoRegression method(ds);
      core::IncrementalStrategy strategy;
      const core::RunReport report =
          bench::run_once(method, strategy, alu, characterization);
      append_cells(
          cells, report,
          apps::coefficient_l2_error(method.coefficients(), w_truth));
      std::printf("  %-18s incremental: energy=%.3f of Truth\n",
                  ds.name.c_str(), bench::relative_energy(report, truth));
    }
    {
      apps::AutoRegression method(ds);
      core::AdaptiveAngleStrategy strategy;  // f = 1
      const core::RunReport report =
          bench::run_once(method, strategy, alu, characterization);
      append_cells(
          cells, report,
          apps::coefficient_l2_error(method.coefficients(), w_truth));
      std::printf("  %-18s adaptive(f=1): energy=%.3f of Truth\n",
                  ds.name.c_str(), bench::relative_energy(report, truth));
    }
    table.add_row(cells);
  }

  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nColumns: I = Incremental, A = Adaptive (f=1); Error = l2 distance "
      "between fitted\nand Truth coefficients (the AR QEM).\n");
  return 0;
}

}  // namespace

int main() { return run(); }
