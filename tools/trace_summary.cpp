// trace_summary: folds an APPROXIT_TRACE JSONL file into per-mode energy/
// quality tables.
//
// The input is the flat one-object-per-line format emitted by
// obs::JsonlSink (obs/trace.h): top-level ts/kind/cat/name/lane plus a flat
// "args" object of numbers, strings and booleans. The tool aggregates the
// "session"/"iteration" events into
//   - a per-mode summary (iterations, energy, schemes fired, rollbacks),
//   - a mode timeline (contiguous same-mode segments with the objective
//     trajectory), and
//   - a reconciliation line (sum of energy deltas vs the cumulative
//     energy_total carried by the last event).
//
// --validate additionally checks the schema of every line (required
// top-level keys; required args on iteration and service events) and exits
// non-zero on the first violation — the CI trace-artifact check. Event
// kinds are reconciled against the registry of everything the
// instrumented layers emit (session/watchdog/strategy/svc/spmv plus the
// dynamic-name alu/sweep/log/lane categories); an UNKNOWN (cat, name)
// pair is not silently skipped — it is counted and reported as a
// validation warning (exit stays 0: a new event kind should show up
// loudly in CI output without breaking the build the day it lands).
#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/table.h"

namespace {

/// One parsed JSONL record: top-level fields plus flat args.
struct TraceLine {
  double ts = 0.0;
  std::string kind;
  std::string cat;
  std::string name;
  long lane = 0;
  std::map<std::string, std::string> string_args;
  std::map<std::string, double> number_args;
};

/// Minimal parser for the flat JSON the JsonlSink writes. Not a general
/// JSON parser: one object per line, values are strings, numbers, booleans
/// or the single nested flat object "args".
class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& line) : text_(line) {}

  /// Parses the line into `out`; returns false (with error()) on malformed
  /// input.
  bool parse(TraceLine& out) {
    skip_ws();
    if (!consume('{')) return fail("expected '{'");
    if (!parse_members(out, /*in_args=*/false)) return false;
    skip_ws();
    return pos_ == text_.size() || fail("trailing characters");
  }

  const std::string& error() const { return error_; }

 private:
  bool parse_members(TraceLine& out, bool in_args) {
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      if (!parse_value(out, key, in_args)) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_value(TraceLine& out, const std::string& key, bool in_args) {
    const char c = peek();
    if (c == '"') {
      std::string value;
      if (!parse_string(value)) return false;
      store_string(out, key, std::move(value), in_args);
      return true;
    }
    if (c == '{') {
      if (in_args || key != "args") return fail("unexpected nested object");
      ++pos_;
      return parse_members(out, /*in_args=*/true);
    }
    if (c == 't' || c == 'f') {
      const bool value = c == 't';
      const std::string_view word = value ? "true" : "false";
      if (text_.compare(pos_, word.size(), word) != 0) {
        return fail("bad literal");
      }
      pos_ += word.size();
      store_number(out, key, value ? 1.0 : 0.0, in_args);
      return true;
    }
    // Number.
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    store_number(out, key, std::strtod(text_.c_str() + start, nullptr),
                 in_args);
    return true;
  }

  void store_string(TraceLine& out, const std::string& key,
                    std::string value, bool in_args) {
    if (in_args) {
      out.string_args[key] = std::move(value);
    } else if (key == "kind") {
      out.kind = std::move(value);
    } else if (key == "cat") {
      out.cat = std::move(value);
    } else if (key == "name") {
      out.name = std::move(value);
    }
  }

  void store_number(TraceLine& out, const std::string& key, double value,
                    bool in_args) {
    if (in_args) {
      out.number_args[key] = value;
    } else if (key == "ts") {
      out.ts = value;
    } else if (key == "lane") {
      out.lane = static_cast<long>(value);
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u':
            // Only control characters are \u-escaped by the sink; keep the
            // raw escape, summaries never need them verbatim.
            out += "\\u";
            break;
          default:
            out += esc;
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool fail(const std::string& message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

constexpr std::array<const char*, 5> kModes = {"level1", "level2", "level3",
                                               "level4", "acc"};

struct ModeBucket {
  std::size_t iterations = 0;
  double energy = 0.0;
  std::size_t rollbacks = 0;
  std::size_t reconfigurations = 0;
  std::size_t watchdog_triggers = 0;
  std::map<std::string, std::size_t> schemes;
};

/// One contiguous run of iterations in the same mode.
struct Segment {
  std::string mode;
  std::size_t first_iter = 0;
  std::size_t last_iter = 0;
  double energy = 0.0;
  double objective_start = 0.0;
  double objective_end = 0.0;
};

/// Fixed-name event kinds every instrumented layer emits. Categories with
/// caller-chosen names (alu ops, sweep arm labels, log levels, lane
/// naming metadata) are matched by category alone.
constexpr std::array<std::pair<const char*, const char*>, 19> kKnownEvents =
    {{{"session", "run"},
      {"session", "iteration"},
      {"session", "run_complete"},
      {"session", "cancelled"},
      {"watchdog", "recovery"},
      {"watchdog", "trigger"},
      {"spmv", "shard"},
      {"svc", "submit"},
      {"svc", "reject"},
      {"svc", "retry"},
      {"svc", "cancel"},
      {"svc", "job"},
      {"svc", "terminal"},
      {"svc", "cache_hit"},
      {"svc", "cache_miss"},
      {"svc", "quality_threshold"},
      {"net", "accept"},
      {"net", "disconnect"},
      {"net", "backpressure"}}};

// `strategy` events are named after the strategy that decided
// (`incremental`, `adaptive`, ..., plus `lut_rebuild`) — caller-chosen,
// like alu op names, sweep arm labels, log levels and lane metadata.
constexpr std::array<const char*, 5> kDynamicNameCategories = {
    "alu", "sweep", "log", "lane", "strategy"};

bool known_event(const TraceLine& line) {
  for (const char* category : kDynamicNameCategories) {
    if (line.cat == category) return true;
  }
  for (const auto& [category, name] : kKnownEvents) {
    if (line.cat == category && line.name == name) return true;
  }
  return false;
}

int validate_line(const TraceLine& line, std::size_t line_number,
                  std::map<std::string, std::size_t>& unknown_kinds) {
  const auto missing = [&](const char* what) {
    std::fprintf(stderr, "line %zu: missing %s\n", line_number, what);
    return 1;
  };
  if (line.kind.empty()) return missing("kind");
  if (line.cat.empty()) return missing("cat");
  if (line.name.empty()) return missing("name");
  if (!known_event(line)) {
    ++unknown_kinds[line.cat + "/" + line.name];
    return 0;
  }
  if (line.cat == "session" && line.name == "iteration") {
    for (const char* key : {"iter", "objective", "energy", "energy_total",
                            "step_norm", "rung"}) {
      if (!line.number_args.count(key)) return missing(key);
    }
    for (const char* key : {"mode", "scheme", "next_mode", "watchdog"}) {
      if (!line.string_args.count(key)) return missing(key);
    }
  }
  if (line.cat == "svc") {
    // The QoS/telemetry events each carry a minimal causal schema; a job
    // id is attached by the JobScope on every per-job event.
    if (line.name == "submit") {
      for (const char* key : {"app", "dataset", "strategy", "tenant"}) {
        if (!line.string_args.count(key)) return missing(key);
      }
      if (!line.number_args.count("job")) return missing("job");
    } else if (line.name == "reject") {
      for (const char* key : {"reason", "tenant"}) {
        if (!line.string_args.count(key)) return missing(key);
      }
    } else if (line.name == "retry") {
      for (const char* key : {"job", "attempt", "backoff_ms"}) {
        if (!line.number_args.count(key)) return missing(key);
      }
    } else if (line.name == "terminal") {
      if (!line.string_args.count("state")) return missing("state");
      if (!line.number_args.count("job")) return missing("job");
    } else if (line.name == "job") {
      if (!line.string_args.count("state")) return missing("state");
      if (!line.number_args.count("job")) return missing("job");
    } else if (line.name == "cancel") {
      if (!line.number_args.count("job")) return missing("job");
    } else if (line.name == "cache_hit") {
      for (const char* key : {"key", "source"}) {
        if (!line.string_args.count(key)) return missing(key);
      }
    } else if (line.name == "cache_miss") {
      if (!line.string_args.count("key")) return missing("key");
    } else if (line.name == "quality_threshold") {
      if (!line.string_args.count("tenant")) return missing("tenant");
      for (const char* key : {"rolling_quality", "threshold"}) {
        if (!line.number_args.count(key)) return missing(key);
      }
    }
  }
  return 0;
}

int run(int argc, char** argv) {
  // Flags here are pure booleans followed by the path, so argv is scanned
  // directly (util::CliParser's "--flag value" rule would swallow the path
  // as --validate's value).
  bool validate = false;
  bool timeline = true;
  std::string path;
  bool usage_error = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view token = argv[i];
    if (token == "--validate") {
      validate = true;
    } else if (token == "--no-timeline") {
      timeline = false;
    } else if (token == "--help" || token == "-h") {
      std::printf(
          "Folds an APPROXIT_TRACE JSONL file into per-mode energy/quality "
          "tables.\n\n"
          "usage: trace_summary [--validate] [--no-timeline] <trace.jsonl>\n"
          "  --validate     schema-check every line; non-zero on violations\n"
          "  --no-timeline  skip the mode-segment timeline table\n");
      return 0;
    } else if (token.rfind("--", 0) == 0 || !path.empty()) {
      usage_error = true;
    } else {
      path = token;
    }
  }
  if (usage_error || path.empty()) {
    std::fprintf(
        stderr,
        "usage: trace_summary [--validate] [--no-timeline] <trace.jsonl>\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_summary: cannot open %s\n", path.c_str());
    return 2;
  }

  std::map<std::string, ModeBucket> buckets;
  std::map<std::string, std::size_t> events_by_cat;
  std::vector<Segment> segments;
  std::map<std::string, std::size_t> unknown_kinds;
  std::size_t iteration_events = 0;
  std::size_t total_lines = 0;
  double energy_delta_sum = 0.0;
  double last_energy_total = 0.0;
  std::string run_status;

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    ++total_lines;
    TraceLine parsed;
    FlatJsonParser parser(line);
    if (!parser.parse(parsed)) {
      std::fprintf(stderr, "line %zu: parse error: %s\n", line_number,
                   parser.error().c_str());
      if (validate) return 1;
      continue;
    }
    if (validate) {
      if (const int rc = validate_line(parsed, line_number, unknown_kinds)) {
        return rc;
      }
    }
    ++events_by_cat[parsed.cat];

    if (parsed.cat == "session" && parsed.name == "run_complete") {
      const auto status = parsed.string_args.find("status");
      if (status != parsed.string_args.end()) run_status = status->second;
    }
    if (parsed.cat != "session" || parsed.name != "iteration") continue;

    ++iteration_events;
    const std::string& mode = parsed.string_args["mode"];
    const double energy = parsed.number_args["energy"];
    const double objective = parsed.number_args["objective"];
    const std::size_t iter =
        static_cast<std::size_t>(parsed.number_args["iter"]);
    energy_delta_sum += energy;
    last_energy_total = parsed.number_args["energy_total"];

    ModeBucket& bucket = buckets[mode];
    ++bucket.iterations;
    bucket.energy += energy;
    if (parsed.number_args["rolled_back"] != 0.0) ++bucket.rollbacks;
    if (parsed.number_args["reconfigured"] != 0.0) {
      ++bucket.reconfigurations;
    }
    if (parsed.string_args["watchdog"] != "none") ++bucket.watchdog_triggers;
    ++bucket.schemes[parsed.string_args["scheme"]];

    if (segments.empty() || segments.back().mode != mode) {
      Segment segment;
      segment.mode = mode;
      segment.first_iter = iter;
      segment.objective_start = objective;
      segments.push_back(segment);
    }
    segments.back().last_iter = iter;
    segments.back().energy += energy;
    segments.back().objective_end = objective;
  }

  if (validate) {
    // Unknown event kinds are warnings, not failures: a freshly added
    // emitter should surface here (with a count) so its schema gets added
    // to kKnownEvents, without turning every new event into a CI outage.
    for (const auto& [kind, count] : unknown_kinds) {
      std::fprintf(stderr,
                   "warning: unknown event kind %s (%zu occurrence%s) — "
                   "not schema-checked; add it to trace_summary's registry\n",
                   kind.c_str(), count, count == 1 ? "" : "s");
    }
    std::printf("trace_summary: %zu lines OK (%zu iteration events, "
                "%zu unknown kind%s)\n",
                total_lines, iteration_events, unknown_kinds.size(),
                unknown_kinds.size() == 1 ? "" : "s");
  }
  if (iteration_events == 0) {
    std::printf("trace_summary: no session/iteration events in %s "
                "(%zu lines)\n",
                path.c_str(), total_lines);
    return validate ? 1 : 0;
  }

  namespace util = approxit::util;
  util::Table summary("Per-mode summary: " + path);
  summary.set_header({"Mode", "Iters", "Energy", "Energy%", "Rollbacks",
                      "Reconfig", "Watchdog", "Schemes"});
  const double total_energy =
      last_energy_total > 0.0 ? last_energy_total : energy_delta_sum;
  for (const char* mode : kModes) {
    const auto it = buckets.find(mode);
    if (it == buckets.end()) continue;
    const ModeBucket& bucket = it->second;
    std::string schemes;
    for (const auto& [scheme, count] : bucket.schemes) {
      if (scheme == "none") continue;
      if (!schemes.empty()) schemes += " ";
      schemes += scheme + ":" + std::to_string(count);
    }
    summary.add_row({mode, std::to_string(bucket.iterations),
                     util::format_sig(bucket.energy, 4),
                     util::format_percent(total_energy > 0.0
                                              ? bucket.energy / total_energy
                                              : 0.0),
                     std::to_string(bucket.rollbacks),
                     std::to_string(bucket.reconfigurations),
                     std::to_string(bucket.watchdog_triggers),
                     schemes.empty() ? "-" : schemes});
  }
  std::cout << summary;

  if (timeline) {
    util::Table timeline_table("Mode timeline");
    timeline_table.set_header(
        {"Iters", "Mode", "Energy", "Objective start", "Objective end"});
    for (const Segment& segment : segments) {
      timeline_table.add_row({std::to_string(segment.first_iter) + "-" +
                                  std::to_string(segment.last_iter),
                              segment.mode,
                              util::format_sig(segment.energy, 4),
                              util::format_sig(segment.objective_start, 6),
                              util::format_sig(segment.objective_end, 6)});
    }
    std::cout << "\n" << timeline_table;
  }

  std::printf(
      "\n%zu iteration events; energy: sum of deltas %.17g, cumulative "
      "total %.17g%s\n",
      iteration_events, energy_delta_sum, last_energy_total,
      run_status.empty() ? "" : (", status " + run_status).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_summary: %s\n", e.what());
    return 2;
  }
}
