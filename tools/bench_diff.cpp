// bench_diff: compares two BENCH_*.json artifacts and flags regressions.
//
//   bench_diff [--threshold F] [--gate] [--all] BASELINE.json CURRENT.json
//
//   --threshold F   relative change below which a numeric delta is noise
//                   (default 0.05 = 5%)
//   --gate          exit 1 when any regression is flagged (CI mode)
//   --all           also print unchanged/unclassified metrics
//
// Artifacts are flattened to path -> leaf (objects dot-joined, arrays
// indexed), then matched by path. Whether a delta is a regression follows
// the metric's name: throughput-like leaves (per_sec, speedup, hits,
// scaling, occupancy) regress when they DROP; cost-like leaves (_ms, overhead,
// misses, energy, evictions) regress when they RISE; invariant booleans
// (identical, deterministic, bit_identical, converged, all_hits) regress
// on a true -> false flip. Leaves matching neither family are reported as
// informational changes only — bench_diff never guesses a direction.
//
// Exit codes: 0 ok (or regressions found without --gate), 1 regressions
// under --gate, 2 usage/IO/parse error.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// One flattened leaf: a number, a boolean or a string.
struct Leaf {
  enum class Kind { kNumber, kBool, kString } kind = Kind::kNumber;
  double number = 0.0;
  bool boolean = false;
  std::string text;
};

/// Minimal recursive-descent JSON reader, just enough for the bench
/// artifacts this repo writes (objects, arrays, numbers, strings, bools,
/// null). Flattens into `out` with dot/index paths.
class FlattenParser {
 public:
  FlattenParser(const std::string& text, std::map<std::string, Leaf>* out)
      : text_(text), out_(out) {}

  bool run() {
    skip_space();
    if (!parse_value("")) return false;
    skip_space();
    return at_ >= text_.size();
  }

  std::string error() const { return error_; }

 private:
  bool fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(at_);
    }
    return false;
  }

  void skip_space() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_]))) {
      ++at_;
    }
  }

  bool parse_string(std::string* out) {
    if (at_ >= text_.size() || text_[at_] != '"') return fail("expected '\"'");
    ++at_;
    while (at_ < text_.size() && text_[at_] != '"') {
      if (text_[at_] == '\\' && at_ + 1 < text_.size()) {
        ++at_;
        switch (text_[at_]) {
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'u':
            // Bench artifacts only escape control bytes; keep the raw
            // sequence, the diff only needs equality.
            *out += "\\u";
            break;
          default: *out += text_[at_];
        }
      } else {
        *out += text_[at_];
      }
      ++at_;
    }
    if (at_ >= text_.size()) return fail("unterminated string");
    ++at_;
    return true;
  }

  bool parse_value(const std::string& path) {
    skip_space();
    if (at_ >= text_.size()) return fail("unexpected end");
    const char c = text_[at_];
    if (c == '{') {
      ++at_;
      skip_space();
      if (at_ < text_.size() && text_[at_] == '}') { ++at_; return true; }
      for (;;) {
        skip_space();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_space();
        if (at_ >= text_.size() || text_[at_] != ':') {
          return fail("expected ':'");
        }
        ++at_;
        if (!parse_value(path.empty() ? key : path + "." + key)) {
          return false;
        }
        skip_space();
        if (at_ < text_.size() && text_[at_] == ',') { ++at_; continue; }
        break;
      }
      if (at_ >= text_.size() || text_[at_] != '}') return fail("expected '}'");
      ++at_;
      return true;
    }
    if (c == '[') {
      ++at_;
      skip_space();
      if (at_ < text_.size() && text_[at_] == ']') { ++at_; return true; }
      std::size_t index = 0;
      for (;;) {
        if (!parse_value(path + "[" + std::to_string(index++) + "]")) {
          return false;
        }
        skip_space();
        if (at_ < text_.size() && text_[at_] == ',') { ++at_; continue; }
        break;
      }
      if (at_ >= text_.size() || text_[at_] != ']') return fail("expected ']'");
      ++at_;
      return true;
    }
    if (c == '"') {
      Leaf leaf;
      leaf.kind = Leaf::Kind::kString;
      if (!parse_string(&leaf.text)) return false;
      (*out_)[path] = std::move(leaf);
      return true;
    }
    if (text_.compare(at_, 4, "true") == 0) {
      at_ += 4;
      (*out_)[path] = Leaf{Leaf::Kind::kBool, 0.0, true, ""};
      return true;
    }
    if (text_.compare(at_, 5, "false") == 0) {
      at_ += 5;
      (*out_)[path] = Leaf{Leaf::Kind::kBool, 0.0, false, ""};
      return true;
    }
    if (text_.compare(at_, 4, "null") == 0) {
      at_ += 4;
      return true;
    }
    char* end = nullptr;
    const double number = std::strtod(text_.c_str() + at_, &end);
    if (end == text_.c_str() + at_) return fail("unparseable value");
    at_ = static_cast<std::size_t>(end - text_.c_str());
    (*out_)[path] = Leaf{Leaf::Kind::kNumber, number, false, ""};
    return true;
  }

  const std::string& text_;
  std::map<std::string, Leaf>* out_;
  std::size_t at_ = 0;
  std::string error_;
};

bool load(const char* path, std::map<std::string, Leaf>* out,
          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = std::string("cannot open ") + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  FlattenParser parser(text, out);
  if (!parser.run()) {
    *error = std::string(path) + ": " + parser.error();
    return false;
  }
  return true;
}

bool contains_token(const std::string& path, const char* token) {
  return path.find(token) != std::string::npos;
}

/// The leaf (not the enclosing path) names the quantity: classify on the
/// final path segment.
std::string leaf_name(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(dot + 1);
}

enum class Direction { kHigherBetter, kLowerBetter, kInvariantBool,
                       kUnclassified };

Direction classify(const std::string& path, const Leaf& leaf) {
  const std::string name = leaf_name(path);
  if (leaf.kind == Leaf::Kind::kBool) {
    for (const char* token :
         {"identical", "deterministic", "bit_", "all_hits", "converged",
          "reconcile", "ok", "passed"}) {
      if (contains_token(name, token)) return Direction::kInvariantBool;
    }
    return Direction::kUnclassified;
  }
  if (leaf.kind != Leaf::Kind::kNumber) return Direction::kUnclassified;
  for (const char* token :
       {"per_sec", "speedup", "hits", "scaling", "throughput", "recovered",
        "converged", "occupancy"}) {
    if (contains_token(name, token)) return Direction::kHigherBetter;
  }
  for (const char* token :
       {"_ms", "overhead", "misses", "wall", "energy", "evictions",
        "quarantines", "dropped", "failed", "retries"}) {
    if (contains_token(name, token)) return Direction::kLowerBetter;
  }
  return Direction::kUnclassified;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.05;
  bool gate = false;
  bool show_all = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--all") == 0) {
      show_all = true;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff [--threshold F] [--gate] [--all] "
                 "BASELINE.json CURRENT.json\n");
    return 2;
  }

  std::map<std::string, Leaf> baseline, current;
  std::string error;
  if (!load(files[0], &baseline, &error) ||
      !load(files[1], &current, &error)) {
    std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
    return 2;
  }

  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t compared = 0;
  std::printf("bench_diff: %s -> %s (threshold %.1f%%)\n", files[0],
              files[1], threshold * 100.0);
  for (const auto& [path, before] : baseline) {
    const auto it = current.find(path);
    if (it == current.end()) {
      std::printf("  MISSING    %-48s (dropped from current)\n",
                  path.c_str());
      continue;
    }
    const Leaf& after = it->second;
    if (after.kind != before.kind) {
      std::printf("  TYPE       %-48s changed kind\n", path.c_str());
      continue;
    }
    ++compared;
    const Direction direction = classify(path, before);
    if (before.kind == Leaf::Kind::kBool) {
      if (before.boolean == after.boolean) continue;
      const bool regressed = direction == Direction::kInvariantBool &&
                             before.boolean && !after.boolean;
      if (regressed) ++regressions;
      std::printf("  %s %-48s %s -> %s\n",
                  regressed ? "REGRESSION" : "CHANGE    ", path.c_str(),
                  before.boolean ? "true" : "false",
                  after.boolean ? "true" : "false");
      continue;
    }
    if (before.kind == Leaf::Kind::kString) {
      if (before.text != after.text && show_all) {
        std::printf("  CHANGE     %-48s \"%s\" -> \"%s\"\n", path.c_str(),
                    before.text.c_str(), after.text.c_str());
      }
      continue;
    }
    const double denom = std::abs(before.number);
    const double relative =
        denom > 0.0 ? (after.number - before.number) / denom
                    : (after.number == before.number ? 0.0 : 1.0);
    const bool significant = std::abs(relative) >= threshold;
    if (!significant) {
      if (show_all) {
        std::printf("  ok         %-48s %.6g -> %.6g\n", path.c_str(),
                    before.number, after.number);
      }
      continue;
    }
    bool regressed = false;
    if (direction == Direction::kHigherBetter) regressed = relative < 0.0;
    if (direction == Direction::kLowerBetter) regressed = relative > 0.0;
    if (direction == Direction::kUnclassified) {
      if (show_all) {
        std::printf("  CHANGE     %-48s %.6g -> %.6g (%+.1f%%)\n",
                    path.c_str(), before.number, after.number,
                    relative * 100.0);
      }
      continue;
    }
    if (regressed) {
      ++regressions;
    } else {
      ++improvements;
    }
    std::printf("  %s %-48s %.6g -> %.6g (%+.1f%%)\n",
                regressed ? "REGRESSION" : "IMPROVED  ", path.c_str(),
                before.number, after.number, relative * 100.0);
  }
  for (const auto& [path, leaf] : current) {
    (void)leaf;
    if (baseline.find(path) == baseline.end() && show_all) {
      std::printf("  NEW        %-48s\n", path.c_str());
    }
  }
  std::printf(
      "bench_diff: %zu compared, %zu regression(s), %zu improvement(s)\n",
      compared, regressions, improvements);
  if (gate && regressions > 0) return 1;
  return 0;
}
