// approxit_serve: the serving front end — stdin/stdout lines, or a
// network listener.
//
// Both modes answer the same wire protocol (svc/protocol.h, v2 with the
// v1 dialect accepted forever) through the same svc::Client dispatch
// path, so a request gets byte-identical answers whichever transport
// carried it.
//
//   approxit_serve [flags]                 # stdin/stdout, one op per line
//   approxit_serve --listen unix:/p [flags]  # epoll front end (net/server.h)
//   approxit_serve --listen :0 [flags]       # TCP; prints the bound address
//
// In --listen mode the resolved listen address is printed to stdout as
// the first line (ephemeral TCP ports made concrete), then the process
// serves until a client's shutdown op or SIGTERM. Connect with
// tools/approxit_client or any line-JSON speaker.
//
// Operations (v1 set, unchanged shapes):
//
//   {"op":"submit","app":"gmm","dataset":"3cluster"[,"tenant":...,
//    "strategy":...,"max_iterations":N,"characterization_iterations":N,
//    "deadline_ms":D,"priority":P]}
//     -> {"ok":true,"op":"submit","id":N} | {"ok":false,"error":"..."}
//   {"op":"status","id":N}   -> point-in-time state (never the report)
//   {"op":"result","id":N}   -> blocks until terminal; report attached
//   {"op":"cancel","id":N}, {"op":"forget","id":N}
//   {"op":"stats"}           -> service tallies + merged metrics
//   {"op":"shutdown"}        -> drain, respond, exit 0
//
// v2 additions (send "proto":2; v1 lines keep parsing):
//
//   {"op":"hello","proto":2}
//     -> {"ok":true,"op":"hello","proto":2,"service":"approxit"}
//   {"op":"submit","stream":true,...}
//     -> the submit response, then pushed {"event":...} lines
//        (queued/running/progress*/terminal) as the job advances
//   {"op":"stream","id":N}
//     -> replays the job's current state as an event, tails live events
//        through the terminal one, then a final {"ok":true,"op":"stream"}
//   {"op":"stats","format":"prometheus|jsonl|scorecard"[,"mode":...,
//    "deterministic":true]}
//     -> the metrics/scorecard export that op "stats_export" produced in
//        v1 (that name survives as an alias; see DESIGN §12)
//
// Flags: --threads N --queue N --tenant-cap N --retain N --cache-dir DIR
//        --cache-capacity N --no-disk-cache
//        --slo-ms D --degrade-watermark N --shed-watermark N
//        --tenant-rate R --tenant-burst B --retries N
//        --listen ADDR --backend epoll|poll --progress-every N
//        --shards N --batch-max N --batch-window-ms D
//
// --progress-every N emits a progress event every N executed iterations
// of each running job to its stream subscribers (0 = off).
//
// --shards N serves through a svc::ShardRouter: N runtimes (each with
// --threads workers) behind a consistent-hash router and ONE shared
// profile-cache tier. Job ids, events, stats and exports keep the exact
// wire shapes; stats merges are byte-identical across shard counts.
// Without the flag a single runtime serves directly (ids differ from
// --shards 1 only in the global-id encoding). --batch-max/--batch-window-ms
// enable cross-job micro-batching inside each runtime (reports stay
// bit-identical to unbatched execution; see DESIGN §13).
//
// Request lines are capped at svc::kMaxWireLine; longer lines are drained
// without buffering and answered with an error, so a malformed client
// cannot balloon the server's memory.
//
// Tracing: set APPROXIT_TRACE=path.jsonl as with every other binary; the
// service emits "svc" submit/job events alongside the session events, and
// --listen mode adds "net" accept/disconnect/backpressure instants.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <memory>

#include "net/server.h"
#include "svc/client.h"
#include "svc/protocol.h"
#include "svc/shard.h"
#include "svc/wire.h"

namespace {

using approxit::svc::InProcessClient;
using approxit::svc::JobStatus;
using approxit::svc::OpKind;
using approxit::svc::ServiceConfig;
using approxit::svc::ServingClient;
using approxit::svc::ShardRouter;
using approxit::svc::ShardRouterConfig;
using approxit::svc::WireObject;
using approxit::svc::WireWriter;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--queue N] [--tenant-cap N]\n"
               "          [--retain N] [--cache-dir DIR] "
               "[--cache-capacity N] [--no-disk-cache]\n"
               "          [--slo-ms D] [--degrade-watermark N] "
               "[--shed-watermark N]\n"
               "          [--tenant-rate R] [--tenant-burst B] "
               "[--retries N]\n"
               "          [--listen ADDR] [--backend epoll|poll] "
               "[--progress-every N]\n"
               "          [--shards N] [--batch-max N] "
               "[--batch-window-ms D]\n",
               argv0);
  return 2;
}

void print_line(const std::string& line) {
  std::cout << line << '\n' << std::flush;
}

/// The ops dispatch_sync hands back to the front end, stdin flavour:
/// result blocks the (single-request) stdin pipeline, streams drain
/// inline, shutdown ends the process.
int run_stdin_front_end(ServingClient& client) {
  std::string line;
  bool overflow = false;
  while (approxit::svc::read_wire_line(std::cin, line, &overflow)) {
    if (overflow) {
      print_line(approxit::svc::encode_parse_error("line too long"));
      continue;
    }
    if (line.empty()) continue;
    std::string parse_error;
    const auto request = approxit::svc::parse_wire_object(line, &parse_error);
    if (!request) {
      print_line(approxit::svc::encode_parse_error(parse_error));
      continue;
    }
    if (const auto response = approxit::svc::dispatch_sync(client, *request)) {
      print_line(*response);
      continue;
    }
    switch (approxit::svc::classify_op(*request)) {
      case OpKind::kResult: {
        const auto id =
            static_cast<std::uint64_t>(request->get_int("id", 0));
        const std::optional<JobStatus> status = client.result(id);
        if (!status) {
          print_line(approxit::svc::encode_error("result", "unknown_job"));
        } else {
          print_line(approxit::svc::encode_status_response(
              "result", *status, /*include_report=*/true));
        }
        break;
      }
      case OpKind::kSubmitStream: {
        std::string error;
        const auto stream = client.submit_stream(
            approxit::svc::job_spec_from_wire(*request), &error);
        if (!stream) {
          print_line(approxit::svc::encode_error("submit", error));
          break;
        }
        WireWriter response;
        response.field("ok", true).field("op", "submit").field(
            "id", static_cast<std::int64_t>(stream->id()));
        print_line(response.str());
        while (const auto event = stream->next()) {
          print_line(approxit::svc::encode_stream_event(*event));
        }
        break;
      }
      case OpKind::kStream: {
        const auto id =
            static_cast<std::uint64_t>(request->get_int("id", 0));
        const auto stream = client.stream(id);
        if (!stream) {
          print_line(approxit::svc::encode_error("stream", "unknown_job"));
          break;
        }
        while (const auto event = stream->next()) {
          print_line(approxit::svc::encode_stream_event(*event));
        }
        WireWriter final_response;
        final_response.field("ok", true).field("op", "stream").field(
            "id", static_cast<std::int64_t>(id));
        print_line(final_response.str());
        break;
      }
      case OpKind::kShutdown: {
        client.shutdown();
        WireWriter response;
        response.field("ok", true).field("op", "shutdown");
        print_line(response.str());
        return 0;
      }
      default:
        print_line(approxit::svc::encode_error(
            request->get_string("op"), "internal: unhandled op"));
        break;
    }
  }
  client.shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServiceConfig config;
  approxit::net::NetServerConfig net_config;
  std::string listen_address;
  std::size_t shards = 0;  // 0 = no router (direct single runtime).
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--threads") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.threads = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--queue") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.queue_capacity =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--tenant-cap") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.per_tenant_cap =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--retain") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.retain_terminal =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--cache-dir") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.cache.directory = value;
    } else if (flag == "--cache-capacity") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.cache.capacity =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--no-disk-cache") {
      config.cache.directory.clear();
    } else if (flag == "--slo-ms") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.qos.slo_ms = std::strtod(value, nullptr);
    } else if (flag == "--degrade-watermark") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.qos.degrade_watermark =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--shed-watermark") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.qos.shed_watermark =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--tenant-rate") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.qos.tenant_rate = std::strtod(value, nullptr);
    } else if (flag == "--tenant-burst") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.qos.tenant_burst = std::strtod(value, nullptr);
    } else if (flag == "--retries") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.qos.max_retries =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--listen") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      listen_address = value;
    } else if (flag == "--backend") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      if (std::strcmp(value, "epoll") == 0) {
        net_config.backend = approxit::net::EventLoop::Backend::kEpoll;
      } else if (std::strcmp(value, "poll") == 0) {
        net_config.backend = approxit::net::EventLoop::Backend::kPoll;
      } else {
        return usage(argv[0]);
      }
    } else if (flag == "--progress-every") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.progress_every =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--shards") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      shards = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
      if (shards == 0) shards = 1;
    } else if (flag == "--batch-max") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.batch.enabled = true;
      config.batch.max_batch =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--batch-window-ms") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.batch.enabled = true;
      config.batch.window_ms = std::strtod(value, nullptr);
    } else {
      return usage(argv[0]);
    }
  }

  // --shards N (even N=1) serves through the router so sharded and
  // single-shard deployments share the global-id scheme and merge order;
  // no flag keeps the original direct single-runtime path.
  std::unique_ptr<ServingClient> tier;
  if (shards > 0) {
    ShardRouterConfig router_config;
    router_config.shards = shards;
    router_config.shard = std::move(config);
    tier = std::make_unique<ShardRouter>(std::move(router_config));
  } else {
    tier = std::make_unique<InProcessClient>(std::move(config));
  }
  ServingClient& client = *tier;

  if (listen_address.empty()) return run_stdin_front_end(client);

  net_config.address = listen_address;
  approxit::net::NetServer server(client, net_config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "approxit_serve: %s\n", error.c_str());
    return 1;
  }
  // First stdout line: the concrete address (":0" resolved) — scripts
  // read it to find an ephemeral port.
  print_line(server.listen_address());
  std::fprintf(stderr, "approxit_serve: listening on %s\n",
               server.listen_address().c_str());
  server.run();
  return 0;
}
