// approxit_serve: line-delimited JSON front end for svc::ServiceRuntime.
//
// Reads one request object per line from stdin, writes one response object
// per line to stdout (stderr stays free for logs). Operations:
//
//   {"op":"submit","app":"gmm","dataset":"3cluster"[,"tenant":...,
//    "strategy":...,"max_iterations":N,"characterization_iterations":N,
//    "deadline_ms":D,"priority":P]}
//     -> {"ok":true,"op":"submit","id":N} | {"ok":false,"error":"..."}
//   {"op":"status","id":N}
//     -> {"ok":true,"op":"status","id":N,
//         "state":"queued|running|done|failed|cancelled|deadline_exceeded",...}
//   {"op":"result","id":N}           # blocks until the job is terminal
//     -> {"ok":true,"op":"result","id":N,"state":...,"cache_hit":...,
//         "report":{...}}            # report = core::report_to_json
//   {"op":"cancel","id":N}           # queued: immediate; running: within
//     -> {"ok":true,...}             #   one iteration (cooperative token)
//   {"op":"stats"}
//     -> {"ok":true,"op":"stats",...,"metrics":{...}}
//   {"op":"stats_export"[,"format":"prometheus|jsonl|scorecard",
//    "mode":"full|delta","deterministic":true]}
//     -> {"ok":true,"op":"stats_export","format":...,"content":"..."}
//        format prometheus/jsonl returns the MetricsExporter snapshot of
//        collect_metrics + timing metrics + scorecard gauges ("content");
//        "deterministic":true restricts it to the thread-count-invariant
//        collect_metrics aggregate. mode "delta" reports only changes
//        since the previous delta scrape of the same format (an idle
//        service exports ""). format "scorecard" returns the per-tenant
//        SLO/quality scorecard as a raw JSON object ("scorecard").
//   {"op":"forget","id":N}           # drop a terminal job's snapshot
//     -> {"ok":true,"op":"forget","id":N} | {"ok":false,"error":"..."}
//   {"op":"shutdown"}                # drain, respond, exit 0
//
// Flags: --threads N --queue N --tenant-cap N --retain N --cache-dir DIR
//        --cache-capacity N --no-disk-cache
//        --slo-ms D --degrade-watermark N --shed-watermark N
//        --tenant-rate R --tenant-burst B --retries N
//
// --retain bounds how many terminal job snapshots stay queryable (oldest
// retire first, their metrics folded into the stats aggregate); 0 retains
// everything. --slo-ms puts a default deadline on every job; the
// watermark/rate/burst/retries flags configure svc::QosConfig (degrade
// before shed, token-bucket admission, transient-failure retries).
//
// Request lines are capped at svc::kMaxWireLine; longer lines are drained
// without buffering and answered with an error, so a malformed client
// cannot balloon the server's memory.
//
// Tracing: set APPROXIT_TRACE=path.jsonl as with every other binary; the
// service emits "svc" submit/job events alongside the session events.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "svc/runtime.h"
#include "svc/wire.h"

namespace {

using approxit::svc::JobSnapshot;
using approxit::svc::JobSpec;
using approxit::svc::ServiceConfig;
using approxit::svc::ServiceRuntime;
using approxit::svc::ServiceStats;
using approxit::svc::WireObject;
using approxit::svc::WireWriter;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--queue N] [--tenant-cap N]\n"
               "          [--retain N] [--cache-dir DIR] "
               "[--cache-capacity N] [--no-disk-cache]\n"
               "          [--slo-ms D] [--degrade-watermark N] "
               "[--shed-watermark N]\n"
               "          [--tenant-rate R] [--tenant-burst B] "
               "[--retries N]\n",
               argv0);
  return 2;
}

JobSpec spec_from_request(const WireObject& request) {
  JobSpec spec;
  spec.tenant = request.get_string("tenant", "default");
  spec.app = request.get_string("app");
  spec.dataset = request.get_string("dataset");
  spec.strategy = request.get_string("strategy", "incremental");
  spec.max_iterations =
      static_cast<std::size_t>(request.get_int("max_iterations", 0));
  spec.characterization_iterations = static_cast<std::size_t>(
      request.get_int("characterization_iterations", 0));
  spec.keep_trace = request.get_bool("keep_trace", false);
  spec.deadline_ms = request.get_double("deadline_ms", 0.0);
  spec.priority = static_cast<int>(request.get_int("priority", 0));
  return spec;
}

void append_snapshot(WireWriter& response, const JobSnapshot& snapshot,
                     bool include_report) {
  response.field("id", static_cast<std::int64_t>(snapshot.id));
  response.field("state", approxit::svc::job_state_name(snapshot.state));
  if (snapshot.state == approxit::svc::JobState::kFailed) {
    response.field("job_error", snapshot.error);
  }
  if (approxit::svc::job_state_terminal(snapshot.state)) {
    response.field("cache_hit", snapshot.cache_hit);
    response.field("queue_ms", snapshot.queue_ms);
    response.field("run_ms", snapshot.run_ms);
    response.field("characterization_ms", snapshot.characterization_ms);
    response.field("degraded", snapshot.degraded);
    response.field("attempts", snapshot.attempts);
  }
  // Done jobs return the full report; cancelled / deadline-expired jobs
  // return the PARTIAL result their run reached (iterations, objective,
  // state) — the structured outcome the cooperative stop guarantees.
  if (include_report && !snapshot.report_json.empty() &&
      (snapshot.state == approxit::svc::JobState::kDone ||
       snapshot.state == approxit::svc::JobState::kCancelled ||
       snapshot.state == approxit::svc::JobState::kDeadlineExceeded)) {
    response.raw("report", snapshot.report_json);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--threads") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.threads = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--queue") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.queue_capacity =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--tenant-cap") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.per_tenant_cap =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--retain") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.retain_terminal =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--cache-dir") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.cache.directory = value;
    } else if (flag == "--cache-capacity") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.cache.capacity =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--no-disk-cache") {
      config.cache.directory.clear();
    } else if (flag == "--slo-ms") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.qos.slo_ms = std::strtod(value, nullptr);
    } else if (flag == "--degrade-watermark") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.qos.degrade_watermark =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--shed-watermark") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.qos.shed_watermark =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--tenant-rate") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.qos.tenant_rate = std::strtod(value, nullptr);
    } else if (flag == "--tenant-burst") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.qos.tenant_burst = std::strtod(value, nullptr);
    } else if (flag == "--retries") {
      const char* value = next();
      if (value == nullptr) return usage(argv[0]);
      config.qos.max_retries =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else {
      return usage(argv[0]);
    }
  }

  ServiceRuntime runtime(config);

  // One exporter per format so each format's delta-scrape sequence keeps
  // its own monotonic baseline (approxit_top polls jsonl while a
  // Prometheus scraper can poll text, without stealing each other's
  // deltas).
  approxit::obs::MetricsExporter prometheus_exporter;
  approxit::obs::MetricsExporter jsonl_exporter;

  std::string line;
  bool overflow = false;
  while (approxit::svc::read_wire_line(std::cin, line, &overflow)) {
    if (overflow) {
      WireWriter response;
      response.field("ok", false).field("error", "parse_error: line too long");
      std::cout << response.str() << '\n' << std::flush;
      continue;
    }
    if (line.empty()) continue;
    WireWriter response;
    std::string parse_error;
    const auto request = approxit::svc::parse_wire_object(line, &parse_error);
    if (!request) {
      response.field("ok", false).field("error",
                                        "parse_error: " + parse_error);
      std::cout << response.str() << '\n' << std::flush;
      continue;
    }

    const std::string op = request->get_string("op");
    if (op == "submit") {
      std::string error;
      const auto id = runtime.submit(spec_from_request(*request), &error);
      if (id) {
        response.field("ok", true).field("op", op).field(
            "id", static_cast<std::int64_t>(*id));
      } else {
        response.field("ok", false).field("op", op).field("error", error);
      }
    } else if (op == "status" || op == "result") {
      const auto id =
          static_cast<std::uint64_t>(request->get_int("id", 0));
      const auto snapshot =
          op == "result" ? runtime.result(id) : runtime.status(id);
      if (snapshot) {
        response.field("ok", true).field("op", op);
        append_snapshot(response, *snapshot, /*include_report=*/op == "result");
      } else {
        response.field("ok", false).field("op", op).field("error",
                                                          "unknown_job");
      }
    } else if (op == "cancel") {
      const auto id =
          static_cast<std::uint64_t>(request->get_int("id", 0));
      if (runtime.cancel(id)) {
        response.field("ok", true).field("op", op).field(
            "id", static_cast<std::int64_t>(id));
      } else {
        response.field("ok", false).field("op", op).field(
            "error", "unknown_or_terminal_job");
      }
    } else if (op == "stats") {
      const ServiceStats stats = runtime.stats();
      approxit::obs::MetricsRegistry merged;
      runtime.collect_metrics(merged);
      response.field("ok", true)
          .field("op", op)
          .field("submitted", stats.submitted)
          .field("completed", stats.completed)
          .field("failed", stats.failed)
          .field("cancelled", stats.cancelled)
          .field("deadline_exceeded", stats.deadline_exceeded)
          .field("queued", stats.queued)
          .field("running", stats.running)
          .field("rejected_queue_full", stats.rejected_queue_full)
          .field("rejected_tenant_cap", stats.rejected_tenant_cap)
          .field("rejected_bad_request", stats.rejected_bad_request)
          .field("rejected_rate_limited", stats.rejected_rate_limited)
          .field("shed", stats.shed)
          .field("degraded", stats.degraded)
          .field("retries", stats.retries)
          .field("cache_hits", stats.cache.hits)
          .field("cache_misses", stats.cache.misses)
          .field("cache_disk_hits", stats.cache.disk_hits)
          .field("cache_stores", stats.cache.stores)
          .field("cache_evictions", stats.cache.evictions)
          .field("cache_quarantines", stats.cache.quarantines)
          .raw("metrics", merged.to_json());
    } else if (op == "stats_export") {
      const std::string format = request->get_string("format", "prometheus");
      const std::string mode = request->get_string("mode", "full");
      if (format == "scorecard") {
        response.field("ok", true)
            .field("op", op)
            .field("format", format)
            .raw("scorecard", runtime.scorecard_json());
      } else if (format != "prometheus" && format != "jsonl") {
        response.field("ok", false).field("op", op).field(
            "error", "unknown_format: " + format);
      } else if (mode != "full" && mode != "delta") {
        response.field("ok", false).field("op", op).field(
            "error", "unknown_mode: " + mode);
      } else {
        approxit::obs::MetricsRegistry merged;
        runtime.collect_metrics(merged);
        if (!request->get_bool("deterministic", false)) {
          merged.merge(runtime.timing_metrics());
          runtime.scorecard().export_to(merged);
        }
        const auto wire_format =
            format == "prometheus"
                ? approxit::obs::MetricsExporter::Format::kPrometheus
                : approxit::obs::MetricsExporter::Format::kJsonLines;
        approxit::obs::MetricsExporter& exporter =
            format == "prometheus" ? prometheus_exporter : jsonl_exporter;
        const std::string content =
            mode == "delta" ? exporter.export_delta(merged, wire_format)
                            : exporter.export_full(merged, wire_format);
        response.field("ok", true)
            .field("op", op)
            .field("format", format)
            .field("mode", mode)
            .field("content", content);
      }
    } else if (op == "forget") {
      const auto id =
          static_cast<std::uint64_t>(request->get_int("id", 0));
      if (runtime.forget(id)) {
        response.field("ok", true).field("op", op).field(
            "id", static_cast<std::int64_t>(id));
      } else {
        response.field("ok", false).field("op", op).field(
            "error", "unknown_or_active_job");
      }
    } else if (op == "shutdown") {
      runtime.shutdown();
      response.field("ok", true).field("op", op);
      std::cout << response.str() << '\n' << std::flush;
      return 0;
    } else {
      response.field("ok", false).field("error", "unknown_op: " + op);
    }
    std::cout << response.str() << '\n' << std::flush;
  }

  runtime.shutdown();
  return 0;
}
