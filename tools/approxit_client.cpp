// approxit_client: command-line client for a networked approxit_serve.
//
// Dials the server (Unix-domain or TCP), speaks wire v2 through
// svc::LineClient — the same transport the benches and tests use — and
// prints one response line per command:
//
//   approxit_client --connect unix:/tmp/approxit.sock submit
//       --app gmm --dataset 3cluster [--tenant T] [--strategy S]
//       [--max-iterations N] [--deadline-ms D] [--priority P]
//       [--await | --stream]
//   approxit_client --connect ADDR status --id N
//   approxit_client --connect ADDR result --id N      # blocks
//   approxit_client --connect ADDR cancel --id N
//   approxit_client --connect ADDR forget --id N
//   approxit_client --connect ADDR stream --id N      # tails events
//   approxit_client --connect ADDR stats [--format prometheus|jsonl|
//       scorecard] [--mode full|delta] [--deterministic]
//   approxit_client --connect ADDR hello
//   approxit_client --connect ADDR shutdown
//   approxit_client --connect ADDR raw '{"op":"submit",...}'
//
// Synchronous commands print the server's response line VERBATIM (raw
// bytes, no re-encode) — which is what makes this tool usable for the
// stdin-vs-socket identity checks in CI. Streaming commands (submit
// --stream, stream) print each pushed event re-encoded through
// svc/protocol.h as it arrives. submit --await submits, then blocks on
// the result and prints it as a result response.
//
// Exit status: 0 on an ok:true response (every streamed event delivered
// for streams), 1 on an ok:false response or transport failure, 2 on
// usage errors.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "net/socket.h"
#include "svc/client.h"
#include "svc/protocol.h"

namespace {

using approxit::svc::JobSpec;
using approxit::svc::LineClient;
using approxit::svc::WireObject;
using approxit::svc::WireWriter;

int usage() {
  std::fprintf(
      stderr,
      "usage: approxit_client --connect ADDR COMMAND [args]\n"
      "  ADDR: unix:PATH | tcp:HOST:PORT | :PORT\n"
      "  commands: submit status result cancel forget stream stats hello\n"
      "            shutdown raw\n");
  return 2;
}

/// Prints the raw response line; exit code follows its ok field.
int finish(LineClient& client, const std::optional<std::string>& response) {
  if (!response) {
    std::fprintf(stderr, "approxit_client: %s\n",
                 client.transport_error().c_str());
    return 1;
  }
  std::cout << *response << '\n' << std::flush;
  const auto object =
      approxit::svc::parse_wire_object(*response, nullptr, true);
  return object && object->get_bool("ok", false) ? 0 : 1;
}

/// Drains a stream to stdout; 0 when the terminal event arrived.
int drain_stream(approxit::svc::JobStream& stream) {
  bool terminal_seen = false;
  while (const auto event = stream.next()) {
    std::cout << approxit::svc::encode_stream_event(*event) << '\n'
              << std::flush;
    terminal_seen = event->terminal();
  }
  return terminal_seen ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string address;
  int i = 1;
  if (i + 1 < argc && std::strcmp(argv[i], "--connect") == 0) {
    address = argv[i + 1];
    i += 2;
  }
  if (address.empty() || i >= argc) return usage();
  const std::string command = argv[i++];

  // Command arguments (flag parsing shared across commands).
  JobSpec spec;
  std::uint64_t id = 0;
  bool await_result = false;
  bool stream_job = false;
  bool deterministic = false;
  std::string format;
  std::string mode = "full";
  std::string raw_line;
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--app") {
      const char* value = next();
      if (value == nullptr) return usage();
      spec.app = value;
    } else if (flag == "--dataset") {
      const char* value = next();
      if (value == nullptr) return usage();
      spec.dataset = value;
    } else if (flag == "--tenant") {
      const char* value = next();
      if (value == nullptr) return usage();
      spec.tenant = value;
    } else if (flag == "--strategy") {
      const char* value = next();
      if (value == nullptr) return usage();
      spec.strategy = value;
    } else if (flag == "--max-iterations") {
      const char* value = next();
      if (value == nullptr) return usage();
      spec.max_iterations =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--deadline-ms") {
      const char* value = next();
      if (value == nullptr) return usage();
      spec.deadline_ms = std::strtod(value, nullptr);
    } else if (flag == "--priority") {
      const char* value = next();
      if (value == nullptr) return usage();
      spec.priority = static_cast<int>(std::strtol(value, nullptr, 10));
    } else if (flag == "--id") {
      const char* value = next();
      if (value == nullptr) return usage();
      id = std::strtoull(value, nullptr, 10);
    } else if (flag == "--await") {
      await_result = true;
    } else if (flag == "--stream") {
      stream_job = true;
    } else if (flag == "--format") {
      const char* value = next();
      if (value == nullptr) return usage();
      format = value;
    } else if (flag == "--mode") {
      const char* value = next();
      if (value == nullptr) return usage();
      mode = value;
    } else if (flag == "--deterministic") {
      deterministic = true;
    } else if (command == "raw" && raw_line.empty() && flag[0] == '{') {
      raw_line = flag;
    } else {
      return usage();
    }
  }

  std::string error;
  const auto client = approxit::net::connect_client(address, &error);
  if (!client) {
    std::fprintf(stderr, "approxit_client: %s\n", error.c_str());
    return 1;
  }

  if (command == "submit") {
    if (stream_job) {
      const auto stream = client->submit_stream(spec, &error);
      if (!stream) {
        std::fprintf(stderr, "approxit_client: submit: %s\n", error.c_str());
        return 1;
      }
      WireWriter response;
      response.field("ok", true).field("op", "submit").field(
          "id", static_cast<std::int64_t>(stream->id()));
      std::cout << response.str() << '\n' << std::flush;
      return drain_stream(*stream);
    }
    WireWriter request;
    request.field("op", "submit")
        .field("proto",
               static_cast<std::int64_t>(approxit::svc::kProtoVersion));
    approxit::svc::job_spec_to_wire(spec, request);
    if (!await_result) {
      return finish(*client, client->round_trip_raw(request.str()));
    }
    const auto submitted = client->submit(spec, &error);
    if (!submitted) {
      std::fprintf(stderr, "approxit_client: submit: %s\n", error.c_str());
      return 1;
    }
    WireWriter result_request;
    result_request.field("op", "result")
        .field("proto",
               static_cast<std::int64_t>(approxit::svc::kProtoVersion))
        .field("id", static_cast<std::int64_t>(*submitted));
    return finish(*client, client->round_trip_raw(result_request.str()));
  }
  if (command == "status" || command == "result" || command == "cancel" ||
      command == "forget") {
    WireWriter request;
    request.field("op", command)
        .field("proto",
               static_cast<std::int64_t>(approxit::svc::kProtoVersion))
        .field("id", static_cast<std::int64_t>(id));
    return finish(*client, client->round_trip_raw(request.str()));
  }
  if (command == "stream") {
    const auto stream = client->stream(id);
    if (!stream) {
      std::fprintf(stderr, "approxit_client: stream: unknown job %llu\n",
                   static_cast<unsigned long long>(id));
      return 1;
    }
    return drain_stream(*stream);
  }
  if (command == "stats") {
    WireWriter request;
    request.field("op", "stats")
        .field("proto",
               static_cast<std::int64_t>(approxit::svc::kProtoVersion));
    if (!format.empty()) {
      request.field("format", format).field("mode", mode);
      if (deterministic) request.field("deterministic", true);
    }
    return finish(*client, client->round_trip_raw(request.str()));
  }
  if (command == "hello" || command == "shutdown") {
    WireWriter request;
    request.field("op", command)
        .field("proto",
               static_cast<std::int64_t>(approxit::svc::kProtoVersion));
    return finish(*client, client->round_trip_raw(request.str()));
  }
  if (command == "raw") {
    if (raw_line.empty()) return usage();
    return finish(*client, client->round_trip_raw(raw_line));
  }
  return usage();
}
