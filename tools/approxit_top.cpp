// approxit_top: live terminal dashboard over a running approxit_serve.
//
// Two attachment modes, one client API (svc::Client / svc::LineClient —
// the same encode/decode path every front end uses):
//
//   approxit_top [opts] -- <approxit_serve> [serve flags...]
//     spawns the serve binary behind a stdin/stdout pipe pair;
//   approxit_top [opts] --connect ADDR
//     dials a NETWORKED serve (unix:PATH / tcp:HOST:PORT) and observes
//     it without owning it (no shutdown on exit).
//
// Each frame polls stats() + stats_export(jsonl) and renders a
// top(1)-style screen: service throughput and rejection rates, queue
// depth, cache effectiveness, latency quantiles and a per-tenant
// SLO/quality table.
//
//   --interval MS   refresh period (default 1000)
//   --frames N      stop after N frames (default: until the serve exits)
//   --once          render a single frame without clearing the screen
//   --ascii         no ANSI escapes (plain text frames, e.g. for logs)
//
// Rates (jobs/s) come from successive counter deltas over the actual
// inter-frame interval. The dashboard is an OBSERVER: it submits nothing
// and only ever issues read-only ops, so pointing it at a serving process
// changes no result bits.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "svc/client.h"
#include "svc/protocol.h"

namespace {

using approxit::svc::LineClient;
using approxit::svc::StatsSummary;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--interval MS] [--frames N] [--once] [--ascii]"
               " (--connect ADDR | -- <approxit_serve> [flags...])\n",
               argv0);
  return 2;
}

/// One line of the jsonl metric export, recovered with targeted string
/// scans — the exporter's output is canonical (our own code wrote it), so
/// a dashboard does not need a general JSON parser.
struct MetricLine {
  std::string metric;
  std::map<std::string, std::string> labels;
  std::string type;
  double value = 0.0;    // counter/gauge
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, mean = 0.0;  // histogram
  std::size_t count = 0;
};

bool extract_string(const std::string& line, const std::string& key,
                    std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::string value;
  for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      value += line[++i];
    } else if (line[i] == '"') {
      *out = std::move(value);
      return true;
    } else {
      value += line[i];
    }
  }
  return false;
}

bool extract_number(const std::string& line, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *out = std::strtod(line.c_str() + at + needle.size(), nullptr);
  return true;
}

bool parse_metric_line(const std::string& line, MetricLine* out) {
  if (!extract_string(line, "metric", &out->metric)) return false;
  extract_string(line, "type", &out->type);
  // labels:{...} — k:"v" pairs between the braces.
  const std::size_t open = line.find("\"labels\":{");
  if (open != std::string::npos) {
    std::size_t i = open + 10;
    while (i < line.size() && line[i] != '}') {
      if (line[i] != '"') { ++i; continue; }
      std::string key, value;
      ++i;
      while (i < line.size() && line[i] != '"') key += line[i++];
      i += 2;  // skip closing quote + ':'
      if (i < line.size() && line[i] == '"') {
        ++i;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\' && i + 1 < line.size()) ++i;
          value += line[i++];
        }
        ++i;
      }
      out->labels[key] = value;
      if (i < line.size() && line[i] == ',') ++i;
    }
  }
  extract_number(line, "value", &out->value);
  extract_number(line, "p50", &out->p50);
  extract_number(line, "p90", &out->p90);
  extract_number(line, "p99", &out->p99);
  extract_number(line, "mean", &out->mean);
  double count = 0.0;
  if (extract_number(line, "count", &count)) {
    out->count = static_cast<std::size_t>(count);
  }
  return true;
}

/// A spawned serve child behind a pipe pair, wrapped in the wire client.
class ServeChild {
 public:
  bool spawn(std::vector<char*> argv) {
    int to_child[2], from_child[2];
    if (pipe(to_child) != 0 || pipe(from_child) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      argv.push_back(nullptr);
      execvp(argv[0], argv.data());
      std::perror("approxit_top: exec");
      _exit(127);
    }
    close(to_child[0]);
    close(from_child[1]);
    client_ = std::make_unique<LineClient>(from_child[0], to_child[1],
                                           /*owns_fds=*/true);
    return true;
  }

  LineClient* client() { return client_.get(); }

  bool alive() const {
    if (pid_ <= 0) return false;
    return waitpid(pid_, nullptr, WNOHANG) == 0;
  }

  void shutdown() {
    if (client_ != nullptr) {
      client_->shutdown();
      client_.reset();  // Closes the pipes.
    }
    if (pid_ > 0) {
      waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
  }

  ~ServeChild() { shutdown(); }

 private:
  pid_t pid_ = -1;
  std::unique_ptr<LineClient> client_;
};

}  // namespace

int main(int argc, char** argv) {
  double interval_ms = 1000.0;
  std::size_t frames = 0;  // 0 = until the serve exits.
  bool once = false;
  bool ascii = false;
  int serve_at = -1;
  std::string connect_address;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--" && i + 1 < argc) {
      serve_at = i + 1;
      break;
    } else if (flag == "--interval" && i + 1 < argc) {
      interval_ms = std::strtod(argv[++i], nullptr);
    } else if (flag == "--frames" && i + 1 < argc) {
      frames = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (flag == "--connect" && i + 1 < argc) {
      connect_address = argv[++i];
    } else if (flag == "--once") {
      once = true;
      frames = 1;
    } else if (flag == "--ascii") {
      ascii = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (serve_at < 0 && connect_address.empty()) return usage(argv[0]);

  ServeChild serve;
  std::unique_ptr<LineClient> remote;
  LineClient* client = nullptr;
  if (!connect_address.empty()) {
    std::string error;
    remote = approxit::net::connect_client(connect_address, &error);
    if (!remote) {
      std::fprintf(stderr, "approxit_top: %s\n", error.c_str());
      return 1;
    }
    client = remote.get();
  } else {
    std::vector<char*> child_argv;
    for (int i = serve_at; i < argc; ++i) child_argv.push_back(argv[i]);
    if (!serve.spawn(std::move(child_argv))) {
      std::fprintf(stderr, "approxit_top: failed to spawn serve\n");
      return 1;
    }
    client = serve.client();
  }

  double previous_completed = 0.0;
  auto previous_time = std::chrono::steady_clock::now();
  bool first_frame = true;

  for (std::size_t frame = 0; frames == 0 || frame < frames; ++frame) {
    if (!first_frame) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(interval_ms));
    }
    if (connect_address.empty() && !serve.alive() && !first_frame) break;

    const std::optional<StatsSummary> stats = client->stats();
    approxit::svc::StatsExportRequest export_request;
    export_request.format = "jsonl";
    const std::optional<std::string> content =
        client->stats_export(export_request, nullptr);
    if (!stats || !content) break;

    const auto now = std::chrono::steady_clock::now();
    const double dt =
        std::chrono::duration<double>(now - previous_time).count();
    previous_time = now;

    // Fold the export into a lookup map keyed by metric name + labels;
    // jobs/s comes from the completed-tally delta over the measured
    // interval.
    std::map<std::string, MetricLine> metrics;
    std::size_t start = 0;
    while (start < content->size()) {
      std::size_t end = content->find('\n', start);
      if (end == std::string::npos) end = content->size();
      const std::string line = content->substr(start, end - start);
      start = end + 1;
      MetricLine metric;
      if (!parse_metric_line(line, &metric)) continue;
      std::string key = metric.metric;
      for (const auto& [label, value] : metric.labels) {
        key += "|" + label + "=" + value;
      }
      metrics[key] = std::move(metric);
    }

    std::string screen;
    char buffer[256];
    const auto line = [&](const char* format, auto... args) {
      std::snprintf(buffer, sizeof(buffer), format, args...);
      screen += buffer;
      screen += '\n';
    };
    line("approxit_top — frame %zu, interval %.0f ms", frame + 1,
         interval_ms);
    const double completed_rate =
        first_frame || dt <= 0.0
            ? 0.0
            : (static_cast<double>(stats->completed) - previous_completed) /
                  dt;
    line("service   queued %zu  running %zu  submitted %zu  "
         "completed %zu (%.1f/s)",
         stats->queued, stats->running, stats->submitted, stats->completed,
         completed_rate);
    line("outcomes  failed %zu  cancelled %zu  deadline %zu  "
         "shed %zu  degraded %zu  retries %zu",
         stats->failed, stats->cancelled, stats->deadline_exceeded,
         stats->shed, stats->degraded, stats->retries);
    line("rejects   queue_full %zu  tenant_cap %zu  rate_limited %zu  "
         "bad_request %zu",
         stats->rejected_queue_full, stats->rejected_tenant_cap,
         stats->rejected_rate_limited, stats->rejected_bad_request);
    line("cache     hits %zu  misses %zu  disk %zu  stores %zu",
         stats->cache_hits, stats->cache_misses, stats->cache_disk_hits,
         stats->cache_stores);
    // Queue wait and execution time as separate rows: a deep-queue burst
    // shows up as queue_ms inflation with run_ms flat, a slow workload as
    // the reverse — the split makes the two diagnosable at a glance.
    const auto queue_ms = metrics.find("svc.job.queue_ms");
    if (queue_ms != metrics.end() && queue_ms->second.count > 0) {
      line("latency   queue_ms p50 %.2f  p90 %.2f  p99 %.2f  (n=%zu)",
           queue_ms->second.p50, queue_ms->second.p90, queue_ms->second.p99,
           queue_ms->second.count);
    }
    const auto run_ms = metrics.find("svc.job.run_ms");
    if (run_ms != metrics.end() && run_ms->second.count > 0) {
      line("latency   run_ms   p50 %.2f  p90 %.2f  p99 %.2f  (n=%zu)",
           run_ms->second.p50, run_ms->second.p90, run_ms->second.p99,
           run_ms->second.count);
    }

    // Per-tenant table from the scorecard gauges in the same export.
    std::map<std::string, std::map<std::string, double>> tenants;
    for (const auto& [key, metric] : metrics) {
      const auto tenant = metric.labels.find("tenant");
      if (tenant == metric.labels.end()) continue;
      if (metric.metric.rfind("svc.scorecard.", 0) == 0) {
        tenants[tenant->second][metric.metric.substr(14)] = metric.value;
      }
    }
    if (!tenants.empty()) {
      screen += '\n';
      line("%-12s %6s %6s %6s %6s %9s %8s %8s", "tenant", "jobs", "conv",
           "dline", "canc", "quality", "energy", "lat_ms");
      for (const auto& [tenant, fields] : tenants) {
        const auto get = [&](const char* name) {
          const auto it = fields.find(name);
          return it == fields.end() ? 0.0 : it->second;
        };
        line("%-12s %6.0f %6.0f %6.0f %6.0f %9.2e %8.3f %8.1f",
             tenant.c_str(), get("jobs"), get("converged"),
             get("deadline_exceeded"), get("cancelled"),
             get("quality_rolling"), get("energy_ratio_mean"),
             get("latency_ms_mean"));
      }
    }

    if (!once && !ascii) std::fputs("\x1b[2J\x1b[H", stdout);
    std::fputs(screen.c_str(), stdout);
    if (ascii && !once) std::fputs("---\n", stdout);
    std::fflush(stdout);

    previous_completed = static_cast<double>(stats->completed);
    first_frame = false;
  }

  serve.shutdown();
  return 0;
}
